//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde's API the workspace actually uses, built around a small
//! self-describing [`Content`] tree instead of serde's visitor data model:
//!
//! * [`Serialize`] / [`Deserialize`] traits with the real method names used
//!   by callers (`T::deserialize(deserializer)`), implemented for the
//!   primitives and containers the workspace derives touch;
//! * `#[derive(Serialize, Deserialize)]` re-exported from the vendored
//!   `serde_derive` (single-field tuple structs behave as
//!   `#[serde(transparent)]`);
//! * [`de::IntoDeserializer`] and [`de::value`] (`F64Deserializer`,
//!   `Error`), which the `ttsv-units` property suite uses to round-trip a
//!   quantity through the data model without `serde_json`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value — the entire data model of this
/// stand-in. Derived `Serialize` impls build it; derived `Deserialize`
/// impls consume it.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// The unit value `()` or a unit struct.
    Unit,
    /// A boolean.
    Bool(bool),
    /// Any signed integer.
    I64(i64),
    /// Any unsigned integer.
    U64(u64),
    /// Any floating-point number.
    F64(f64),
    /// A character.
    Char(char),
    /// An owned string.
    String(String),
    /// `Option<T>`.
    Option(Option<Box<Content>>),
    /// A sequence (`Vec<T>`, arrays, multi-field tuple structs).
    Seq(Vec<Content>),
    /// A named-field struct: `(type name, [(field name, value)])`.
    Struct(&'static str, Vec<(&'static str, Content)>),
    /// A fieldless enum variant: `(enum name, variant name)`.
    UnitVariant(&'static str, &'static str),
    /// A tuple enum variant: `(enum name, variant name, values)`.
    TupleVariant(&'static str, &'static str, Vec<Content>),
    /// A struct enum variant: `(enum name, variant name, fields)`.
    StructVariant(&'static str, &'static str, Vec<(&'static str, Content)>),
}

/// A type that can be converted into the [`Content`] data model.
pub trait Serialize {
    /// Builds the [`Content`] tree for `self`.
    fn to_content(&self) -> Content;

    /// Serializes `self` into the given serializer (mirrors serde's entry
    /// point; provided in terms of [`Serialize::to_content`]).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

/// A sink that consumes a [`Content`] tree.
pub trait Serializer: Sized {
    /// The output produced on success.
    type Ok;
    /// The error type.
    type Error: ser::Error;
    /// Consumes a fully built [`Content`] value.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be reconstructed from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Content`] tree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the content shape does not
    /// match `Self`.
    fn from_content(content: &Content) -> Result<Self, String>;

    /// Deserializes from the given deserializer (mirrors serde's entry
    /// point; provided in terms of [`Deserialize::from_content`]).
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors and shape mismatches.
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        Self::from_content(&content).map_err(de::Error::custom)
    }
}

/// A source that produces a [`Content`] tree.
pub trait Deserializer: Sized {
    /// The error type.
    type Error: de::Error;
    /// Produces the next [`Content`] value.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Looks up a named field in a derived-struct content body.
///
/// Used by the generated `Deserialize` impls; not part of the public API
/// surface mirrored from real serde.
///
/// # Errors
///
/// Returns a message naming the missing field.
#[doc(hidden)]
pub fn __find_field<'a>(
    fields: &'a [(&'static str, Content)],
    name: &str,
) -> Result<&'a Content, String> {
    fields
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

/// Serialization-side error support (mirrors `serde::ser`).
pub mod ser {
    use std::fmt::Display;

    /// Trait for serialization error types.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side support (mirrors `serde::de`).
pub mod de {
    use std::fmt::Display;

    /// Trait for deserialization error types.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Conversion of plain values into ready-made deserializers
    /// (mirrors `serde::de::IntoDeserializer`).
    pub trait IntoDeserializer<E: Error = value::Error> {
        /// The deserializer produced.
        type Deserializer: crate::Deserializer<Error = E>;
        /// Wraps `self` in a deserializer.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    /// Ready-made in-memory deserializers (mirrors `serde::de::value`).
    pub mod value {
        use super::{Error as DeError, IntoDeserializer};
        use crate::{Content, Deserializer};
        use std::fmt;
        use std::marker::PhantomData;

        /// The plain-string error type used by the value deserializers.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct Error(String);

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl std::error::Error for Error {}

        impl DeError for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error(msg.to_string())
            }
        }

        impl crate::ser::Error for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error(msg.to_string())
            }
        }

        /// A deserializer holding a single `f64`.
        #[derive(Debug, Clone, Copy)]
        pub struct F64Deserializer<E> {
            value: f64,
            marker: PhantomData<E>,
        }

        impl<E> F64Deserializer<E> {
            /// Wraps an `f64` in a deserializer.
            pub fn new(value: f64) -> Self {
                F64Deserializer {
                    value,
                    marker: PhantomData,
                }
            }
        }

        impl<E: DeError> Deserializer for F64Deserializer<E> {
            type Error = E;
            fn deserialize_content(self) -> Result<Content, E> {
                Ok(Content::F64(self.value))
            }
        }

        impl<E: DeError> IntoDeserializer<E> for f64 {
            type Deserializer = F64Deserializer<E>;
            fn into_deserializer(self) -> F64Deserializer<E> {
                F64Deserializer::new(self)
            }
        }
    }
}

// ------------------------------------------------------------ primitives

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $wide:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $wide)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| {
                        format!(concat!("integer {} out of range for ", stringify!($t)), v)
                    }),
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| {
                        format!(concat!("integer {} out of range for ", stringify!($t)), v)
                    }),
                    other => Err(format!(
                        concat!("expected integer for ", stringify!($t), ", got {:?}"),
                        other
                    )),
                }
            }
        }
    )*};
}

impl_int! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Char(*self)
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Char(v) => Ok(*v),
            other => Err(format!("expected char, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::String(v) => Ok(v.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_content(&self) -> Content {
        Content::String(self.as_ref().to_string())
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_content(content: &Content) -> Result<Self, String> {
        String::from_content(content).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Unit
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Unit => Ok(()),
            other => Err(format!("expected unit, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        Content::Option(self.as_ref().map(|v| Box::new(v.to_content())))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Option(None) | Content::Unit => Ok(None),
            Content::Option(Some(inner)) => T::from_content(inner).map(Some),
            // A bare value deserializes as `Some(value)`, matching the
            // self-describing-format behavior callers expect.
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, String> {
        let items = Vec::<T>::from_content(content)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {len}"))
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Minimal JSON rendering *and parsing* (the stand-in's substitute for
/// `serde_json`). Rendering: derived structs become objects, sequences
/// become arrays, unit enum variants become strings, and data-carrying
/// variants become single-key objects — the shapes the workspace's report
/// types need for downstream serving. Non-finite floats serialize as
/// `null` (JSON has no NaN/∞ literal). Parsing: [`from_str`](json::from_str) produces a
/// dynamically typed [`Value`](json::Value) tree (objects keep insertion order), the
/// shape the `ttsv-serve` request handlers consume.
pub mod json {
    use crate::{Content, Serialize};

    /// Serializes any [`Serialize`] value to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_content(&value.to_content(), &mut out);
        out
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_f64(v: f64, out: &mut String) {
        if v.is_finite() {
            // `{:?}` prints the shortest round-trip form, which is valid
            // JSON for every finite double (e.g. `1.5`, `3e-7`).
            out.push_str(&format!("{v:?}"));
        } else {
            out.push_str("null");
        }
    }

    fn write_fields(fields: &[(&'static str, Content)], out: &mut String) {
        out.push('{');
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, out);
            out.push(':');
            write_content(value, out);
        }
        out.push('}');
    }

    fn write_seq(items: &[Content], out: &mut String) {
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_content(item, out);
        }
        out.push(']');
    }

    fn write_content(content: &Content, out: &mut String) {
        match content {
            Content::Unit | Content::Option(None) => out.push_str("null"),
            Content::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Content::I64(v) => out.push_str(&v.to_string()),
            Content::U64(v) => out.push_str(&v.to_string()),
            Content::F64(v) => write_f64(*v, out),
            Content::Char(c) => write_escaped(&c.to_string(), out),
            Content::String(s) => write_escaped(s, out),
            Content::Option(Some(inner)) => write_content(inner, out),
            Content::Seq(items) => write_seq(items, out),
            Content::Struct(_, fields) => write_fields(fields, out),
            Content::UnitVariant(_, variant) => write_escaped(variant, out),
            Content::TupleVariant(_, variant, values) => {
                out.push('{');
                write_escaped(variant, out);
                out.push(':');
                write_seq(values, out);
                out.push('}');
            }
            Content::StructVariant(_, variant, fields) => {
                out.push('{');
                write_escaped(variant, out);
                out.push(':');
                write_fields(fields, out);
                out.push('}');
            }
        }
    }

    /// A parsed JSON document. Numbers keep their `f64` value (JSON has a
    /// single number type); object members keep source order, and lookups
    /// return the **first** member with the given key.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string (escapes decoded).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The first member with this key, if `self` is an object.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value, if `self` is a number.
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(v) => Some(*v),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if it is a number with an
        /// exact integral representation.
        #[must_use]
        pub fn as_usize(&self) -> Option<usize> {
            match self {
                Value::Number(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) => {
                    Some(*v as usize)
                }
                _ => None,
            }
        }

        /// The string value, if `self` is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if `self` is an array.
        #[must_use]
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Maximum nesting depth [`from_str`] accepts — deeper documents are
    /// rejected instead of recursing toward a stack overflow (the parser
    /// feeds a network-facing server).
    const MAX_DEPTH: usize = 64;

    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset of the first
    /// problem. Inputs deeper than 64 nesting levels, documents with
    /// anything after the top-level value, and all syntax errors are
    /// rejected; the parser never panics on any input (property-tested by
    /// `ttsv-serve`).
    pub fn from_str(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(())
        } else {
            Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut members = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(members));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(format!("expected `:` at byte {}", *pos));
                    }
                    *pos += 1;
                    let value = parse_value(bytes, pos, depth + 1)?;
                    members.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            Some(c) => Err(format!("unexpected byte {c:#04x} at byte {}", *pos)),
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits_from = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == digits_from {
            return Err(format!("expected digits at byte {}", *pos));
        }
        // Reject leading zeros ("01") the way strict JSON does.
        if bytes[digits_from] == b'0' && *pos > digits_from + 1 {
            return Err(format!("leading zero at byte {digits_from}"));
        }
        if bytes.get(*pos) == Some(&b'.') {
            *pos += 1;
            let frac_from = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            if *pos == frac_from {
                return Err(format!("expected fraction digits at byte {}", *pos));
            }
        }
        if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            let exp_from = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            if *pos == exp_from {
                return Err(format!("expected exponent digits at byte {}", *pos));
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number bytes");
        let value: f64 = text
            .parse()
            .map_err(|e| format!("number `{text}` at byte {start}: {e}"))?;
        if !value.is_finite() {
            return Err(format!("number `{text}` at byte {start} overflows f64"));
        }
        Ok(Value::Number(value))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected `\"` at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates are rejected rather than paired:
                            // the workspace never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#04x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn primitives_and_containers_render() {
            assert_eq!(to_string(&true), "true");
            assert_eq!(to_string(&42u32), "42");
            assert_eq!(to_string(&-3i64), "-3");
            assert_eq!(to_string(&1.5f64), "1.5");
            assert_eq!(to_string(&f64::NAN), "null");
            assert_eq!(to_string("a \"b\"\n"), "\"a \\\"b\\\"\\n\"");
            assert_eq!(to_string(&vec![1u8, 2, 3]), "[1,2,3]");
            assert_eq!(to_string(&Option::<u8>::None), "null");
            assert_eq!(to_string(&Some(7u8)), "7");
        }

        #[test]
        fn structs_render_as_objects() {
            let content = Content::Struct(
                "Report",
                vec![
                    ("max", Content::F64(2.5)),
                    (
                        "cells",
                        Content::Seq(vec![Content::U64(1), Content::U64(2)]),
                    ),
                ],
            );
            let mut out = String::new();
            write_content(&content, &mut out);
            assert_eq!(out, "{\"max\":2.5,\"cells\":[1,2]}");
        }

        #[test]
        fn parser_handles_the_protocol_shapes() {
            let v = from_str(r#"{"nx":4, "planes":[[1.5,2e-3],[0.5,-0]], "tag":"a\"b"}"#).unwrap();
            assert_eq!(v.get("nx").and_then(Value::as_usize), Some(4));
            let planes = v.get("planes").and_then(Value::as_array).unwrap();
            assert_eq!(planes.len(), 2);
            assert_eq!(planes[0].as_array().unwrap()[1].as_f64(), Some(0.002));
            assert_eq!(v.get("tag").and_then(Value::as_str), Some("a\"b"));
            assert_eq!(from_str("  null ").unwrap(), Value::Null);
            assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
            assert_eq!(from_str("-12.5e1").unwrap(), Value::Number(-125.0));
        }

        #[test]
        fn parser_rejects_malformed_documents() {
            for bad in [
                "",
                "{",
                "}",
                "[1,",
                "[1 2]",
                "{\"a\"}",
                "{\"a\":}",
                "{a:1}",
                "01",
                "1.",
                "1e",
                "nul",
                "truex",
                "\"\\q\"",
                "\"\u{1}\"",
                "\"unterminated",
                "1 2",
                "[\"\\u12\"]",
                "1e999",
            ] {
                assert!(from_str(bad).is_err(), "{bad:?} should fail");
            }
            let deep = "[".repeat(100) + &"]".repeat(100);
            assert!(from_str(&deep).is_err(), "over-deep nesting should fail");
        }

        #[test]
        fn render_parse_round_trip() {
            let json = to_string(&vec![1.5f64, -2.25, 3e-7]);
            let v = from_str(&json).unwrap();
            let back: Vec<f64> = v
                .as_array()
                .unwrap()
                .iter()
                .map(|x| x.as_f64().unwrap())
                .collect();
            assert_eq!(back, vec![1.5, -2.25, 3e-7]);
        }
    }
}
