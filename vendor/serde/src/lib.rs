//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde's API the workspace actually uses, built around a small
//! self-describing [`Content`] tree instead of serde's visitor data model:
//!
//! * [`Serialize`] / [`Deserialize`] traits with the real method names used
//!   by callers (`T::deserialize(deserializer)`), implemented for the
//!   primitives and containers the workspace derives touch;
//! * `#[derive(Serialize, Deserialize)]` re-exported from the vendored
//!   `serde_derive` (single-field tuple structs behave as
//!   `#[serde(transparent)]`);
//! * [`de::IntoDeserializer`] and [`de::value`] (`F64Deserializer`,
//!   `Error`), which the `ttsv-units` property suite uses to round-trip a
//!   quantity through the data model without `serde_json`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value — the entire data model of this
/// stand-in. Derived `Serialize` impls build it; derived `Deserialize`
/// impls consume it.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// The unit value `()` or a unit struct.
    Unit,
    /// A boolean.
    Bool(bool),
    /// Any signed integer.
    I64(i64),
    /// Any unsigned integer.
    U64(u64),
    /// Any floating-point number.
    F64(f64),
    /// A character.
    Char(char),
    /// An owned string.
    String(String),
    /// `Option<T>`.
    Option(Option<Box<Content>>),
    /// A sequence (`Vec<T>`, arrays, multi-field tuple structs).
    Seq(Vec<Content>),
    /// A named-field struct: `(type name, [(field name, value)])`.
    Struct(&'static str, Vec<(&'static str, Content)>),
    /// A fieldless enum variant: `(enum name, variant name)`.
    UnitVariant(&'static str, &'static str),
    /// A tuple enum variant: `(enum name, variant name, values)`.
    TupleVariant(&'static str, &'static str, Vec<Content>),
    /// A struct enum variant: `(enum name, variant name, fields)`.
    StructVariant(&'static str, &'static str, Vec<(&'static str, Content)>),
}

/// A type that can be converted into the [`Content`] data model.
pub trait Serialize {
    /// Builds the [`Content`] tree for `self`.
    fn to_content(&self) -> Content;

    /// Serializes `self` into the given serializer (mirrors serde's entry
    /// point; provided in terms of [`Serialize::to_content`]).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

/// A sink that consumes a [`Content`] tree.
pub trait Serializer: Sized {
    /// The output produced on success.
    type Ok;
    /// The error type.
    type Error: ser::Error;
    /// Consumes a fully built [`Content`] value.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be reconstructed from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Content`] tree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the content shape does not
    /// match `Self`.
    fn from_content(content: &Content) -> Result<Self, String>;

    /// Deserializes from the given deserializer (mirrors serde's entry
    /// point; provided in terms of [`Deserialize::from_content`]).
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors and shape mismatches.
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        Self::from_content(&content).map_err(de::Error::custom)
    }
}

/// A source that produces a [`Content`] tree.
pub trait Deserializer: Sized {
    /// The error type.
    type Error: de::Error;
    /// Produces the next [`Content`] value.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Looks up a named field in a derived-struct content body.
///
/// Used by the generated `Deserialize` impls; not part of the public API
/// surface mirrored from real serde.
///
/// # Errors
///
/// Returns a message naming the missing field.
#[doc(hidden)]
pub fn __find_field<'a>(
    fields: &'a [(&'static str, Content)],
    name: &str,
) -> Result<&'a Content, String> {
    fields
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

/// Serialization-side error support (mirrors `serde::ser`).
pub mod ser {
    use std::fmt::Display;

    /// Trait for serialization error types.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side support (mirrors `serde::de`).
pub mod de {
    use std::fmt::Display;

    /// Trait for deserialization error types.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Conversion of plain values into ready-made deserializers
    /// (mirrors `serde::de::IntoDeserializer`).
    pub trait IntoDeserializer<E: Error = value::Error> {
        /// The deserializer produced.
        type Deserializer: crate::Deserializer<Error = E>;
        /// Wraps `self` in a deserializer.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    /// Ready-made in-memory deserializers (mirrors `serde::de::value`).
    pub mod value {
        use super::{Error as DeError, IntoDeserializer};
        use crate::{Content, Deserializer};
        use std::fmt;
        use std::marker::PhantomData;

        /// The plain-string error type used by the value deserializers.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct Error(String);

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl std::error::Error for Error {}

        impl DeError for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error(msg.to_string())
            }
        }

        impl crate::ser::Error for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error(msg.to_string())
            }
        }

        /// A deserializer holding a single `f64`.
        #[derive(Debug, Clone, Copy)]
        pub struct F64Deserializer<E> {
            value: f64,
            marker: PhantomData<E>,
        }

        impl<E> F64Deserializer<E> {
            /// Wraps an `f64` in a deserializer.
            pub fn new(value: f64) -> Self {
                F64Deserializer {
                    value,
                    marker: PhantomData,
                }
            }
        }

        impl<E: DeError> Deserializer for F64Deserializer<E> {
            type Error = E;
            fn deserialize_content(self) -> Result<Content, E> {
                Ok(Content::F64(self.value))
            }
        }

        impl<E: DeError> IntoDeserializer<E> for f64 {
            type Deserializer = F64Deserializer<E>;
            fn into_deserializer(self) -> F64Deserializer<E> {
                F64Deserializer::new(self)
            }
        }
    }
}

// ------------------------------------------------------------ primitives

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $wide:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $wide)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| {
                        format!(concat!("integer {} out of range for ", stringify!($t)), v)
                    }),
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| {
                        format!(concat!("integer {} out of range for ", stringify!($t)), v)
                    }),
                    other => Err(format!(
                        concat!("expected integer for ", stringify!($t), ", got {:?}"),
                        other
                    )),
                }
            }
        }
    )*};
}

impl_int! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Char(*self)
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Char(v) => Ok(*v),
            other => Err(format!("expected char, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::String(v) => Ok(v.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_content(&self) -> Content {
        Content::String(self.as_ref().to_string())
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_content(content: &Content) -> Result<Self, String> {
        String::from_content(content).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Unit
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Unit => Ok(()),
            other => Err(format!("expected unit, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        Content::Option(self.as_ref().map(|v| Box::new(v.to_content())))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Option(None) | Content::Unit => Ok(None),
            Content::Option(Some(inner)) => T::from_content(inner).map(Some),
            // A bare value deserializes as `Some(value)`, matching the
            // self-describing-format behavior callers expect.
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, String> {
        let items = Vec::<T>::from_content(content)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {len}"))
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Minimal JSON rendering of the [`Content`] data model (the stand-in's
/// substitute for `serde_json::to_string`). Derived structs become
/// objects, sequences become arrays, unit enum variants become strings,
/// and data-carrying variants become single-key objects — the shapes the
/// workspace's report types need for downstream serving. Non-finite
/// floats serialize as `null` (JSON has no NaN/∞ literal).
pub mod json {
    use crate::{Content, Serialize};

    /// Serializes any [`Serialize`] value to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_content(&value.to_content(), &mut out);
        out
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_f64(v: f64, out: &mut String) {
        if v.is_finite() {
            // `{:?}` prints the shortest round-trip form, which is valid
            // JSON for every finite double (e.g. `1.5`, `3e-7`).
            out.push_str(&format!("{v:?}"));
        } else {
            out.push_str("null");
        }
    }

    fn write_fields(fields: &[(&'static str, Content)], out: &mut String) {
        out.push('{');
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(name, out);
            out.push(':');
            write_content(value, out);
        }
        out.push('}');
    }

    fn write_seq(items: &[Content], out: &mut String) {
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_content(item, out);
        }
        out.push(']');
    }

    fn write_content(content: &Content, out: &mut String) {
        match content {
            Content::Unit | Content::Option(None) => out.push_str("null"),
            Content::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Content::I64(v) => out.push_str(&v.to_string()),
            Content::U64(v) => out.push_str(&v.to_string()),
            Content::F64(v) => write_f64(*v, out),
            Content::Char(c) => write_escaped(&c.to_string(), out),
            Content::String(s) => write_escaped(s, out),
            Content::Option(Some(inner)) => write_content(inner, out),
            Content::Seq(items) => write_seq(items, out),
            Content::Struct(_, fields) => write_fields(fields, out),
            Content::UnitVariant(_, variant) => write_escaped(variant, out),
            Content::TupleVariant(_, variant, values) => {
                out.push('{');
                write_escaped(variant, out);
                out.push(':');
                write_seq(values, out);
                out.push('}');
            }
            Content::StructVariant(_, variant, fields) => {
                out.push('{');
                write_escaped(variant, out);
                out.push(':');
                write_fields(fields, out);
                out.push('}');
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn primitives_and_containers_render() {
            assert_eq!(to_string(&true), "true");
            assert_eq!(to_string(&42u32), "42");
            assert_eq!(to_string(&-3i64), "-3");
            assert_eq!(to_string(&1.5f64), "1.5");
            assert_eq!(to_string(&f64::NAN), "null");
            assert_eq!(to_string("a \"b\"\n"), "\"a \\\"b\\\"\\n\"");
            assert_eq!(to_string(&vec![1u8, 2, 3]), "[1,2,3]");
            assert_eq!(to_string(&Option::<u8>::None), "null");
            assert_eq!(to_string(&Some(7u8)), "7");
        }

        #[test]
        fn structs_render_as_objects() {
            let content = Content::Struct(
                "Report",
                vec![
                    ("max", Content::F64(2.5)),
                    (
                        "cells",
                        Content::Seq(vec![Content::U64(1), Content::U64(2)]),
                    ),
                ],
            );
            let mut out = String::new();
            write_content(&content, &mut out);
            assert_eq!(out, "{\"max\":2.5,\"cells\":[1,2]}");
        }
    }
}
