//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of proptest's API that the workspace's property suites use:
//! the [`Strategy`](strategy::Strategy) trait (ranges, tuples,
//! [`Just`](strategy::Just), `prop_map`, `prop_flat_map`),
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! * inputs come from a deterministic xorshift PRNG seeded per test name,
//!   so runs are reproducible (no `PROPTEST_*` env handling);
//! * failing cases are **not shrunk** — the failure message reports the
//!   case number instead of a minimized input;
//! * rejection via `prop_assume!` retries up to 20× the case count before
//!   giving up.

pub mod test_runner {
    //! The runtime the `proptest!` macro drives.

    /// Deterministic xorshift64* PRNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from a nonzero-ified seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng(seed | 1)
        }

        /// Seeds deterministically from a test name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name keeps distinct tests decorrelated.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / 9_007_199_254_740_992.0
        }

        /// Uniform `u64` in `[lo, hi)`; returns `lo` for empty ranges.
        pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                return lo;
            }
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it is retried, not failed.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value and draws
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing `f` (retrying a bounded
        /// number of times).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.whence
            )
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    if self.end <= self.start {
                        return self.start;
                    }
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64())) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Uniformly picks one of several same-valued strategies
    /// (the engine behind `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty set of options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.u64_in(0, self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u64_in(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias of the crate root so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let strategies = ($($strat,)+);
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest stub: only {passed}/{} cases passed in {max_attempts} attempts \
                     (too many prop_assume! rejections)",
                    config.cases,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {attempts}: {msg}");
                    }
                }
            }
        }
    )*};
}

/// `assert!` returning a test-case failure instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (retried, not failed) when the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniformly chooses between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(options.push(::std::boxed::Box::new($strat));)+
        $crate::strategy::OneOf::new(options)
    }};
}
