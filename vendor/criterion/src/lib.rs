//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of Criterion's API the `ttsv-bench` suite uses: [`Criterion`],
//! benchmark groups with [`BenchmarkGroup::sample_size`], [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (benches must set `harness = false`, as with real Criterion).
//!
//! Instead of Criterion's statistical machinery, each benchmark runs a
//! single warm-up call followed by up to `sample_size` timed iterations
//! (capped by a per-benchmark wall-clock budget so `cargo bench` always
//! terminates quickly) and prints the mean time per iteration.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark; keeps full `cargo bench` runs short.
const TIME_BUDGET: Duration = Duration::from_millis(250);

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label(), 100, f);
        self
    }

    /// Runs a standalone benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.into().label(), 100, |b| f(b, input));
        self
    }
}

/// A set of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark in the group, parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this stand-in).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally with a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly (one warm-up plus timed iterations) and
    /// records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        hint::black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while (iters as usize) < self.sample_size && start.elapsed() < TIME_BUDGET {
            hint::black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.total.as_nanos() / u128::from(bencher.iters);
    println!(
        "{label:<50} {per_iter:>12} ns/iter ({} iterations)",
        bencher.iters
    );
}

/// Bundles bench functions into a runnable group
/// (`criterion_group!(benches, f1, f2)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (requires
/// `harness = false` on the bench target).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
