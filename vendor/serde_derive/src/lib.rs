//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros against the vendored mini-`serde` data model (`serde::Content`),
//! parsing the item by hand instead of via `syn`/`quote`.
//!
//! Supported shapes — exactly what this workspace derives on:
//! * named-field structs,
//! * tuple structs (a single field is treated as a transparent newtype,
//!   matching `#[serde(transparent)]` semantics),
//! * unit structs,
//! * enums with unit, tuple, and struct variants.
//!
//! `#[serde(...)]` helper attributes are accepted and ignored except for
//! `transparent`, whose behavior single-field tuple structs get by default.
//! Generic types are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field list of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub emitted invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub emitted invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility.
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // consume the bracketed attribute body
                it.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    // optional `pub(...)` restriction
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                }
                // skip any other modifier-ish ident
            }
            other => panic!("serde_derive stub: unexpected token before item: {other:?}"),
        }
    };

    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type `{name}`)");
        }
    }

    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(g.stream())),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(
                kind, "struct",
                "serde_derive stub: paren body on non-struct"
            );
            Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        other => panic!("serde_derive stub: unexpected item body: {other:?}"),
    }
}

/// Parse `name: Type, ...` skipping attributes, visibility, and type tokens.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // skip attributes and visibility before the field name
        let name = loop {
            match it.next() {
                None => return names,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("serde_derive stub: unexpected token in fields: {other:?}"),
            }
        };
        names.push(name);
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field name, got {other:?}"),
        }
        skip_type_until_comma(&mut it);
    }
}

/// Skip a type, stopping after the `,` that ends the field (angle-depth aware).
fn skip_type_until_comma(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut last_was_sep = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    last_was_sep = true;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
        last_was_sep = false;
    }
    if saw_tokens && !last_was_sep {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // skip attributes (doc comments, #[default], ...) before the name
        let name = loop {
            match it.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                other => panic!("serde_derive stub: unexpected token in enum body: {other:?}"),
            }
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                it.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                it.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // skip an optional discriminant and the trailing comma
        let mut depth = 0i32;
        while let Some(tt) = it.peek() {
            match tt {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        it.next();
                        break;
                    }
                    it.next();
                }
                _ => {
                    it.next();
                }
            }
        }
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, ser_fields_body(name, fields, "self")),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::UnitVariant({name:?}, {vn:?}),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::TupleVariant({name:?}, {vn:?}, ::std::vec![{}]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| format!("({f:?}, ::serde::Serialize::to_content({f}))"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::StructVariant({name:?}, {vn:?}, ::std::vec![{}]),\n",
                            fs.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

fn ser_fields_body(name: &str, fields: &Fields, recv: &str) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Unit".to_string(),
        Fields::Tuple(1) => format!("::serde::Serialize::to_content(&{recv}.0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&{recv}.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(fs) => {
            let items: Vec<String> = fs
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_content(&{recv}.{f}))"))
                .collect();
            format!(
                "::serde::Content::Struct({name:?}, ::std::vec![{}])",
                items.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = match __c {{\n\
                             ::serde::Content::Seq(v) => v,\n\
                             _ => return ::std::result::Result::Err(::std::format!(\"expected seq for {name}\")),\n\
                         }};\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::std::format!(\"expected {n} elements for {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let items: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(::serde::__find_field(__fields, {f:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __fields = match __c {{\n\
                             ::serde::Content::Struct(_, f) => f,\n\
                             _ => return ::std::result::Result::Err(::std::format!(\"expected struct for {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        items.join(", ")
                    )
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "::serde::Content::UnitVariant(_, {vn:?}) => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "::serde::Content::TupleVariant(_, {vn:?}, __items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({})),\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(::serde::__find_field(__fields, {f:?})?)?"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "::serde::Content::StructVariant(_, {vn:?}, __fields) => \
                             ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match __c {{\n{arms}\
                 _ => ::std::result::Result::Err(::std::format!(\"unexpected content for enum {name}\")),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::std::string::String> {{\n{body}\n}}\n\
         }}\n"
    )
}
