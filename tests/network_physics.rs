//! Integration tests tying the analytical models back to first-principles
//! network physics.

use ttsv::network::{Terminal, ThermalNetwork};
use ttsv::prelude::*;
use ttsv::units::{Power, ThermalResistance};

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// Model A expressed by hand as a generic network gives the same answer as
/// the library's builder — eqs. (1)–(6) transcribed two independent ways.
#[test]
fn hand_built_model_a_network_matches_library() {
    let scenario = Scenario::paper_block()
        .with_tsv(TtsvConfig::new(um(5.0), um(0.5)))
        .with_ild_thickness(um(7.0))
        .build()
        .unwrap();
    let fit = FittingCoefficients::paper_block();
    let model = ModelA::with_coefficients(fit);
    let lib = model.solve(&scenario).unwrap();

    // Hand transcription of Fig. 2 using the resistances the model reports.
    let res = lib.resistances();
    let q = scenario.plane_powers();
    let mut net = ThermalNetwork::new();
    let t0 = net.add_node("t0");
    let t1 = net.add_node("t1");
    let t2 = net.add_node("t2");
    let t3 = net.add_node("t3");
    let t4 = net.add_node("t4");
    let t5 = net.add_node("t5");
    net.add_resistor(t0, Terminal::Ground, res.substrate);
    net.add_resistor(t1, t0, res.planes[0].bulk); // R1
    net.add_resistor(t2, t0, res.planes[0].fill); // R2
    net.add_resistor(t1, t2, res.planes[0].liner_lateral); // R3
    net.add_resistor(t3, t1, res.planes[1].bulk); // R4
    net.add_resistor(t4, t2, res.planes[1].fill); // R5
    net.add_resistor(t3, t4, res.planes[1].liner_lateral); // R6
    net.add_resistor(t5, t3, res.planes[2].bulk); // R7
    net.add_resistor(
        t5,
        t4,
        res.planes[2].fill + res.planes[2].liner_lateral, // R8 + R9 in series
    );
    net.add_source(t1, q[0]);
    net.add_source(t3, q[1]);
    net.add_source(t5, q[2]);

    let sol = net.solve().unwrap();
    let hand_max = sol.max_temperature().unwrap().1.as_kelvin();
    let lib_max = lib.max_delta_t().as_kelvin();
    assert!(
        (hand_max - lib_max).abs() < 1e-9 * lib_max,
        "hand {hand_max} vs library {lib_max}"
    );
    // And KCL holds in the hand-built network.
    assert!(sol.kcl_residual_max().as_watts() < 1e-12);
}

/// Energy conservation across the stack: the heat crossing into the ground
/// node equals the scenario's total power for both A and B network forms.
#[test]
fn model_networks_conserve_energy() {
    let scenario = Scenario::paper_block().build().unwrap();
    let model = ModelA::new();
    let sol = model.solve(&scenario).unwrap();
    // T0 = Rs · Σq means the substrate resistor carries exactly Σq.
    let rs = sol.resistances().substrate;
    let flow = sol.t0() / rs;
    let total = scenario.total_power();
    assert!(
        (flow.as_watts() - total.as_watts()).abs() < 1e-9 * total.as_watts(),
        "substrate flow {flow} vs total {total}"
    );
}

/// Thermal superposition: solving two scenarios whose loads sum gives
/// summed temperatures (the models are linear networks).
#[test]
fn models_are_linear_in_the_load() {
    let stack_scenario = |factor: f64| {
        let powers: Vec<Power> = Scenario::paper_block()
            .build()
            .unwrap()
            .plane_powers()
            .iter()
            .map(|p| *p * factor)
            .collect();
        let base = Scenario::paper_block().build().unwrap();
        Scenario::new(
            base.stack().clone(),
            base.tsv().clone(),
            &ttsv::core::geometry::HeatLoad::PerPlane(powers),
        )
        .unwrap()
    };
    for model in [
        &ModelA::with_coefficients(FittingCoefficients::paper_block()) as &dyn ThermalModel,
        &ModelB::paper_b100(),
        &OneDModel::new(),
    ] {
        let one = model.max_delta_t(&stack_scenario(1.0)).unwrap().as_kelvin();
        let three = model.max_delta_t(&stack_scenario(3.0)).unwrap().as_kelvin();
        assert!(
            (three - 3.0 * one).abs() < 1e-9 * three,
            "{}: {one} scaled to {three}",
            model.name()
        );
    }
}

/// A sanity anchor computed by hand: with an enormous copper via filling
/// half the block, ΔT collapses toward the bare series resistance of the
/// substrate path.
#[test]
fn huge_via_approaches_substrate_limit() {
    let scenario = Scenario::paper_block()
        .with_tsv(TtsvConfig::new(um(40.0), um(0.5)))
        .build()
        .unwrap();
    let dt = ModelB::paper_b100()
        .max_delta_t(&scenario)
        .unwrap()
        .as_kelvin();
    // Lower bound: all heat through Rs alone.
    let rs = ThermalResistance::from_kelvin_per_watt((500.0e-6 - 1.0e-6) / (150.0 * 1.0e-8));
    let floor = (scenario.total_power() * rs).as_kelvin();
    assert!(
        dt > floor,
        "ΔT {dt} must exceed the substrate floor {floor}"
    );
    assert!(
        dt < 2.2 * floor,
        "a huge via should approach the floor: {dt} vs {floor}"
    );
}
