//! Cross-crate integration: the three analytical models and the FEM
//! reference must tell one consistent physical story.

use ttsv::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn block(r: f64, tl: f64, t_ild: f64, t_si: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(um(r), um(tl)))
        .with_ild_thickness(um(t_ild))
        .with_upper_si_thickness(um(t_si))
        .build()
        .expect("valid block")
}

/// All models agree with the FEM reference within their documented bands on
/// the nominal configuration.
#[test]
fn all_models_within_bands_on_nominal_block() {
    let s = block(8.0, 0.5, 4.0, 45.0);
    let fem = FemReference::new().max_delta_t(&s).unwrap().as_kelvin();

    let b100 = ModelB::paper_b100().max_delta_t(&s).unwrap().as_kelvin();
    assert!(
        (b100 - fem).abs() < 0.15 * fem,
        "Model B {b100} vs FEM {fem}"
    );

    let a = ModelA::with_coefficients(FittingCoefficients::paper_block())
        .max_delta_t(&s)
        .unwrap()
        .as_kelvin();
    assert!((a - fem).abs() < 0.25 * fem, "Model A {a} vs FEM {fem}");

    // The 1-D baseline overestimates — that is its documented failure.
    let one_d = OneDModel::new().max_delta_t(&s).unwrap().as_kelvin();
    assert!(one_d > fem, "1-D {one_d} must exceed FEM {fem}");
}

/// Model ordering is stable across the whole block parameter space.
#[test]
fn one_d_always_overestimates_the_reference() {
    let fem = FemReference::new().with_resolution(FemResolution::coarse());
    let one_d = OneDModel::new();
    for (r, tl, t_ild, t_si) in [
        (3.0, 0.5, 4.0, 5.0),
        (5.0, 2.0, 7.0, 45.0),
        (10.0, 1.0, 4.0, 45.0),
        (15.0, 0.5, 7.0, 20.0),
    ] {
        let s = block(r, tl, t_ild, t_si);
        let f = fem.max_delta_t(&s).unwrap().as_kelvin();
        let d = one_d.max_delta_t(&s).unwrap().as_kelvin();
        assert!(d > f, "r={r} tl={tl}: 1-D {d} must exceed FEM {f}");
    }
}

/// Model B converges (in segments) toward a value close to the reference.
#[test]
fn model_b_converges_toward_fem() {
    let s = block(5.0, 0.5, 7.0, 45.0);
    let fem = FemReference::new().max_delta_t(&s).unwrap().as_kelvin();
    let mut errors = Vec::new();
    for model in [
        ModelB::paper_b1(),
        ModelB::paper_b20(),
        ModelB::paper_b100(),
        ModelB::paper_b500(),
    ] {
        let b = model.max_delta_t(&s).unwrap().as_kelvin();
        errors.push((b - fem).abs() / fem);
    }
    assert!(
        errors[0] > errors[2] && errors[1] >= errors[2] - 0.01,
        "errors must shrink with segments: {errors:?}"
    );
    assert!(errors[3] < 0.10, "B(500) within 10% of FEM: {errors:?}");
}

/// The non-monotonic substrate-thickness behaviour (Fig. 6) appears in
/// Model A, Model B, and FEM — and not in the 1-D baseline.
#[test]
fn non_monotonic_substrate_behaviour_is_cross_model() {
    let sweep = [5.0, 20.0, 80.0];
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let b = ModelB::paper_b100();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());
    let one_d = OneDModel::new();

    let eval = |m: &dyn ThermalModel| -> Vec<f64> {
        sweep
            .iter()
            .map(|&t| m.max_delta_t(&block(8.0, 1.0, 7.0, t)).unwrap().as_kelvin())
            .collect()
    };
    for (name, series) in [
        ("Model A", eval(&a)),
        ("Model B", eval(&b)),
        ("FEM", eval(&fem)),
    ] {
        assert!(
            series[1] < series[0] && series[2] > series[1],
            "{name} must dip at 20 µm: {series:?}"
        );
    }
    let d = eval(&one_d);
    assert!(d[1] > d[0] && d[2] > d[1], "1-D must be monotone: {d:?}");
}

/// Via division (eq. 22) cools in every model that sees the lateral path,
/// and the gain saturates.
#[test]
fn via_division_cools_with_saturation_everywhere() {
    let make = |n: usize| {
        Scenario::paper_block()
            .with_tsv(TtsvConfig::divided(um(10.0), um(1.0), n))
            .with_upper_si_thickness(um(20.0))
            .build()
            .unwrap()
    };
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let b = ModelB::paper_b100();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());
    for model in [&a as &dyn ThermalModel, &b, &fem] {
        let d1 = model.max_delta_t(&make(1)).unwrap().as_kelvin();
        let d4 = model.max_delta_t(&make(4)).unwrap().as_kelvin();
        let d16 = model.max_delta_t(&make(16)).unwrap().as_kelvin();
        assert!(d4 < d1 && d16 < d4, "division must cool: {d1}, {d4}, {d16}");
        assert!(
            (d4 - d16) < (d1 - d4),
            "gain must saturate: {d1}, {d4}, {d16}"
        );
    }
}

/// The facade's prelude exposes a complete workflow end to end.
#[test]
fn facade_prelude_supports_full_workflow() {
    let scenario = Scenario::paper_block().build().unwrap();
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let sol = a.solve(&scenario).unwrap();
    assert!(sol.max_delta_t().as_kelvin() > 0.0);
    assert!(sol.via_heat().as_watts() > 0.0);
    assert_eq!(sol.bulk_temperatures().len(), 3);
}
