//! Chaos suite for `ttsv-serve`: seeded fault storms, overload control,
//! and the accounting invariants that must survive them.
//!
//! Everything here is deterministic — fault schedules come from
//! [`ServerFaults`] plans and seeded [`FaultConfig`] streams, so a
//! failure reproduces bit-for-bit. The pinned invariants:
//!
//! * **Bitwise transparency** — a *lossless* client-side fault storm
//!   (short reads/writes, delays; never a lost byte) changes nothing:
//!   every response is byte-identical to direct engine evaluation, and
//!   `/metrics` totals reconcile exactly with the requests issued.
//! * **Panic containment** — an injected handler panic (fired while the
//!   per-session lock is held, so the lock is genuinely poisoned)
//!   answers a typed 500, and every later request on every session is
//!   byte-identical to a fault-free run.
//! * **Rollback** — a power update whose evaluation fails (injected
//!   engine error or contained panic) leaves the session bitwise
//!   unchanged: the staged mutation is rolled back before the 500.
//! * **Overload control** — a saturated pool sheds new connections with
//!   `503` + `Retry-After` promptly; one session flooded past its
//!   pending cap answers `429` + `Retry-After`; a slowloris half-request
//!   is answered `408` at the deadline. All three are counted.
//! * **Survival** — a *lossy* storm (hard connection errors + injected
//!   server panics and engine faults) never takes the server down,
//!   `/metrics` stays internally consistent, and shutdown mid-storm
//!   drains cleanly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use ttsv::serve::client::{trace_power_body, trace_register_body, Client, RetryPolicy};
use ttsv::serve::faults::{FaultConfig, ServerFaults};
use ttsv::serve::metrics::Metrics;
use ttsv::serve::server::{ReadinessBackend, Server, ServerConfig, RETRY_AFTER_SECS};
use ttsv_chip::ChipEngine;

const GRID: usize = 4;
const ROUNDS: usize = 5;

/// Reads `/metrics` through a clean client and parses it.
fn fetch_metrics(addr: &str) -> serde::json::Value {
    let mut client = Client::connect(addr).expect("connect for metrics");
    let (status, body) = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200, "{body}");
    serde::json::from_str(&body).expect("metrics endpoint emits valid JSON")
}

fn field(doc: &serde::json::Value, block: &str, name: &str) -> usize {
    doc.get(block)
        .and_then(|b| b.get(name))
        .and_then(serde::json::Value::as_usize)
        .unwrap_or_else(|| panic!("metrics field {block}.{name} missing"))
}

/// Asserts the accounting invariant on a quiescent server: answered
/// requests equal the status-class sum and the histogram sample count,
/// and each overload attribution is bounded by its status class.
fn assert_metrics_reconcile(doc: &serde::json::Value) {
    let requests = doc
        .get("requests")
        .and_then(serde::json::Value::as_usize)
        .expect("requests field");
    let classes = field(doc, "responses", "ok_2xx")
        + field(doc, "responses", "client_4xx")
        + field(doc, "responses", "server_5xx");
    assert_eq!(requests, classes, "status classes must sum to requests");
    assert_eq!(
        requests,
        field(doc, "latency_ns", "samples"),
        "every answered request lands exactly one histogram sample"
    );
    assert!(field(doc, "overload", "shed_503") <= field(doc, "responses", "server_5xx"));
    assert!(field(doc, "overload", "panics") <= field(doc, "responses", "server_5xx"));
    assert!(field(doc, "overload", "rate_limited_429") <= field(doc, "responses", "client_4xx"));
    assert!(field(doc, "overload", "timeouts_408") <= field(doc, "responses", "client_4xx"));
}

/// One session replayed through a (possibly fault-wrapped) client:
/// the register report plus one report per power round, as raw bodies.
/// Every status must be clean — lossless faults may not change behavior.
fn drive_session(addr: &str, session: usize, chaos_seed: Option<u64>) -> Vec<String> {
    let mut client = match chaos_seed {
        Some(seed) => Client::connect_with_faults(addr, FaultConfig::lossless(), seed)
            .expect("connect with faults"),
        None => Client::connect(addr).expect("connect"),
    };
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, session))
        .expect("register");
    assert_eq!(status, 201, "{body}");
    let (id_part, report) = body
        .split_once(",\"report\":")
        .expect("register response envelope");
    let id: u64 = id_part
        .strip_prefix("{\"session\":")
        .expect("session id field")
        .parse()
        .expect("numeric session id");
    let mut reports = vec![report
        .strip_suffix('}')
        .expect("envelope close")
        .to_string()];
    for round in 0..ROUNDS {
        // `?full=1` opts out of delta responses so every body compares
        // bitwise against direct engine evaluation.
        let (status, body) = client
            .request(
                "POST",
                &format!("/sessions/{id}/power?full=1"),
                &trace_power_body(GRID, session, round),
            )
            .expect("power update");
        assert_eq!(status, 200, "{body}");
        reports.push(body);
    }
    reports
}

/// Ground truth: the same session replayed directly against a fresh
/// single-worker engine, no sockets involved.
fn direct_session(session: usize) -> Vec<String> {
    let engine = ChipEngine::new().with_workers(1);
    let mut spec =
        ttsv::serve::protocol::parse_register(trace_register_body(GRID, session).as_bytes())
            .expect("register");
    let mut reports = vec![engine
        .evaluate_factored(&spec.plan, &spec.model)
        .expect("solvable")
        .to_json()];
    for round in 0..ROUNDS {
        let (plane, map) = ttsv::serve::protocol::parse_power_update(
            trace_power_body(GRID, session, round).as_bytes(),
            &spec.plan,
        )
        .expect("power update");
        spec.plan.update_power_map(plane, map).expect("same grid");
        reports.push(
            engine
                .evaluate_factored(&spec.plan, &spec.model)
                .expect("solvable")
                .to_json(),
        );
    }
    reports
}

/// Lossless transport storm: short reads, short writes, and delays on
/// every client — yet each response is byte-identical to direct engine
/// evaluation, and the server's totals reconcile exactly with the
/// requests issued. Runs on both readiness backends (real `poll(2)` and
/// the sweep fallback), which must behave identically: short writes are
/// precisely what exercises partial-read wakeups.
#[test]
fn lossless_fault_storm_is_bitwise_transparent_and_metrics_reconcile() {
    const CLIENTS: usize = 3;
    let expected: Vec<Vec<String>> = (0..CLIENTS).map(direct_session).collect();
    for readiness in [ReadinessBackend::Poll, ReadinessBackend::Sweep] {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig::default()
                .with_workers(CLIENTS)
                .with_readiness(readiness),
        )
        .expect("bind ephemeral port");
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|s| {
                let addr = addr.clone();
                std::thread::spawn(move || drive_session(&addr, s, Some(0xC4A05 + s as u64)))
            })
            .collect();
        for (s, handle) in handles.into_iter().enumerate() {
            let got = handle.join().expect("chaos client thread");
            assert_eq!(
                got, expected[s],
                "session {s} responses diverged under a lossless fault storm \
                 on the {readiness} backend"
            );
        }
        let doc = fetch_metrics(&addr);
        let issued = CLIENTS * (1 + ROUNDS);
        assert_eq!(
            doc.get("requests").and_then(serde::json::Value::as_usize),
            Some(issued),
            "every issued request must be answered and counted exactly once \
             on the {readiness} backend"
        );
        assert_eq!(field(&doc, "responses", "ok_2xx"), issued);
        assert_metrics_reconcile(&doc);
        server.shutdown();
    }
}

/// One injected panic fires mid-evaluation of a power update — while the
/// per-session lock is held, so the lock is genuinely poisoned. The
/// request answers a typed 500, and every later request (same session
/// and a brand-new one) is byte-identical to a fault-free run.
#[test]
fn injected_panic_answers_500_then_serves_bitwise_correct_reports() {
    // Ordinal 1 is the registration; ordinal 2 (the round-0 power
    // update) panics after its delta was applied but before evaluation.
    let faults = Arc::new(ServerFaults::new().panic_on(2));
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(2)
            .with_faults(Arc::clone(&faults)),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let expected = direct_session(0);

    let mut client = Client::connect(&addr).expect("connect");
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201, "{body}");
    let (status, body) = client
        .request("POST", "/sessions/1/power", &trace_power_body(GRID, 0, 0))
        .expect("power update survives the contained panic");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "typed panic response: {body}");

    // The panicked update's staged mutation was rolled back, so the
    // session is bitwise back at its registered state; replaying round 0
    // applies the same absolute watt values and every report from here
    // on must match the fault-free ground truth.
    for round in 0..ROUNDS {
        let (status, body) = client
            .request(
                "POST",
                "/sessions/1/power?full=1",
                &trace_power_body(GRID, 0, round),
            )
            .expect("post-panic power update");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body,
            expected[round + 1],
            "round {round} diverged after the contained panic"
        );
    }
    // The poisoned session still reads, and new sessions still register.
    let (status, body) = client.request("GET", "/sessions/1", "").expect("read");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected[ROUNDS]);
    let got = drive_session(&addr, 1, None);
    assert_eq!(got, direct_session(1), "new session after the panic");

    let doc = fetch_metrics(&addr);
    assert_eq!(field(&doc, "overload", "panics"), 1);
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// A power update whose evaluation fails must leave the session exactly
/// as it was: the staged mutation rolls back, so the next read is
/// bitwise identical to the pre-update report and a clean retry
/// evaluates the same state a fault-free server would.
#[test]
fn failed_update_rolls_back_session_state() {
    // Ordinal 1 registers, ordinal 2 is the baseline read; ordinal 3
    // (the first power update) fails inside evaluation with an injected
    // engine error *after* its mutation was staged.
    let faults = Arc::new(ServerFaults::new().engine_error_on(3));
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2).with_faults(faults),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let expected = direct_session(0);

    let mut client = Client::connect(&addr).expect("connect");
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201, "{body}");
    let (status, before) = client.request("GET", "/sessions/1", "").expect("read");
    assert_eq!(status, 200, "{before}");
    assert_eq!(before, expected[0], "baseline read matches ground truth");

    let (status, body) = client
        .request("POST", "/sessions/1/power", &trace_power_body(GRID, 0, 0))
        .expect("failed update is still answered");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("injected engine fault"), "{body}");

    // The 500'd update must not have mutated the plan: the next read is
    // bitwise identical to the pre-update report.
    let (status, after) = client.request("GET", "/sessions/1", "").expect("re-read");
    assert_eq!(status, 200, "{after}");
    assert_eq!(
        after, before,
        "a failed update must leave the session bitwise unchanged"
    );

    // A clean retry now evaluates the same pre-update state and lands
    // the fault-free round-0 report.
    let (status, body) = client
        .request(
            "POST",
            "/sessions/1/power?full=1",
            &trace_power_body(GRID, 0, 0),
        )
        .expect("retry");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected[1], "retry matches the fault-free run");

    let doc = fetch_metrics(&addr);
    assert_eq!(field(&doc, "responses", "server_5xx"), 1);
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// With one worker and a one-slot queue, the first connection pins the
/// worker, the second fills the queue, and the third is shed promptly
/// with `503` + `Retry-After` — staged by an event loop before a single
/// request byte is read.
#[test]
fn saturated_pool_sheds_with_503_and_retry_after() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_read_timeout(Duration::from_millis(300)),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Pin the worker: a full round-trip proves the job left the queue,
    // and the open keep-alive connection holds the worker after it.
    let mut pinned = Client::connect(&addr).expect("connect");
    let (status, _) = pinned
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201);

    // Fill the one queue slot with a connection that just sits there.
    let queued = TcpStream::connect(&addr).expect("queued connection");
    std::thread::sleep(Duration::from_millis(150));

    // The next connection must be shed, promptly.
    let started = Instant::now();
    let mut shed = TcpStream::connect(&addr).expect("shed connection");
    shed.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut response = String::new();
    shed.read_to_string(&mut response)
        .expect("read the 503 to EOF");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shedding must be prompt, took {:?}",
        started.elapsed()
    );
    assert!(
        response.starts_with("HTTP/1.1 503 "),
        "expected a 503, got {response:?}"
    );
    assert!(
        response.contains(&format!("retry-after: {RETRY_AFTER_SECS}\r\n")),
        "503 must carry Retry-After: {response:?}"
    );
    assert!(response.contains("saturated"), "{response:?}");

    // Free the worker and confirm the shed was counted.
    drop(pinned);
    drop(queued);
    std::thread::sleep(Duration::from_millis(100));
    let doc = fetch_metrics(&addr);
    assert_eq!(field(&doc, "overload", "shed_503"), 1);
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// A seeded write-error storm against retrying clients: ~40% of request
/// writes hard-fail with a connection error *before any byte lands*
/// (`FaultyStream` injects the error ahead of the real write, so a
/// failed call never half-sends). That is exactly the window where the
/// retry policy may resend a non-idempotent update — the client
/// reconnects and replays, and the observable response stream must stay
/// bitwise identical to direct engine evaluation, with every request
/// landing on the server exactly once.
#[test]
fn retrying_clients_absorb_a_write_error_storm_bitwise() {
    const CLIENTS: usize = 3;
    let expected: Vec<Vec<String>> = (0..CLIENTS).map(direct_session).collect();
    let server = Server::start("127.0.0.1:0", ServerConfig::default().with_workers(CLIENTS))
        .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let policy = RetryPolicy {
        max_retries: 16,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
    };
    let handles: Vec<_> = (0..CLIENTS)
        .map(|s| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let storm = FaultConfig {
                    write_error: 0.4,
                    ..FaultConfig::default()
                };
                let mut client = Client::connect_with_faults(&addr, storm, 0x57023 + s as u64)
                    .expect("connect with faults")
                    .with_retry(policy);
                let (status, body) = client
                    .request("POST", "/sessions", &trace_register_body(GRID, s))
                    .expect("register rides out the storm");
                assert_eq!(status, 201, "{body}");
                let (id_part, report) = body
                    .split_once(",\"report\":")
                    .expect("register response envelope");
                let id: u64 = id_part
                    .strip_prefix("{\"session\":")
                    .expect("session id field")
                    .parse()
                    .expect("numeric session id");
                let mut reports = vec![report
                    .strip_suffix('}')
                    .expect("envelope close")
                    .to_string()];
                for round in 0..ROUNDS {
                    let (status, body) = client
                        .request(
                            "POST",
                            &format!("/sessions/{id}/power?full=1"),
                            &trace_power_body(GRID, s, round),
                        )
                        .expect("power update rides out the storm");
                    assert_eq!(status, 200, "{body}");
                    reports.push(body);
                }
                (reports, client.reconnects())
            })
        })
        .collect();
    let mut total_reconnects = 0;
    for (s, handle) in handles.into_iter().enumerate() {
        let (got, reconnects) = handle.join().expect("storm client thread");
        total_reconnects += reconnects;
        assert_eq!(
            got, expected[s],
            "session {s} responses diverged under the write-error storm"
        );
    }
    assert!(
        total_reconnects > 0,
        "the seeded storm must actually inject failures for the clients to absorb"
    );
    // Failed writes never reached the server, and each retried request
    // landed exactly once — so the server's view is a fault-free run.
    let doc = fetch_metrics(&addr);
    assert_eq!(
        field(&doc, "responses", "ok_2xx"),
        CLIENTS * (1 + ROUNDS),
        "every request must land on the server exactly once"
    );
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// A retrying client against a fully saturated server: both admission
/// slots (1 worker + 1 queue slot) are pinned by idle connections, so
/// every attempt is shed with `503` + `Retry-After: 1`. The client
/// clamps the hint to its own `max_backoff`, reconnects (shed responses
/// close the connection), and keeps retrying until the slots free up —
/// then the register lands cleanly.
#[test]
fn retrying_client_rides_out_saturation_503s_until_admitted() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity(1),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // max_connections defaults to workers + queue capacity = 2: two
    // idle connections pin every admission slot.
    let slot_a = TcpStream::connect(&addr).expect("pin slot a");
    let slot_b = TcpStream::connect(&addr).expect("pin slot b");
    std::thread::sleep(Duration::from_millis(100));

    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(400));
        drop(slot_a);
        drop(slot_b);
    });

    let started = Instant::now();
    let mut client = Client::connect(&addr)
        .expect("connect")
        .with_retry(RetryPolicy {
            max_retries: 40,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
        });
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register rides out the 503s");
    assert_eq!(status, 201, "{body}");
    assert!(
        client.reconnects() >= 1,
        "shed 503s close the connection, so success requires reconnecting"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the clamped backoff must converge promptly, took {:?}",
        started.elapsed()
    );
    releaser.join().expect("releaser thread");

    let doc = fetch_metrics(&addr);
    assert!(
        field(&doc, "overload", "shed_503") >= 1,
        "at least one attempt must have been shed"
    );
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// Flooding one session past its pending cap answers `429` +
/// `Retry-After` instead of queueing on the session lock; the stalled
/// in-flight update still completes with 200.
#[test]
fn per_session_flood_answers_429_with_retry_after() {
    // Ordinal 1 registers; ordinal 2 (the first power update) stalls
    // inside evaluation, holding the session busy deterministically.
    let faults = Arc::new(ServerFaults::new().engine_delay_on(2, Duration::from_millis(600)));
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(4)
            .with_max_pending_updates(1)
            .with_faults(faults),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let (status, _) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201);

    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(&slow_addr).expect("connect slow");
        client
            .request("POST", "/sessions/1/power", &trace_power_body(GRID, 0, 0))
            .expect("stalled update")
    });
    std::thread::sleep(Duration::from_millis(200));

    // While the stalled update holds the session, a second one floods.
    let (status, body) = client
        .request("POST", "/sessions/1/power", &trace_power_body(GRID, 0, 1))
        .expect("flooding update");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("in flight"), "{body}");

    let (status, body) = slow.join().expect("slow thread");
    assert_eq!(status, 200, "stalled update still completes: {body}");

    let doc = fetch_metrics(&addr);
    assert_eq!(field(&doc, "overload", "rate_limited_429"), 1);
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// A slowloris half-request — head bytes trickled in, then silence — is
/// answered `408 Request Timeout` once the request deadline lapses, and
/// the connection is closed.
#[test]
fn slowloris_half_request_answers_408_at_the_deadline() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(2)
            .with_request_deadline(Duration::from_millis(250))
            // The idle timeout is much longer: the *deadline* must fire.
            .with_read_timeout(Duration::from_secs(30)),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let started = Instant::now();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /sessions HTTP/1.1\r\ncontent-le")
        .expect("send a partial head");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read the 408 to EOF");
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "expected a 408, got {response:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "the deadline must fire promptly, took {:?}",
        started.elapsed()
    );

    let doc = fetch_metrics(&addr);
    assert_eq!(field(&doc, "overload", "timeouts_408"), 1);
    assert_metrics_reconcile(&doc);
    server.shutdown();
}

/// The full storm: lossy client transports (hard connection errors) plus
/// injected server panics and engine faults. No panic escapes, whatever
/// `/metrics` reports stays internally consistent, and shutting down in
/// the middle of a second storm wave drains cleanly.
#[test]
fn lossy_storm_survives_and_shutdown_mid_storm_is_clean() {
    const CLIENTS: usize = 4;
    let faults = Arc::new(ServerFaults::storm(0xD1CE, 3, 3, 40));
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(CLIENTS)
            .with_read_timeout(Duration::from_millis(250))
            .with_faults(faults),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // A storm client tolerates transport errors and injected 500s; it
    // only fails the test if the *test harness itself* breaks.
    let storm_client = |addr: String, seed: u64, session: usize| {
        move || {
            let Ok(mut client) = Client::connect_with_faults(&addr, FaultConfig::lossy(), seed)
            else {
                return;
            };
            let Ok((status, body)) =
                client.request("POST", "/sessions", &trace_register_body(GRID, session))
            else {
                return;
            };
            if status != 201 {
                return;
            }
            let Some(id) = body.split_once("\"session\":").and_then(|(_, rest)| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse::<u64>()
                    .ok()
            }) else {
                return;
            };
            for round in 0..ROUNDS {
                if client
                    .request(
                        "POST",
                        &format!("/sessions/{id}/power"),
                        &trace_power_body(GRID, session, round),
                    )
                    .is_err()
                {
                    return;
                }
            }
        }
    };

    // Wave one: run to completion, then reconcile on a quiet server.
    let wave: Vec<_> = (0..CLIENTS)
        .map(|s| std::thread::spawn(storm_client(addr.clone(), 0xBEEF + s as u64, s)))
        .collect();
    for handle in wave {
        handle.join().expect("storm client must not panic");
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_metrics_reconcile(&fetch_metrics(&addr));

    // Wave two: shut down while clients are mid-flight. `shutdown`
    // drains in-flight connections, so returning at all (the join below)
    // is the invariant; the clients just see errors.
    let wave: Vec<_> = (0..CLIENTS)
        .map(|s| std::thread::spawn(storm_client(addr.clone(), 0xF00D + s as u64, s)))
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    for handle in wave {
        handle
            .join()
            .expect("mid-shutdown storm client must not panic");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every terminal path — plain responses, shed 503s, flood 429s,
    // deadline 408s, contained-panic 500s — increments `requests`,
    // exactly one status-class counter, and exactly one histogram
    // sample; attributions never exceed their class.
    #[test]
    fn every_terminal_path_keeps_the_accounting_invariant(
        ops in prop::collection::vec((0usize..7, 1u64..2_000_000), 1..200),
    ) {
        let m = Metrics::new();
        let (mut ok, mut c4, mut s5) = (0u64, 0u64, 0u64);
        for &(op, ns) in &ops {
            let t = Duration::from_nanos(ns);
            match op {
                0 => { m.record(200, t); ok += 1; }
                1 => { m.record(404, t); c4 += 1; }
                2 => { m.record(500, t); s5 += 1; }
                3 => { m.record_shed(t); s5 += 1; }
                4 => { m.record_rate_limited(t); c4 += 1; }
                5 => { m.record_timeout(t); c4 += 1; }
                // A contained panic: the 500 is recorded like any other
                // response, the panic counter is a pure attribution.
                _ => { m.note_panic(); m.record(500, t); s5 += 1; }
            }
        }
        let snap = m.snapshot();
        prop_assert_eq!(snap.requests, ok + c4 + s5);
        prop_assert_eq!(snap.ok_2xx, ok);
        prop_assert_eq!(snap.client_4xx, c4);
        prop_assert_eq!(snap.server_5xx, s5);
        prop_assert_eq!(snap.latency_samples, snap.requests);
        prop_assert!(snap.shed + snap.panics <= snap.server_5xx);
        prop_assert!(snap.rate_limited + snap.timeouts <= snap.client_4xx);
        prop_assert_eq!(snap.inflight, 0);
    }
}
