//! Golden-value regression suite for the paper block.
//!
//! Every solver refactor lands under these pins: the exact `ΔT_max`
//! outputs of Model A / Model B / the 1-D baseline and the FEM reference
//! on the paper's Table I setup, the Fig. 4 radius-sweep endpoints, the
//! Fig. 5 liner-sweep endpoints, the Fig. 6 substrate-thinning sweep
//! (including the paper's ≈20 µm minimum), and the §IV-E case study.
//! The values were recorded from this repository's solvers (PR 3); they
//! are *repro* goldens, not the paper's COMSOL numbers — the paper's
//! digitized curves live in `ttsv_validate::paper_data` and are only ever
//! shape-checked.
//!
//! Tolerances: the analytical models are deterministic closed-form /
//! direct-solve pipelines, pinned to 1e-7 relative; the FEM reference is
//! pinned to 1e-5 relative so a kernel-level reordering (e.g. a
//! vectorized banded elimination) passes while any physics drift — a
//! changed conductance formula, a mesh change, a mis-wired boundary
//! condition — fails loudly.

use ttsv::prelude::*;

/// Relative tolerance for the closed-form / direct-ladder models.
const MODEL_RTOL: f64 = 1e-7;
/// Relative tolerance for the finite-volume reference.
const FEM_RTOL: f64 = 1e-5;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

#[track_caller]
fn assert_golden(label: &str, got: f64, want: f64, rtol: f64) {
    assert!(
        (got - want).abs() <= rtol * want.abs(),
        "golden drift in {label}: got {got:.12e}, pinned {want:.12e} \
         (rel err {:.3e}, tol {rtol:.1e})",
        (got - want).abs() / want.abs()
    );
}

/// The Fig. 4 scenario at radius `r` µm (aspect-ratio substrate switch at
/// r = 5 µm, as in the figure caption).
fn fig4_scenario(r: f64) -> Scenario {
    let t_si = if r <= 5.0 { 5.0 } else { 45.0 };
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(um(r), um(0.5)))
        .with_ild_thickness(um(4.0))
        .with_bond_thickness(um(1.0))
        .with_upper_si_thickness(um(t_si))
        .build()
        .expect("valid Fig. 4 scenario")
}

/// The Fig. 5 / Table I scenario at liner thickness `tl` µm.
fn fig5_scenario(tl: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(um(5.0), um(tl)))
        .with_ild_thickness(um(7.0))
        .with_bond_thickness(um(1.0))
        .with_upper_si_thickness(um(45.0))
        .build()
        .expect("valid Fig. 5 scenario")
}

/// The Fig. 6 scenario at upper-substrate thickness `tsi` µm.
fn fig6_scenario(tsi: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(um(8.0), um(1.0)))
        .with_ild_thickness(um(7.0))
        .with_bond_thickness(um(1.0))
        .with_upper_si_thickness(um(tsi))
        .build()
        .expect("valid Fig. 6 scenario")
}

fn fem_coarse() -> FemReference {
    FemReference::new().with_resolution(FemResolution::coarse())
}

#[test]
fn table1_model_b_segment_ladder_is_pinned() {
    // Table I: Model B at every segment count the paper reports, on the
    // Fig. 5 geometry at a 1 µm liner. The ladder must stay monotone
    // (more segments → lower, converging ΔT) *and* numerically pinned.
    let scenario = fig5_scenario(1.0);
    let golden: &[(&str, ModelB, f64)] = &[
        ("B(1)", ModelB::paper_b1(), 4.537074748366e1),
        ("B(20)", ModelB::paper_b20(), 4.116072285819e1),
        ("B(100)", ModelB::paper_b100(), 3.877603905853e1),
        ("B(500)", ModelB::paper_b500(), 3.834928816461e1),
        ("B(1000)", ModelB::paper_b1000(), 3.830970165891e1),
    ];
    let mut previous = f64::INFINITY;
    for (label, model, want) in golden {
        let got = model.max_delta_t(&scenario).unwrap().as_kelvin();
        assert_golden(&format!("table1 {label}"), got, *want, MODEL_RTOL);
        assert!(got < previous, "{label} must refine the coarser ladder");
        previous = got;
    }
}

#[test]
fn fig4_radius_sweep_endpoints_are_pinned() {
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let b100 = ModelB::paper_b100();
    let one_d = OneDModel::new();
    let fem = fem_coarse();
    // (radius, model A, model B(100), 1-D, FEM-coarse)
    let golden = [
        (
            1.0,
            3.370871527400e1,
            3.932233338861e1,
            4.428348449650e1,
            3.667812498159e1,
        ),
        (
            20.0,
            1.078621370322e1,
            1.375566816673e1,
            2.391621200329e1,
            1.439585335003e1,
        ),
    ];
    for (r, want_a, want_b, want_1d, want_fem) in golden {
        let s = fig4_scenario(r);
        assert_golden(
            &format!("fig4 r={r} Model A"),
            a.max_delta_t(&s).unwrap().as_kelvin(),
            want_a,
            MODEL_RTOL,
        );
        assert_golden(
            &format!("fig4 r={r} Model B(100)"),
            b100.max_delta_t(&s).unwrap().as_kelvin(),
            want_b,
            MODEL_RTOL,
        );
        assert_golden(
            &format!("fig4 r={r} 1-D"),
            one_d.max_delta_t(&s).unwrap().as_kelvin(),
            want_1d,
            MODEL_RTOL,
        );
        assert_golden(
            &format!("fig4 r={r} FEM"),
            fem.max_delta_t(&s).unwrap().as_kelvin(),
            want_fem,
            FEM_RTOL,
        );
    }
}

#[test]
fn fig5_liner_sweep_endpoints_are_pinned() {
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let b100 = ModelB::paper_b100();
    let one_d = OneDModel::new();
    let fem = fem_coarse();
    // (liner, model A, model B(100), 1-D, FEM-coarse)
    let golden = [
        (
            0.5,
            3.512630200282e1,
            3.664488966346e1,
            5.908985198164e1,
            3.954413044592e1,
        ),
        (
            3.0,
            3.913633375705e1,
            4.231327727037e1,
            6.098769069026e1,
            4.220994376673e1,
        ),
    ];
    for (tl, want_a, want_b, want_1d, want_fem) in golden {
        let s = fig5_scenario(tl);
        assert_golden(
            &format!("fig5 tl={tl} Model A"),
            a.max_delta_t(&s).unwrap().as_kelvin(),
            want_a,
            MODEL_RTOL,
        );
        assert_golden(
            &format!("fig5 tl={tl} Model B(100)"),
            b100.max_delta_t(&s).unwrap().as_kelvin(),
            want_b,
            MODEL_RTOL,
        );
        assert_golden(
            &format!("fig5 tl={tl} 1-D"),
            one_d.max_delta_t(&s).unwrap().as_kelvin(),
            want_1d,
            MODEL_RTOL,
        );
        assert_golden(
            &format!("fig5 tl={tl} FEM"),
            fem.max_delta_t(&s).unwrap().as_kelvin(),
            want_fem,
            FEM_RTOL,
        );
    }
}

#[test]
fn fig6_substrate_thinning_sweep_is_pinned() {
    // Fig. 6: the non-monotone thinning curve — endpoints plus the
    // paper's ≈20 µm minimum. The golden values also encode the shape:
    // the 20 µm point must stay below both endpoints for B(100) and FEM,
    // while the 1-D baseline grows monotonically.
    let b100 = ModelB::paper_b100();
    let one_d = OneDModel::new();
    let fem = fem_coarse();
    // (t_si, model B(100), 1-D, FEM-coarse)
    let golden = [
        (5.0, 3.267314570486e1, 4.505442030758e1, 3.619519091199e1),
        (20.0, 2.792958638841e1, 4.821546442156e1, 3.196353388237e1),
        (80.0, 3.171094390316e1, 5.614003534826e1, 3.381066358199e1),
    ];
    let mut fem_series = Vec::new();
    let mut b_series = Vec::new();
    let mut one_d_series = Vec::new();
    for (tsi, want_b, want_1d, want_fem) in golden {
        let s = fig6_scenario(tsi);
        let got_b = b100.max_delta_t(&s).unwrap().as_kelvin();
        let got_1d = one_d.max_delta_t(&s).unwrap().as_kelvin();
        let got_fem = fem.max_delta_t(&s).unwrap().as_kelvin();
        assert_golden(
            &format!("fig6 tsi={tsi} Model B(100)"),
            got_b,
            want_b,
            MODEL_RTOL,
        );
        assert_golden(&format!("fig6 tsi={tsi} 1-D"), got_1d, want_1d, MODEL_RTOL);
        assert_golden(&format!("fig6 tsi={tsi} FEM"), got_fem, want_fem, FEM_RTOL);
        b_series.push(got_b);
        one_d_series.push(got_1d);
        fem_series.push(got_fem);
    }
    assert!(b_series[1] < b_series[0] && b_series[1] < b_series[2]);
    assert!(fem_series[1] < fem_series[0] && fem_series[1] < fem_series[2]);
    assert!(one_d_series[0] < one_d_series[1] && one_d_series[1] < one_d_series[2]);
}

#[test]
fn case_study_delta_t_is_pinned() {
    // §IV-E DRAM-µP unit cell (paper: A 12.8 °C, B(1000) 13.9 °C,
    // FEM 12.0 °C, 1-D 20 °C — our repro pins its own solver outputs).
    use ttsv::core::full_chip::CaseStudy;
    let scenario = CaseStudy::paper().unit_cell_scenario().unwrap();
    let a = ModelA::with_coefficients(CaseStudy::paper_fitting());
    assert_golden(
        "case study Model A",
        a.max_delta_t(&scenario).unwrap().as_kelvin(),
        1.259763445965e1,
        MODEL_RTOL,
    );
    assert_golden(
        "case study Model B(1000)",
        ModelB::paper_b1000()
            .max_delta_t(&scenario)
            .unwrap()
            .as_kelvin(),
        1.101104421301e1,
        MODEL_RTOL,
    );
    assert_golden(
        "case study 1-D",
        OneDModel::new().max_delta_t(&scenario).unwrap().as_kelvin(),
        2.615354576747e1,
        MODEL_RTOL,
    );
    assert_golden(
        "case study FEM",
        fem_coarse().max_delta_t(&scenario).unwrap().as_kelvin(),
        1.118354740435e1,
        FEM_RTOL,
    );
}

#[test]
fn floorplan_uniform_map_matches_the_case_study_pin() {
    // The floorplan engine in its uniform-map limit must land on the same
    // §IV-E pins as the single-unit-cell path: same golden values, same
    // tolerances. The two paths construct the per-cell power through
    // different (mathematically identical) float expressions, so they
    // agree to rounding, far inside MODEL_RTOL / FEM_RTOL.
    use ttsv::chip::{ChipEngine, Floorplan};
    use ttsv::core::full_chip::CaseStudy;

    let cs = CaseStudy::paper();
    let plan = Floorplan::uniform(&cs, 8, 8).expect("valid uniform floorplan");
    let engine = ChipEngine::new();

    let b1000 = ModelB::paper_b1000();
    let report = engine.evaluate(&plan, &b1000).unwrap();
    // Uniform chip: one distinct cell, flat map, pinned to the case study.
    assert_eq!(report.tiles, 64);
    assert_eq!(report.distinct_cells, 1);
    assert_golden(
        "floorplan uniform Model B(1000) max",
        report.max_delta_t,
        1.101104421301e1,
        MODEL_RTOL,
    );
    assert_golden(
        "floorplan uniform Model B(1000) mean",
        report.mean_delta_t,
        1.101104421301e1,
        MODEL_RTOL,
    );

    let a = ModelA::with_coefficients(CaseStudy::paper_fitting());
    assert_golden(
        "floorplan uniform Model A max",
        engine.evaluate(&plan, &a).unwrap().max_delta_t,
        1.259763445965e1,
        MODEL_RTOL,
    );
    assert_golden(
        "floorplan uniform 1-D max",
        engine
            .evaluate(&plan, &OneDModel::new())
            .unwrap()
            .max_delta_t,
        2.615354576747e1,
        MODEL_RTOL,
    );
    assert_golden(
        "floorplan uniform FEM max",
        engine.evaluate(&plan, &fem_coarse()).unwrap().max_delta_t,
        1.118354740435e1,
        FEM_RTOL,
    );

    // Direct old-path/new-path agreement on the overlap, tighter than the
    // golden tolerance.
    let unit_cell = cs.unit_cell_scenario().unwrap();
    let old = b1000.max_delta_t(&unit_cell).unwrap().as_kelvin();
    assert!(
        (report.max_delta_t - old).abs() <= 1e-12 * old,
        "floorplan {} vs unit cell {old}",
        report.max_delta_t
    );
}

#[test]
fn solver_knobs_do_not_move_the_goldens() {
    // The pinned physics must be solver-invariant: the same Fig. 5 point
    // solved by the direct banded path, SSOR-PCG, and the reused
    // multigrid-PCG path (Jacobi and Chebyshev smoothing) lands on the
    // same golden value within solver tolerance.
    use ttsv::fem::{FemPreconditioner, FemSolver};
    let want_fem = 3.954413044592e1;
    let s = fig5_scenario(0.5);
    for (label, solver) in [
        ("direct", FemSolver::DirectBanded),
        ("ssor", FemSolver::Pcg(FemPreconditioner::ssor())),
        ("mg", FemSolver::Pcg(FemPreconditioner::multigrid())),
        (
            "mg-cheby",
            FemSolver::Pcg(FemPreconditioner::multigrid_chebyshev(2)),
        ),
    ] {
        let fem = fem_coarse().with_solver(solver);
        let got = fem.max_delta_t(&s).unwrap().as_kelvin();
        assert_golden(&format!("fig5 tl=0.5 FEM via {label}"), got, want_fem, 1e-4);
    }
}
