//! Readiness-backend suite for `ttsv-serve`: the poll(2) event loops'
//! latency and idle-CPU properties, the nonblocking shed path, and
//! backend reporting.
//!
//! The pinned invariants:
//!
//! * **No tick quantization** — on the poll backend, a request landing
//!   on a *parked* idle keep-alive connection (well past the loops'
//!   spin window) is answered well under `IDLE_TICK`, because the loop
//!   blocks in `poll(2)` on the connection's fd instead of sleeping a
//!   millisecond at a time. This is the tentpole's user-visible win.
//! * **Idle means idle** — an idle server's per-loop wakeup counter
//!   stays ≈ 0 over a one-second window (a sweep-style tick would make
//!   ~1000/s per loop).
//! * **Shedding never stalls admission** — a shed client that refuses
//!   to read its 503 parks *in an event loop*, not on the accept
//!   thread: concurrent connections keep being admitted or shed
//!   promptly, and the stalled client's 503 still arrives.
//! * **Backends are honest** — `/metrics` reports the backend actually
//!   running, including the sweep fallback.
//!
//! The latency and idle tests are unix-only (`poll(2)` is); the shed
//! and reporting tests run everywhere on whichever backend is native.

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ttsv::serve::client::Client;
use ttsv::serve::server::{ReadinessBackend, Server, ServerConfig, IDLE_TICK, RETRY_AFTER_SECS};

/// Reads `/metrics` through a clean client and parses it.
fn fetch_metrics(addr: &str) -> serde::json::Value {
    let mut client = Client::connect(addr).expect("connect for metrics");
    let (status, body) = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200, "{body}");
    serde::json::from_str(&body).expect("metrics endpoint emits valid JSON")
}

fn field(doc: &serde::json::Value, block: &str, name: &str) -> usize {
    doc.get(block)
        .and_then(|b| b.get(name))
        .and_then(serde::json::Value::as_usize)
        .unwrap_or_else(|| panic!("metrics field {block}.{name} missing"))
}

fn backend_name(doc: &serde::json::Value) -> String {
    doc.get("readiness")
        .and_then(|r| r.get("backend"))
        .and_then(serde::json::Value::as_str)
        .expect("readiness.backend field")
        .to_string()
}

/// A request on a parked idle keep-alive connection must be answered
/// well under the sweep backend's `IDLE_TICK` on the poll backend: the
/// owning loop is blocked in `poll(2)` on this very fd, so the wakeup
/// is kernel-immediate, with no millisecond tick to quantize against.
#[cfg(unix)]
#[test]
fn parked_keepalive_request_beats_the_idle_tick() {
    const SAMPLES: usize = 21;
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(2)
            .with_readiness(ReadinessBackend::Poll),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    assert_eq!(
        backend_name(&fetch_metrics(&addr)),
        "poll",
        "requested poll, expected no fallback on unix"
    );

    let mut client = Client::connect(&addr).expect("connect");
    // Warm up: the first request pays connection adoption.
    let (status, _) = client.request("GET", "/healthz", "").expect("warm-up");
    assert_eq!(status, 200);

    let mut samples_ns: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        // Park the connection: idle far past the loops' ~200 µs spin
        // window, so the owning loop is genuinely blocked in poll(2)
        // when the request lands.
        std::thread::sleep(Duration::from_millis(5));
        let started = Instant::now();
        let (status, _) = client
            .request("GET", "/healthz", "")
            .expect("parked request");
        let elapsed = started.elapsed();
        assert_eq!(status, 200);
        samples_ns.push(elapsed.as_nanos());
    }
    samples_ns.sort_unstable();
    let median =
        Duration::from_nanos(u64::try_from(samples_ns[SAMPLES / 2]).expect("sub-second sample"));
    // The sweep backend would add up to a full IDLE_TICK of park
    // latency on top of the request itself; the poll backend's median
    // must land clearly below the tick, i.e. no tick quantization at
    // all. (Median, not max: one preemption on a loaded CI box must
    // not fail the suite.)
    assert!(
        median < IDLE_TICK,
        "parked-request median {median:?} is not under IDLE_TICK {IDLE_TICK:?} \
         — the poll backend is ticking, not blocking (samples: {samples_ns:?})"
    );
    server.shutdown();
}

/// An idle server makes ≈ 0 poll wakeups: with every loop blocked on
/// far-future deadlines, a one-second quiet window adds at most the
/// couple of wakeups our own measurement requests cause — versus the
/// ~1000/loop a ticking sweep would burn. This is the idle-CPU smoke CI
/// runs.
#[cfg(unix)]
#[test]
fn idle_server_makes_almost_no_poll_wakeups() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(2)
            .with_readiness(ReadinessBackend::Poll),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // One parked keep-alive connection, so the idle window also covers
    // a loop that *owns* a connection (interest set non-empty).
    let mut parked = Client::connect(&addr).expect("connect parked");
    let (status, _) = parked.request("GET", "/healthz", "").expect("park");
    assert_eq!(status, 200);

    // Same keep-alive client for both snapshots: no new connections
    // (hence no accept-path wakeups) land inside the window.
    let mut observer = Client::connect(&addr).expect("connect observer");
    let (status, before) = observer.request("GET", "/metrics", "").expect("before");
    assert_eq!(status, 200);
    let before: serde::json::Value = serde::json::from_str(&before).expect("metrics JSON");
    assert_eq!(backend_name(&before), "poll");

    std::thread::sleep(Duration::from_secs(1));

    let (status, after) = observer.request("GET", "/metrics", "").expect("after");
    assert_eq!(status, 200);
    let after: serde::json::Value = serde::json::from_str(&after).expect("metrics JSON");

    let wakeups =
        field(&after, "readiness", "poll_wakeups") - field(&before, "readiness", "poll_wakeups");
    // The second /metrics request itself wakes the observer's loop
    // (that wakeup may be counted before the snapshot); everything else
    // in the window must be silence. A ticking loop would show ~1000.
    assert!(
        wakeups <= 5,
        "idle 1 s window produced {wakeups} poll wakeups — the loops are ticking, not blocking"
    );
    let spurious = field(&after, "readiness", "spurious_wakeups")
        - field(&before, "readiness", "spurious_wakeups");
    assert!(
        spurious <= wakeups,
        "spurious wakeups ({spurious}) cannot exceed wakeups ({wakeups})"
    );
    server.shutdown();
}

/// Regression for the synchronous shed write: a shed client that never
/// reads its 503 must not stall admission. Concurrent over-cap
/// connections still get their 503 promptly, a freed slot is reusable
/// while the stalled client still hasn't read a byte, and the stalled
/// client's 503 is delivered in the end (staged nonblocking by an event
/// loop).
#[test]
fn stalled_shed_client_does_not_stall_admission() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_max_connections(1),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Occupy the single admission slot with a served connection.
    let mut occupant = Client::connect(&addr).expect("connect occupant");
    let (status, _) = occupant.request("GET", "/healthz", "").expect("occupy");
    assert_eq!(status, 200);

    // The stalled shed client: over cap, owed a 503, never reads.
    let stalled = TcpStream::connect(&addr).expect("stalled shed connection");

    // A concurrent over-cap connection must still be shed promptly —
    // with the old synchronous shed write, a stalled predecessor could
    // serialize this behind a 1 s write timeout.
    let started = Instant::now();
    let mut concurrent = TcpStream::connect(&addr).expect("concurrent shed connection");
    concurrent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut response = String::new();
    concurrent
        .read_to_string(&mut response)
        .expect("read the concurrent 503 to EOF");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "concurrent shed took {:?} behind a stalled shed client",
        started.elapsed()
    );
    assert!(
        response.starts_with("HTTP/1.1 503 "),
        "expected a 503, got {response:?}"
    );
    assert!(
        response.contains(&format!("retry-after: {RETRY_AFTER_SECS}\r\n")),
        "503 must carry Retry-After: {response:?}"
    );

    // Free the slot; a fresh connection must get *served* (not shed)
    // once the server reaps the occupant — all while the stalled client
    // still hasn't read its 503. Shed connections are adopted uncounted,
    // so the parked stalled stream must not block readmission either.
    drop(occupant);
    let deadline = Instant::now() + Duration::from_secs(5);
    let doc = loop {
        // The one admission slot frees once the server reaps the
        // dropped occupant; until then connections are still shed.
        let mut client = Client::connect(&addr).expect("connect after slot freed");
        let (status, _) = client.request("GET", "/healthz", "").expect("readmitted");
        if status == 200 {
            // Same keep-alive connection: a second connect would be
            // shed by the slot *this* client now holds.
            let (status, body) = client.request("GET", "/metrics", "").expect("metrics");
            assert_eq!(status, 200, "{body}");
            let parsed: serde::json::Value =
                serde::json::from_str(&body).expect("metrics endpoint emits valid JSON");
            break parsed;
        }
        assert_eq!(status, 503, "only shed or served are possible");
        assert!(
            Instant::now() < deadline,
            "slot never became reusable behind a stalled shed client"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // The stalled client's 503 was staged nonblocking and must arrive.
    let mut stalled = stalled;
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut response = String::new();
    stalled
        .read_to_string(&mut response)
        .expect("read the stalled 503 to EOF");
    assert!(
        response.starts_with("HTTP/1.1 503 "),
        "stalled shed client still gets its 503, got {response:?}"
    );

    assert!(
        field(&doc, "overload", "shed_503") >= 2,
        "both over-cap connections were counted"
    );
    assert_eq!(field(&doc, "readiness", "adopt_errors"), 0);
    server.shutdown();
}

/// `/metrics` reports the backend actually running: an explicit sweep
/// request is honored everywhere, and the wakeup counters stay zero
/// there (sweep never blocks in poll).
#[test]
fn sweep_backend_is_reported_and_never_counts_poll_wakeups() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(2)
            .with_readiness(ReadinessBackend::Sweep),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..3 {
        let (status, _) = client.request("GET", "/healthz", "").expect("request");
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(5));
    }
    let doc = fetch_metrics(&addr);
    assert_eq!(backend_name(&doc), "sweep");
    assert_eq!(
        field(&doc, "readiness", "poll_wakeups"),
        0,
        "the sweep backend never blocks in poll(2)"
    );
    assert_eq!(field(&doc, "readiness", "spurious_wakeups"), 0);
    server.shutdown();
}

/// The CLI surface round-trips: every name the `--readiness` flag
/// accepts parses, unknown names are rejected, and the parsed backend
/// displays back as the same name `/metrics` uses.
#[test]
fn readiness_backend_names_round_trip() {
    assert_eq!(
        "poll".parse::<ReadinessBackend>().expect("poll parses"),
        ReadinessBackend::Poll
    );
    assert_eq!(
        "sweep".parse::<ReadinessBackend>().expect("sweep parses"),
        ReadinessBackend::Sweep
    );
    assert_eq!(ReadinessBackend::Poll.to_string(), "poll");
    assert_eq!(ReadinessBackend::Sweep.to_string(), "sweep");
    let err = "epoll"
        .parse::<ReadinessBackend>()
        .expect_err("unknown name");
    assert!(err.contains("epoll"), "error names the bad input: {err}");
}
