//! Integration suite for `ttsv-serve` serving semantics.
//!
//! * N concurrent clients over a real `TcpListener` on an ephemeral
//!   port, replaying interleaved sessions: every response body must be
//!   **bitwise identical** to evaluating the same floorplan directly
//!   through a fresh `ChipEngine` — at 1, 2, and N server workers.
//! * Session quotas: the exact-LRU table evicts the least-recently-used
//!   session past `max_sessions` (404 afterwards, counted in
//!   `/metrics`), and oversized registrations bounce with 413.
//! * An LRU property test against a naive reference model (eviction
//!   order, counter bookkeeping, capacity enforcement).
//! * Post-eviction correctness: an engine squeezed to 1-entry caches
//!   returns byte-identical responses (evictions change cost, never
//!   results).

use proptest::prelude::*;
use ttsv::serve::client::{trace_power_body, trace_register_body, Client};
use ttsv::serve::lru::LruCache;
use ttsv::serve::protocol::{apply_delta, parse_power_update, parse_register};
use ttsv::serve::server::{ReadinessBackend, Server, ServerConfig};
use ttsv_chip::ChipEngine;

const GRID: usize = 4;
const ROUNDS: usize = 5;
const CLIENTS: usize = 4;

/// What one client's session produced: the register report plus one
/// report per power round, as raw response bodies.
fn drive_session(addr: &str, session: usize) -> Vec<String> {
    let mut client = Client::connect(addr).expect("connect");
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, session))
        .expect("register");
    assert_eq!(status, 201, "{body}");
    let (id_part, report) = body
        .split_once(",\"report\":")
        .expect("register response envelope");
    let id: u64 = id_part
        .strip_prefix("{\"session\":")
        .expect("session id field")
        .parse()
        .expect("numeric session id");
    let mut reports = vec![report
        .strip_suffix('}')
        .expect("envelope close")
        .to_string()];
    for round in 0..ROUNDS {
        // `?full=1` opts out of delta responses so every body compares
        // bitwise against direct engine evaluation.
        let (status, body) = client
            .request(
                "POST",
                &format!("/sessions/{id}/power?full=1"),
                &trace_power_body(GRID, session, round),
            )
            .expect("power update");
        assert_eq!(status, 200, "{body}");
        reports.push(body);
    }
    reports
}

/// The ground truth: the same session replayed directly against a fresh
/// single-worker engine, no sockets involved.
fn direct_session(session: usize) -> Vec<String> {
    let engine = ChipEngine::new().with_workers(1);
    let mut spec = parse_register(trace_register_body(GRID, session).as_bytes()).expect("register");
    let mut reports = vec![engine
        .evaluate_factored(&spec.plan, &spec.model)
        .expect("solvable")
        .to_json()];
    for round in 0..ROUNDS {
        let (plane, map) = parse_power_update(
            trace_power_body(GRID, session, round).as_bytes(),
            &spec.plan,
        )
        .expect("power update");
        spec.plan.update_power_map(plane, map).expect("same grid");
        reports.push(
            engine
                .evaluate_factored(&spec.plan, &spec.model)
                .expect("solvable")
                .to_json(),
        );
    }
    reports
}

#[test]
fn concurrent_sessions_match_direct_evaluation_at_any_worker_count() {
    let expected: Vec<Vec<String>> = (0..CLIENTS).map(direct_session).collect();
    for workers in [1, 2, CLIENTS] {
        let server = Server::start("127.0.0.1:0", ServerConfig::default().with_workers(workers))
            .expect("bind ephemeral port");
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|s| {
                let addr = addr.clone();
                std::thread::spawn(move || drive_session(&addr, s))
            })
            .collect();
        for (s, handle) in handles.into_iter().enumerate() {
            let got = handle.join().expect("client thread");
            assert_eq!(
                got, expected[s],
                "session {s} responses diverged from direct evaluation at {workers} workers"
            );
        }
        server.shutdown();
    }
}

/// Default power responses are deltas: only the tiles whose ΔT changed,
/// plus updated summary statistics. Applying each delta to the previous
/// full report client-side must reproduce the full `ChipReport` JSON
/// bitwise — and the delta must actually be smaller than the full
/// report for a two-tile update.
#[test]
fn delta_responses_reconcile_bitwise_with_full_reports() {
    let expected = direct_session(0);
    let server = Server::start("127.0.0.1:0", ServerConfig::default().with_workers(2))
        .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201, "{body}");
    let mut full = expected[0].clone();

    for round in 0..ROUNDS {
        let (status, delta) = client
            .request(
                "POST",
                "/sessions/1/power",
                &trace_power_body(GRID, 0, round),
            )
            .expect("power update");
        assert_eq!(status, 200, "{delta}");
        assert!(
            delta.starts_with("{\"delta\":true,"),
            "default responses are deltas: {delta}"
        );
        assert!(
            delta.len() < expected[round + 1].len(),
            "a two-tile delta ({}B) must be smaller than the full report ({}B)",
            delta.len(),
            expected[round + 1].len()
        );
        full = apply_delta(&full, &delta).expect("delta applies cleanly");
        assert_eq!(
            full,
            expected[round + 1],
            "round {round}: applying the delta must rebuild the full report bitwise"
        );
    }
    // The server's own full view agrees with the client's rebuilt one.
    let (status, body) = client.request("GET", "/sessions/1", "").expect("read");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, full,
        "server full report matches the delta-rebuilt one"
    );
    server.shutdown();
}

/// The multiplexed path at 32 concurrent connections: responses stay
/// bitwise deterministic no matter how many workers, event loops, or
/// session shards serve them — and identically on both readiness
/// backends (real `poll(2)` and the portable sweep fallback), since
/// every body compares against the same direct-evaluation ground truth.
#[test]
fn thirty_two_concurrent_connections_stay_deterministic() {
    const FANOUT: usize = 32;
    let expected: Vec<Vec<String>> = (0..FANOUT).map(direct_session).collect();
    for readiness in [ReadinessBackend::Poll, ReadinessBackend::Sweep] {
        for (workers, event_loops, shards) in [(1, 1, 1), (2, 2, 8), (4, 3, 5)] {
            let server = Server::start(
                "127.0.0.1:0",
                ServerConfig::default()
                    .with_workers(workers)
                    .with_event_loops(event_loops)
                    .with_session_shards(shards)
                    .with_max_connections(2 * FANOUT)
                    .with_queue_capacity(2 * FANOUT)
                    .with_readiness(readiness),
            )
            .expect("bind ephemeral port");
            let addr = server.addr().to_string();
            let handles: Vec<_> = (0..FANOUT)
                .map(|s| {
                    let addr = addr.clone();
                    std::thread::spawn(move || drive_session(&addr, s))
                })
                .collect();
            for (s, handle) in handles.into_iter().enumerate() {
                let got = handle.join().expect("client thread");
                assert_eq!(
                    got, expected[s],
                    "session {s} diverged at {workers} workers / {event_loops} loops / \
                     {shards} shards on the {readiness} backend"
                );
            }
            server.shutdown();
        }
    }
}

/// `DELETE /sessions/{id}` answers `204 No Content` with an empty body,
/// and the id is gone for good: a later read, update, or second delete
/// against it is a clean 404.
#[test]
fn delete_answers_204_and_the_session_stays_gone() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default().with_workers(1))
        .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let (status, _) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201);
    let (status, body) = client.request("DELETE", "/sessions/1", "").expect("delete");
    assert_eq!(status, 204, "{body}");
    assert!(body.is_empty(), "204 carries no body, got {body:?}");
    for (method, target, body) in [
        ("GET", "/sessions/1", String::new()),
        ("POST", "/sessions/1/power", trace_power_body(GRID, 0, 0)),
        ("DELETE", "/sessions/1", String::new()),
    ] {
        let (status, body) = client.request(method, target, &body).expect("request");
        assert_eq!(status, 404, "{method} {target} after delete: {body}");
    }
    server.shutdown();
}

#[test]
fn lru_quota_evicts_oldest_session_and_metrics_report_it() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(2)
            .with_max_sessions(2)
            .with_max_tiles(GRID * GRID),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    for s in 0..3 {
        let (status, _) = client
            .request("POST", "/sessions", &trace_register_body(GRID, s))
            .expect("register");
        assert_eq!(status, 201);
    }
    // Session 1 (the first id) was LRU-evicted by the third registration.
    let (status, body) = client
        .request("POST", "/sessions/1/power", &trace_power_body(GRID, 0, 0))
        .expect("power update");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("expired"), "{body}");
    // Sessions 2 and 3 still serve.
    for id in [2, 3] {
        let (status, _) = client
            .request("GET", &format!("/sessions/{id}"), "")
            .expect("read session");
        assert_eq!(status, 200);
    }
    // Oversized registration bounces on the tile quota.
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID + 1, 0))
        .expect("register");
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("quota"), "{body}");

    let (status, metrics) = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let doc = serde::json::from_str(&metrics).expect("metrics endpoint emits valid JSON");
    let sessions = doc.get("sessions").expect("sessions block");
    assert_eq!(sessions.get("live").and_then(|v| v.as_usize()), Some(2));
    assert_eq!(sessions.get("capacity").and_then(|v| v.as_usize()), Some(2));
    assert_eq!(
        sessions.get("evictions").and_then(|v| v.as_usize()),
        Some(1)
    );
    let engine = doc.get("engine").expect("engine block");
    assert!(engine
        .get("scenario_hits")
        .and_then(|v| v.as_usize())
        .is_some());
    assert!(doc.get("latency_ns").and_then(|l| l.get("p99")).is_some());
    server.shutdown();
}

#[test]
fn tiny_engine_caches_change_cost_never_results() {
    // Squeeze both engine tiers to one entry: every request thrashes the
    // caches, yet the responses must stay byte-identical to the
    // default-cap server and the direct evaluation.
    let expected = direct_session(0);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            scenario_cache_cap: 1,
            matrix_cache_cap: 1,
            ..ServerConfig::default().with_workers(1)
        },
    )
    .expect("bind ephemeral port");
    let got = drive_session(&server.addr().to_string(), 0);
    assert_eq!(got, expected, "eviction pressure changed a response");
    server.shutdown();
}

/// A naive reference LRU: a Vec in recency order, recomputed the
/// obvious way.
#[derive(Default)]
struct ModelLru {
    capacity: usize,
    entries: Vec<(u8, u32)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn get(&mut self, key: u8) -> Option<u32> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            let entry = self.entries.remove(i);
            self.entries.push(entry);
            Some(self.entries.last().expect("just pushed").1)
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, key: u8, value: u32) -> Option<(u8, u32)> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, value));
        if self.entries.len() > self.capacity {
            self.evictions += 1;
            Some(self.entries.remove(0))
        } else {
            None
        }
    }

    fn remove(&mut self, key: u8) -> Option<u32> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        Some(self.entries.remove(i).1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The serving LRU agrees with the naive model on every observable:
    // lookups, eviction victims, recency order, counters, and length.
    #[test]
    fn lru_matches_the_reference_model(
        capacity in 1usize..6,
        ops in prop::collection::vec((0usize..3, 0u8..8, 0u32..100), 1..60),
    ) {
        let mut real = LruCache::new(capacity);
        let mut model = ModelLru { capacity, ..ModelLru::default() };
        for (op, key, value) in ops {
            match op {
                0 => prop_assert_eq!(real.get(&key).copied(), model.get(key)),
                1 => prop_assert_eq!(real.insert(key, value), model.insert(key, value)),
                _ => prop_assert_eq!(real.remove(&key), model.remove(key)),
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert!(real.len() <= capacity, "capacity violated");
            let real_order: Vec<u8> = real.keys().copied().collect();
            let model_order: Vec<u8> = model.entries.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(real_order, model_order);
            prop_assert_eq!(
                (real.hits(), real.misses(), real.evictions()),
                (model.hits, model.misses, model.evictions)
            );
        }
    }
}
