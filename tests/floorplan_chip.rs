//! Integration tests for the full-chip floorplan engine: a 32×32
//! non-uniform hotspot map through the batch engine with cell dedup, FEM
//! hierarchy reuse across cells, and the JSON report surface.

use ttsv::chip::{ChipEngine, Floorplan, PowerMap, ViaDensityMap};
use ttsv::core::full_chip::CaseStudy;
use ttsv::prelude::*;
// The 32×32 workloads (hotspot: 3 quantized power levels → 3 distinct
// unit cells over 1024 tiles; gradient: all-distinct powers) are shared
// with the `floorplan_chip` bench and `bench_json`.
use ttsv_bench::{gradient_floorplan, hotspot_floorplan};

#[test]
fn hotspot_32x32_dedups_to_far_fewer_cells_than_tiles() {
    let plan = hotspot_floorplan(32);
    let report = ChipEngine::new()
        .evaluate(&plan, &ModelB::paper_b100())
        .unwrap();
    assert_eq!(report.tiles, 1024);
    assert_eq!(report.delta_t.len(), 1024);
    // The dedup counter: solves ≪ cells (3 power levels → 3 solves).
    assert_eq!(report.distinct_cells, 3);
    assert!(
        report.distinct_cells * 100 <= report.tiles,
        "dedup must collapse the batch: {} solves for {} tiles",
        report.distinct_cells,
        report.tiles
    );
    // The hotspot is the argmax and visibly hotter than the background.
    assert!(
        (14..=17).contains(&report.argmax_ix),
        "{}",
        report.argmax_ix
    );
    assert!(
        (14..=17).contains(&report.argmax_iy),
        "{}",
        report.argmax_iy
    );
    assert!(report.max_delta_t > 2.0 * report.get(0, 0));
    assert!(report.mean_delta_t < report.max_delta_t);
    assert!(report.p99_delta_t <= report.max_delta_t);
    // Chip power is conserved by the tiling.
    let chip_total: f64 = plan.plane_totals().iter().map(|p| p.as_watts()).sum();
    assert!((chip_total - 84.0).abs() < 1e-9 * 84.0, "{chip_total}");
}

#[test]
fn gradient_32x32_factored_path_shares_one_factorization_bitwise() {
    // All 1024 tiles carry distinct powers at uniform via density: the
    // scenario-hash dedup can share nothing, but the matrix tier
    // collapses the whole chip onto ONE ladder factorization + 1024
    // back-substitutions — bit-identical to per-tile solves.
    let plan = gradient_floorplan(32);
    let model = ModelB::paper_b100();
    let engine = ChipEngine::new();
    let factored = engine.evaluate_factored(&plan, &model).unwrap();
    assert_eq!(factored.distinct_cells, 1024);
    assert_eq!(engine.factorizations(), 1, "uniform density → one matrix");
    assert_eq!(engine.solves(), 1024);
    let per_tile = ChipEngine::new().evaluate(&plan, &model).unwrap();
    assert_eq!(factored.delta_t, per_tile.delta_t);
    assert_eq!(
        factored.max_delta_t.to_bits(),
        per_tile.max_delta_t.to_bits()
    );
}

#[test]
fn serving_loop_re_solves_only_the_power_delta() {
    // The serving workload: evaluate, update one plane's power map in a
    // few tiles, re-evaluate on the SAME engine — the cross-call
    // scenario cache must confine the new solves to the changed tiles,
    // and the factorization must be reused outright.
    let mut plan = gradient_floorplan(16);
    let model = ModelB::paper_b100();
    let engine = ChipEngine::new();
    let first = engine.evaluate_factored(&plan, &model).unwrap();
    assert_eq!(engine.solves(), 256);
    assert_eq!(engine.factorizations(), 1);

    // Bump 5 tiles of the top plane by 10 %.
    let mut tiles: Vec<Power> = plan.plane_maps()[2].tiles().to_vec();
    for t in tiles.iter_mut().take(5) {
        *t = *t * 1.1;
    }
    plan.update_power_map(2, PowerMap::new(16, 16, tiles).unwrap())
        .unwrap();
    let second = engine.evaluate_factored(&plan, &model).unwrap();
    assert_eq!(
        engine.solves(),
        256 + 5,
        "exactly the five changed tiles re-solve"
    );
    assert_eq!(engine.factorizations(), 1, "geometry unchanged");
    // Unchanged tiles keep their exact values; changed tiles got hotter.
    for i in 5..256 {
        assert_eq!(first.delta_t[i].to_bits(), second.delta_t[i].to_bits());
    }
    for i in 0..5 {
        assert!(second.delta_t[i] > first.delta_t[i]);
    }
}

#[test]
fn fem_reference_reuses_one_hierarchy_across_distinct_cells() {
    use ttsv::fem::{FemPreconditioner, FemSolver};

    // Two distinct power levels on a 3×3 grid; force the iterative
    // multigrid path (Auto picks direct banded on these meshes) and run
    // the batch on one worker: every distinct cell shares one mesh shape,
    // so aggregation must run exactly once — the same pooled-hierarchy
    // guarantee the 1-D sweeps have.
    let cs = CaseStudy::paper();
    let maps = cs
        .plane_powers
        .iter()
        .map(|&total| {
            PowerMap::from_fn(3, 3, |ix, iy| {
                let hot = if ix == 1 && iy == 1 { 4.0 } else { 1.0 };
                total * (hot / 12.0)
            })
            .unwrap()
        })
        .collect();
    let via = ViaDensityMap::uniform(3, 3, cs.density).unwrap();
    let plan = Floorplan::new(&cs, maps, via).unwrap();

    let fem = FemReference::new()
        .with_resolution(FemResolution::coarse())
        .with_solver(FemSolver::Pcg(FemPreconditioner::multigrid()));
    let report = ChipEngine::new()
        .with_workers(1)
        .evaluate(&plan, &fem)
        .unwrap();
    assert_eq!(report.distinct_cells, 2);
    assert_eq!(
        fem.multigrid_builds(),
        1,
        "one mesh shape must aggregate exactly once across the chip"
    );
    assert!(report.get(1, 1) > report.get(0, 0));
}

#[test]
fn report_serializes_to_json_for_serving() {
    let plan = Floorplan::uniform(&CaseStudy::paper(), 2, 2).unwrap();
    let model = ModelA::with_coefficients(CaseStudy::paper_fitting());
    let report = ChipEngine::new().evaluate(&plan, &model).unwrap();
    let json = report.to_json();
    for field in [
        "\"model\":\"Model A\"",
        "\"nx\":2",
        "\"ny\":2",
        "\"delta_t\":[",
        "\"max_delta_t\":",
        "\"p99_delta_t\":",
        "\"argmax_ix\":",
        "\"total_vias\":",
        "\"distinct_cells\":1",
        "\"tiles\":4",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    // Balanced braces/brackets: the emitter produces well-formed JSON.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn non_uniform_via_density_shifts_the_hotspot() {
    // Uniform power, but the left half of the chip has 3× fewer vias:
    // the argmax must land in the sparse half.
    let cs = CaseStudy::paper();
    let n = 8;
    let maps = cs
        .plane_powers
        .iter()
        .map(|&total| PowerMap::uniform(n, n, total).unwrap())
        .collect();
    let via = ViaDensityMap::new(
        n,
        n,
        (0..n * n)
            .map(|i| if i % n < n / 2 { 0.002 } else { 0.006 })
            .collect(),
    )
    .unwrap();
    let plan = Floorplan::new(&cs, maps, via).unwrap();
    let report = ChipEngine::new()
        .evaluate(&plan, &ModelB::paper_b100())
        .unwrap();
    assert_eq!(report.distinct_cells, 2);
    assert!(report.argmax_ix < n / 2, "{}", report.argmax_ix);
    assert!(report.get(0, 0) > report.get(n - 1, 0));
}
