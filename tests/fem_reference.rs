//! Integration tests of the FEM reference pipeline: geometry mapping,
//! axisymmetric vs 3-D Cartesian cross-check, and energy accounting.

use ttsv::fem::axisym::BottomBc;
use ttsv::fem::cartesian::CartesianProblem;
use ttsv::fem::Axis;
use ttsv::prelude::*;
use ttsv::units::PowerDensity;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// The axisymmetric equal-area mapping agrees with a full 3-D Cartesian
/// solve of the same TTSV unit cell within a documented band. This bounds
/// the error of the substitution used throughout the reproduction
/// (DESIGN.md §3).
#[test]
fn axisym_mapping_agrees_with_cartesian_3d() {
    // A simplified one-plane cell: 100×100 µm² footprint, 50 µm silicon,
    // 7 µm ILD on top, heated ILD, 8 µm copper via with 1 µm liner.
    let side = 100.0;
    let t_si = 50.0;
    let t_ild = 7.0;
    let r_via = 8.0;
    let t_liner = 1.0;
    let q = PowerDensity::from_watts_per_cubic_millimeter(70.0);

    // --- 3-D Cartesian with a staircase via --------------------------------
    let x = Axis::builder().segment(um(side), 40).build();
    let y = Axis::builder().segment(um(side), 40).build();
    let z = Axis::builder()
        .segment(um(t_si), 20)
        .segment(um(t_ild), 8)
        .build();
    let mut cart = CartesianProblem::new(x, y, z, Material::silicon().conductivity());
    cart.set_material(
        (um(0.0), um(side)),
        (um(0.0), um(side)),
        (um(t_si), um(t_si + t_ild)),
        Material::silicon_dioxide().conductivity(),
    );
    cart.add_source(
        (um(0.0), um(side)),
        (um(0.0), um(side)),
        (um(t_si), um(t_si + t_ild)),
        q,
    );
    let center = um(side / 2.0);
    cart.set_material_cylinder(
        (center, center),
        um(r_via + t_liner),
        (um(0.0), um(t_si + t_ild)),
        Material::silicon_dioxide().conductivity(),
    );
    cart.set_material_cylinder(
        (center, center),
        um(r_via),
        (um(0.0), um(t_si + t_ild)),
        Material::copper().conductivity(),
    );
    let cart_dt = cart.solve().unwrap().max_temperature().as_kelvin();

    // --- Axisymmetric equal-area disc ---------------------------------------
    let r_eq = Area::square(um(side)).equivalent_radius();
    let r = Axis::builder()
        .segment(um(r_via), 6)
        .segment(um(t_liner), 3)
        .segment(r_eq - um(r_via + t_liner), 24)
        .build();
    let z = Axis::builder()
        .segment(um(t_si), 20)
        .segment(um(t_ild), 8)
        .build();
    let mut axi =
        ttsv::fem::axisym::AxisymmetricProblem::new(r, z, Material::silicon().conductivity());
    axi.set_material(
        (Length::ZERO, r_eq),
        (um(t_si), um(t_si + t_ild)),
        Material::silicon_dioxide().conductivity(),
    );
    axi.add_source((Length::ZERO, r_eq), (um(t_si), um(t_si + t_ild)), q);
    axi.set_material(
        (Length::ZERO, um(r_via)),
        (um(0.0), um(t_si + t_ild)),
        Material::copper().conductivity(),
    );
    axi.set_material(
        (um(r_via), um(r_via + t_liner)),
        (um(0.0), um(t_si + t_ild)),
        Material::silicon_dioxide().conductivity(),
    );
    let axi_dt = axi.solve().unwrap().max_temperature().as_kelvin();

    // The equal-area mapping plus the staircase via should agree within 10%.
    assert!(
        (axi_dt - cart_dt).abs() < 0.10 * cart_dt,
        "axisym {axi_dt} vs cartesian {cart_dt}"
    );
}

/// The FEM adapter conserves energy: the heat crossing the sink equals the
/// scenario's power (per unit cell).
#[test]
fn adapter_conserves_energy() {
    let scenario = Scenario::paper_block().build().unwrap();
    let fem = FemReference::new();
    let problem = fem.build_problem(&scenario).unwrap();
    let field = problem.solve().unwrap();
    let injected = problem.total_source_power().as_watts();
    let drained = field.sink_heat().as_watts();
    assert!(
        (injected - drained).abs() < 1e-6 * injected,
        "in {injected} vs out {drained}"
    );
    // And the per-cell injection equals the scenario total (single via).
    assert!((injected - scenario.total_power().as_watts()).abs() < 1e-9 * injected);
}

/// Mesh convergence on the real paper block: default vs fine resolution
/// agree within 5%.
#[test]
fn adapter_mesh_convergence() {
    let scenario = Scenario::paper_block().build().unwrap();
    let default = FemReference::new()
        .max_delta_t(&scenario)
        .unwrap()
        .as_kelvin();
    let fine = FemReference::new()
        .with_resolution(FemResolution::fine())
        .max_delta_t(&scenario)
        .unwrap()
        .as_kelvin();
    assert!(
        (default - fine).abs() < 0.05 * fine,
        "default {default} vs fine {fine}"
    );
}

/// Pure-radial verification path stays exact (the washer problem used in
/// unit tests, re-run here through the public facade).
#[test]
fn radial_washer_ln_profile_via_facade() {
    let r = Axis::builder()
        .segment(um(5.0), 2)
        .segment(um(45.0), 90)
        .segment(um(5.0), 2)
        .build();
    let z = Axis::builder().segment(um(10.0), 1).build();
    let mut prob = ttsv::fem::axisym::AxisymmetricProblem::new(
        r,
        z,
        ttsv::units::ThermalConductivity::from_watts_per_meter_kelvin(10.0),
    );
    prob.set_bottom(BottomBc::Adiabatic);
    prob.pin(
        (um(0.0), um(5.0)),
        (um(0.0), um(10.0)),
        ttsv::units::TemperatureDelta::ZERO,
    );
    prob.add_source(
        (um(50.0), um(55.0)),
        (um(0.0), um(10.0)),
        PowerDensity::from_watts_per_cubic_millimeter(1.0),
    );
    let total = prob.total_source_power().as_watts();
    let sol = prob.solve().unwrap();
    let t10 = sol.temperature_at(um(10.0), um(5.0)).as_kelvin();
    let t40 = sol.temperature_at(um(40.0), um(5.0)).as_kelvin();
    let want = total * (40.25f64 / 10.25).ln() / (2.0 * std::f64::consts::PI * 10.0 * 10.0e-6);
    assert!(((t40 - t10) - want).abs() < 0.01 * want);
}
