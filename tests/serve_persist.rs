//! Durability suite for `ttsv-serve`: the write-ahead journal, crash
//! recovery, and its failure modes, driven through real servers on real
//! sockets.
//!
//! The pinned invariants:
//!
//! * **Crash recovery is bitwise** — kill a server without shutdown
//!   (`Server::abort`, the in-process stand-in for `SIGKILL`: no final
//!   compaction, fsync, or clean marker), restart from the same
//!   `--state-dir`, and every surviving session's next report is
//!   byte-identical to direct `ChipEngine` evaluation of the same
//!   floorplan history. Session ids keep counting where they left off.
//! * **Torn tails never hurt** — truncating a real server-produced
//!   journal at *every byte offset* still opens: never a panic, always
//!   a valid prefix, with the replayed record count monotone in the
//!   truncation point.
//! * **Tombstones are respected** — a session that was LRU-evicted or
//!   explicitly `DELETE`d before the crash stays gone after recovery.
//! * **Write faults degrade, not kill** — a journal whose writes fail
//!   disables persistence (counted in `/metrics`) while serving
//!   continues bitwise-correct.
//! * **Graceful shutdown round-trips** — `shutdown()` compacts and
//!   stamps the clean marker; the next start replays the compacted
//!   journal to the same bitwise state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ttsv::serve::client::{trace_power_body, trace_register_body, Client};
use ttsv::serve::faults::JournalFaultConfig;
use ttsv::serve::metrics::PersistStats;
use ttsv::serve::persist::{self, FsyncPolicy, Journal, PersistConfig};
use ttsv::serve::server::{Server, ServerConfig};
use ttsv_chip::ChipEngine;

const GRID: usize = 4;
const ROUNDS: usize = 5;

/// A fresh state directory under the system temp dir, unique per test
/// *and* per process so concurrent `cargo test` runs never collide.
fn state_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ttsv-serve-persist-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ground truth: the same session replayed directly against a fresh
/// single-worker engine, no sockets and no journal involved.
fn direct_session(session: usize) -> Vec<String> {
    let engine = ChipEngine::new().with_workers(1);
    let mut spec =
        ttsv::serve::protocol::parse_register(trace_register_body(GRID, session).as_bytes())
            .expect("register");
    let mut reports = vec![engine
        .evaluate_factored(&spec.plan, &spec.model)
        .expect("solvable")
        .to_json()];
    for round in 0..ROUNDS {
        let (plane, map) = ttsv::serve::protocol::parse_power_update(
            trace_power_body(GRID, session, round).as_bytes(),
            &spec.plan,
        )
        .expect("power update");
        spec.plan.update_power_map(plane, map).expect("same grid");
        reports.push(
            engine
                .evaluate_factored(&spec.plan, &spec.model)
                .expect("solvable")
                .to_json(),
        );
    }
    reports
}

/// Registers `session`'s floorplan and applies rounds `0..upto`,
/// returning the allocated id.
fn seed_session(client: &mut Client, session: usize, upto: usize) -> u64 {
    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, session))
        .expect("register");
    assert_eq!(status, 201, "{body}");
    let id: u64 = body
        .split_once("\"session\":")
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .expect("numeric session id");
    for round in 0..upto {
        let (status, body) = client
            .request(
                "POST",
                &format!("/sessions/{id}/power"),
                &trace_power_body(GRID, session, round),
            )
            .expect("power update");
        assert_eq!(status, 200, "{body}");
    }
    id
}

/// The `/metrics` `persistence` block of a running server.
fn persistence_metrics(addr: &str) -> serde::json::Value {
    let mut client = Client::connect(addr).expect("connect for metrics");
    let (status, body) = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200, "{body}");
    let doc: serde::json::Value =
        serde::json::from_str(&body).expect("metrics endpoint emits valid JSON");
    doc.get("persistence").expect("persistence block").clone()
}

fn persist_field(block: &serde::json::Value, name: &str) -> usize {
    block
        .get(name)
        .and_then(serde::json::Value::as_usize)
        .unwrap_or_else(|| panic!("persistence field {name} missing"))
}

/// Kill a journaling server mid-traffic without shutdown, restart from
/// the same state dir, and the recovered sessions answer **bitwise**
/// what a never-crashed server would: the recovered state read, the
/// remaining power rounds, and the id counter all line up with direct
/// engine evaluation.
#[test]
fn crash_recovery_restores_sessions_bitwise() {
    const SESSIONS: usize = 2;
    const PRE_CRASH_ROUNDS: usize = 3;
    let dir = state_dir("crash");
    let expected: Vec<Vec<String>> = (0..SESSIONS).map(direct_session).collect();

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2).with_state_dir(&dir),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let ids: Vec<u64> = (0..SESSIONS)
        .map(|s| seed_session(&mut client, s, PRE_CRASH_ROUNDS))
        .collect();
    assert_eq!(ids, vec![1, 2]);
    drop(client);
    // No shutdown(): no final compaction, no fsync, no clean marker.
    server.abort();

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2).with_state_dir(&dir),
    )
    .expect("restart from the journal");
    let addr = server.addr().to_string();
    let block = persistence_metrics(&addr);
    assert_eq!(persist_field(&block, "recovered_sessions"), SESSIONS);
    assert!(persist_field(&block, "records_replayed") >= SESSIONS * (1 + PRE_CRASH_ROUNDS));

    let mut client = Client::connect(&addr).expect("reconnect");
    for (s, &id) in ids.iter().enumerate() {
        // The recovered state itself: bitwise the report after the last
        // pre-crash round.
        let (status, body) = client
            .request("GET", &format!("/sessions/{id}"), "")
            .expect("read recovered session");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body, expected[s][PRE_CRASH_ROUNDS],
            "session {id} recovered state diverged from direct evaluation"
        );
        // And the remaining rounds continue the same bitwise sequence.
        for round in PRE_CRASH_ROUNDS..ROUNDS {
            let (status, body) = client
                .request(
                    "POST",
                    &format!("/sessions/{id}/power?full=1"),
                    &trace_power_body(GRID, s, round),
                )
                .expect("post-recovery power update");
            assert_eq!(status, 200, "{body}");
            assert_eq!(
                body,
                expected[s][round + 1],
                "session {id} round {round} diverged after recovery"
            );
        }
    }
    // The id counter survived: a fresh registration continues counting
    // instead of reusing a recovered id.
    let next = seed_session(&mut client, 0, 0);
    assert_eq!(next, SESSIONS as u64 + 1, "next_id must survive the crash");
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncate a real server-produced journal at every byte offset: the
/// scan never panics and always yields a valid prefix (monotone in the
/// cut point), and `Journal::open` on the truncated file recovers
/// cleanly at every sampled offset.
#[test]
fn torn_tail_truncation_recovers_a_valid_prefix_at_every_byte() {
    let dir = state_dir("torn");
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_persist(PersistConfig::new(&dir).with_fsync(FsyncPolicy::Never)),
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    seed_session(&mut client, 0, 2);
    drop(client);
    server.abort();

    let journal_path = dir.join("journal.ttsv");
    let bytes = std::fs::read(&journal_path).expect("journal exists");
    assert!(bytes.len() > 100, "journal too small to be interesting");

    // Pure-scan property at every single byte.
    let mut last_records = 0;
    let mut last_valid = 0;
    for cut in 0..=bytes.len() {
        let (records, valid_len) = persist::scan(&bytes[..cut]);
        assert!(valid_len <= cut, "valid prefix cannot exceed the cut");
        assert!(
            records.len() >= last_records && valid_len >= last_valid,
            "replayable prefix must be monotone in the cut point"
        );
        last_records = records.len();
        last_valid = valid_len;
    }
    let full = persist::scan(&bytes).0.len();
    assert_eq!(last_records, full, "the uncut journal replays everything");

    // Full `Journal::open` recovery at every byte: never an error, and
    // the replayed count stays monotone.
    let torn = state_dir("torn-open");
    let mut last_replayed = 0;
    for cut in 0..=bytes.len() {
        std::fs::create_dir_all(&torn).expect("state dir");
        std::fs::write(torn.join("journal.ttsv"), &bytes[..cut]).expect("write truncated");
        let stats = Arc::new(PersistStats::default());
        let (journal, recovery) = Journal::open(PersistConfig::new(&torn), Arc::clone(&stats))
            .expect("a torn tail must never fail recovery");
        assert!(
            recovery.records_replayed >= last_replayed,
            "cut {cut}: replayed count regressed"
        );
        assert!(!recovery.clean_shutdown, "no marker was ever written");
        last_replayed = recovery.records_replayed;
        drop(journal);
    }
    assert_eq!(last_replayed, full as u64);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&torn);
}

/// Tombstones are respected across a crash: a session LRU-evicted by
/// quota pressure and a session explicitly `DELETE`d (204) both stay
/// gone after recovery, while the survivor answers bitwise.
#[test]
fn eviction_and_delete_tombstones_survive_restart() {
    let dir = state_dir("tombstone");
    let expected = direct_session(2);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_max_sessions(2)
            .with_state_dir(&dir),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    // Three registrations into a 2-session quota: session 1 is evicted.
    for s in 0..3 {
        seed_session(&mut client, s, 0);
    }
    // Session 2 goes by explicit DELETE (journaled as a tombstone).
    let (status, body) = client.request("DELETE", "/sessions/2", "").expect("delete");
    assert_eq!(status, 204, "{body}");
    drop(client);
    server.abort();

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_max_sessions(2)
            .with_state_dir(&dir),
    )
    .expect("restart from the journal");
    let addr = server.addr().to_string();
    let block = persistence_metrics(&addr);
    assert_eq!(
        persist_field(&block, "recovered_sessions"),
        1,
        "only session 3 survives the tombstones"
    );
    let mut client = Client::connect(&addr).expect("reconnect");
    for dead in [1, 2] {
        let (status, body) = client
            .request("GET", &format!("/sessions/{dead}"), "")
            .expect("read dead session");
        assert_eq!(status, 404, "session {dead} must stay gone: {body}");
    }
    let (status, body) = client.request("GET", "/sessions/3", "").expect("read");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected[0], "the survivor answers bitwise");
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal whose writes always fail: the first append degrades
/// persistence (counted, `enabled:false` in `/metrics`) and serving
/// continues bitwise-correct — and the next start from that state dir
/// recovers nothing rather than something wrong.
#[test]
fn journal_write_faults_degrade_gracefully_while_serving_continues() {
    let dir = state_dir("degrade");
    let expected = direct_session(0);
    let broken = JournalFaultConfig {
        write_error: 1.0,
        ..JournalFaultConfig::default()
    };
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_persist(PersistConfig::new(&dir).with_faults(broken, 0xDEAD)),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let (status, body) = client
        .request("POST", "/sessions", &trace_register_body(GRID, 0))
        .expect("register");
    assert_eq!(status, 201, "registering must survive the journal fault");
    assert!(body.contains("\"session\":1"), "{body}");
    for round in 0..ROUNDS {
        let (status, body) = client
            .request(
                "POST",
                "/sessions/1/power?full=1",
                &trace_power_body(GRID, 0, round),
            )
            .expect("power update");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body,
            expected[round + 1],
            "round {round} diverged on the degraded server"
        );
    }
    let block = persistence_metrics(&addr);
    assert!(
        matches!(block.get("enabled"), Some(serde::json::Value::Bool(false))),
        "the first write error disables persistence: {block:?}"
    );
    assert!(persist_field(&block, "write_errors") >= 1);
    drop(client);
    server.shutdown();

    // Nothing ever landed in the journal, so a healthy restart recovers
    // an empty table — never a corrupt one.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1).with_state_dir(&dir),
    )
    .expect("restart");
    let addr = server.addr().to_string();
    let block = persistence_metrics(&addr);
    assert_eq!(persist_field(&block, "recovered_sessions"), 0);
    let mut client = Client::connect(&addr).expect("reconnect");
    let (status, _) = client.request("GET", "/sessions/1", "").expect("read");
    assert_eq!(status, 404, "the unjournaled session is gone");
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The graceful path: `shutdown()` compacts the journal and stamps the
/// clean marker; restarting replays the compacted snapshot to the same
/// bitwise state, and a tightened compaction threshold actually folds
/// the dead update records away.
#[test]
fn graceful_shutdown_compacts_and_restart_replays_bitwise() {
    let dir = state_dir("graceful");
    let expected = direct_session(0);
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_persist(PersistConfig::new(&dir).with_compact_min_records(4)),
    )
    .expect("bind ephemeral port");
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    // All rounds hit the same planes, so compaction folds the update
    // history down to one full-replacement record per touched plane.
    let id = seed_session(&mut client, 0, ROUNDS);
    drop(client);
    server.shutdown();

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1).with_state_dir(&dir),
    )
    .expect("restart from the compacted journal");
    let addr = server.addr().to_string();
    let block = persistence_metrics(&addr);
    assert_eq!(persist_field(&block, "recovered_sessions"), 1);
    // Compacted: far fewer records than the 1 + ROUNDS raw appends.
    assert!(
        persist_field(&block, "records_replayed") <= 4,
        "the clean-shutdown compaction must fold the update history: {block:?}"
    );
    let mut client = Client::connect(&addr).expect("reconnect");
    let (status, body) = client
        .request("GET", &format!("/sessions/{id}"), "")
        .expect("read recovered session");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, expected[ROUNDS],
        "the compacted journal replays to the same bitwise state"
    );
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The journaling hot path stays on while clients hammer a server that
/// is also evicting and deleting — then one restart recovers exactly
/// the sessions that should exist. This is the mid-traffic kill from
/// the issue: the abort lands while per-session histories differ.
#[test]
fn mid_traffic_abort_recovers_every_surviving_session_bitwise() {
    const CLIENTS: usize = 3;
    let dir = state_dir("mid-traffic");
    let expected: Vec<Vec<String>> = (0..CLIENTS).map(direct_session).collect();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2).with_state_dir(&dir),
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    // Concurrent clients leave sessions at *different* round depths.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|s| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                seed_session(&mut client, s, s + 1)
            })
        })
        .collect();
    let ids: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    server.abort();

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2).with_state_dir(&dir),
    )
    .expect("restart from the journal");
    let addr = server.addr().to_string();
    assert_eq!(
        persist_field(&persistence_metrics(&addr), "recovered_sessions"),
        CLIENTS
    );
    let mut client = Client::connect(&addr).expect("reconnect");
    for (s, &id) in ids.iter().enumerate() {
        let (status, body) = client
            .request("GET", &format!("/sessions/{id}"), "")
            .expect("read recovered session");
        assert_eq!(status, 200, "{body}");
        // Session `s` stopped after round `s`: its recovered report is
        // that exact point in the direct-evaluation sequence. The id →
        // session mapping is whatever registration order the race
        // produced, which `ids` records.
        assert_eq!(
            body,
            expected[s][s + 1],
            "session {id} recovered at the wrong round"
        );
    }
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
