//! End-to-end runs of the paper experiments (quick fidelity) — the same
//! code paths the `repro` binary uses, asserted on the paper's qualitative
//! claims.

use ttsv::validate::experiments::{self, Fidelity};
use ttsv::validate::metrics::ErrorStats;

#[test]
fn fig4_model_b_tracks_fem_better_than_one_d() {
    let r = experiments::fig4(Fidelity::Quick).unwrap();
    let fem = &r.series_named("FEM").unwrap().values;
    let b = ErrorStats::compare(&r.series_named("Model B (100)").unwrap().values, fem);
    let d = ErrorStats::compare(&r.series_named("1-D").unwrap().values, fem);
    assert!(b.mean_rel < d.mean_rel, "B ({}) must beat 1-D ({})", b, d);
    assert!(b.mean_rel < 0.15, "B within 15% on average: {b}");
}

#[test]
fn fig5_fem_rises_and_segments_converge() {
    let r = experiments::fig5(Fidelity::Quick).unwrap();
    let fem = &r.series_named("FEM").unwrap().values;
    assert!(fem.windows(2).all(|w| w[1] > w[0]));
    // Errors shrink with segment count, as in Table I. (At quick fidelity
    // the reference itself carries a few percent of mesh error, so only the
    // coarse-end ordering is asserted; the full-fidelity ordering is
    // recorded in EXPERIMENTS.md.)
    let err = |name: &str| ErrorStats::compare(&r.series_named(name).unwrap().values, fem).mean_rel;
    assert!(err("Model B (1)") > err("Model B (100)"));
    assert!(err("Model B (1)") > err("Model B (500)"));
}

#[test]
fn table1_runtime_grows_with_segments() {
    let r = experiments::table1(Fidelity::Quick).unwrap();
    let t = &r.series_named("time_ms_per_solve").unwrap().values;
    // B(500) (index 3) costs more than B(1) (index 0).
    assert!(t[3] > t[0], "runtime must grow with segments: {t:?}");
}

#[test]
fn fig6_minimum_is_interior_for_fem() {
    let r = experiments::fig6(Fidelity::Quick).unwrap();
    let fem = &r.series_named("FEM").unwrap().values;
    let min_idx = fem
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert!(
        min_idx > 0 && min_idx < fem.len() - 1,
        "FEM minimum must be interior: {fem:?}"
    );
}

#[test]
fn fig7_division_helps_with_diminishing_returns() {
    let r = experiments::fig7(Fidelity::Quick).unwrap();
    let fem = &r.series_named("FEM").unwrap().values;
    assert!(fem.windows(2).all(|w| w[1] < w[0]));
    let gains: Vec<f64> = fem.windows(2).map(|w| w[0] - w[1]).collect();
    assert!(
        gains.windows(2).all(|g| g[1] < g[0] + 1e-9),
        "gains must shrink: {gains:?}"
    );
}

#[test]
fn case_study_one_d_overestimates() {
    let r = experiments::case_study(Fidelity::Quick).unwrap();
    let dt = &r.series_named("delta_t_c").unwrap().values;
    let (a, b, fem, one_d) = (dt[0], dt[1], dt[2], dt[3]);
    assert!(one_d > a && one_d > b && one_d > fem);
}
