//! Property/fuzz suite for the `ttsv-serve` HTTP layer.
//!
//! The incremental parser's contract: it is a pure function of the bytes
//! buffered so far, it never panics, and malformed input maps to a typed
//! 4xx/5xx. The suite drives that contract with five adversarial input
//! families — malformed start-lines, oversized headers, truncated
//! bodies, split-at-every-byte framing of valid requests, and pipelined
//! request chains — plus raw byte soup.

use proptest::prelude::*;
use ttsv::serve::http::{HttpError, Request, RequestParser, MAX_HEAD_BYTES};

/// Parses everything in one feed, collecting requests until NeedMore or
/// an error.
fn parse_one_shot(wire: &[u8]) -> (Vec<Request>, Option<HttpError>) {
    let mut parser = RequestParser::new();
    parser.feed(wire);
    drain(&mut parser)
}

fn drain(parser: &mut RequestParser) -> (Vec<Request>, Option<HttpError>) {
    let mut requests = Vec::new();
    loop {
        match parser.next_request() {
            Ok(Some(request)) => requests.push(request),
            Ok(None) => return (requests, None),
            Err(e) => return (requests, Some(e)),
        }
    }
}

/// Parses the same bytes split into the given chunk lengths, draining
/// after every feed (the worst-case interleaving a socket can produce).
fn parse_chunked(wire: &[u8], chunk_lens: &[usize]) -> (Vec<Request>, Option<HttpError>) {
    let mut parser = RequestParser::new();
    let mut requests = Vec::new();
    let mut offset = 0;
    let mut lens = chunk_lens.iter().copied().filter(|&n| n > 0);
    while offset < wire.len() {
        let n = lens.next().unwrap_or(1).min(wire.len() - offset);
        parser.feed(&wire[offset..offset + n]);
        offset += n;
        let (mut got, err) = drain(&mut parser);
        requests.append(&mut got);
        if err.is_some() {
            return (requests, err);
        }
    }
    (requests, None)
}

/// A lowercase ASCII token of the given length range.
fn token(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    prop::collection::vec(97u8..123, len)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii range"))
}

/// A valid request the server would accept at the framing layer,
/// rendered to wire bytes.
fn valid_request() -> impl Strategy<Value = Vec<u8>> {
    (
        0usize..3,
        token(1..6),
        prop::collection::vec((token(1..8), token(0..10)), 0..4),
        prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..40),
    )
        .prop_map(|(method_i, path, headers, body)| {
            let method = ["GET", "POST", "DELETE"][method_i];
            let mut wire = format!("{method} /{path} HTTP/1.1\r\n").into_bytes();
            for (name, value) in &headers {
                // A client header name could collide with the framing
                // headers; prefix keeps the generator independent.
                wire.extend_from_slice(format!("x-{name}: {value}\r\n").as_bytes());
            }
            // POST always needs a length; GET/DELETE carry one only when
            // they have a body (exercises both framing paths).
            if method == "POST" || !body.is_empty() {
                wire.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
            }
            wire.extend_from_slice(b"\r\n");
            wire.extend_from_slice(&body);
            wire
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Family 1: malformed start-lines must answer 400/501/505, never
    // panic, and never yield a request.
    #[test]
    fn malformed_start_lines_map_to_typed_errors(
        family in 0usize..6,
        fill in token(1..8),
    ) {
        let start = match family {
            0 => fill.clone(),                               // no spaces at all
            1 => format!("GET /{fill}"),                     // missing version
            2 => format!("get /{fill} HTTP/1.1"),            // lowercase method
            3 => format!("BREW /{fill} HTTP/1.1"),           // unknown method
            4 => format!("GET {fill} HTTP/1.1"),             // target missing '/'
            5 => format!("GET /{fill} HTTP/9.9"),            // bad version
            _ => unreachable!(),
        };
        let wire = format!("{start}\r\n\r\n");
        let (requests, err) = parse_one_shot(wire.as_bytes());
        prop_assert!(requests.is_empty(), "{start:?} produced a request");
        let err = err.expect("malformed start line must error");
        prop_assert!(
            matches!(err.status, 400 | 501 | 505),
            "{start:?} → {}", err.status
        );
    }

    // Family 2: header sections past the cap answer 431 no matter how
    // the oversize happens (one huge value, many fields, or no
    // terminator at all).
    #[test]
    fn oversized_headers_answer_431(
        shape in 0usize..3,
        extra in 1usize..2048,
    ) {
        let wire = match shape {
            0 => format!(
                "GET / HTTP/1.1\r\nbig: {}\r\n\r\n",
                "v".repeat(MAX_HEAD_BYTES + extra)
            ),
            1 => {
                let mut w = String::from("GET / HTTP/1.1\r\n");
                for i in 0..100 {
                    w.push_str(&format!("h{i}: x\r\n"));
                }
                w.push_str("\r\n");
                w
            }
            2 => "A".repeat(MAX_HEAD_BYTES + extra),
            _ => unreachable!(),
        };
        let (requests, err) = parse_one_shot(wire.as_bytes());
        prop_assert!(requests.is_empty());
        prop_assert_eq!(err.expect("oversize must error").status, 431);
    }

    // Family 3: a truncated body is NOT an error — the parser reports
    // "need more" forever (the connection layer times it out), and the
    // eventually-completed request parses normally.
    #[test]
    fn truncated_bodies_wait_instead_of_failing(
        body in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 1..60),
        cut in 0usize..59,
    ) {
        let cut = cut.min(body.len() - 1);
        let head = format!("POST /sessions HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len());
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&body[..cut]);

        let mut parser = RequestParser::new();
        parser.feed(&wire);
        let (requests, err) = drain(&mut parser);
        prop_assert!(requests.is_empty() && err.is_none(), "truncated body must wait");

        parser.feed(&body[cut..]);
        let (requests, err) = drain(&mut parser);
        prop_assert!(err.is_none());
        prop_assert_eq!(requests.len(), 1);
        prop_assert_eq!(&requests[0].body, &body);
    }

    // Family 4: split-at-every-byte framing — a valid request fed
    // byte-at-a-time (and in random chunks) parses identically to the
    // one-shot path.
    #[test]
    fn framing_is_split_invariant(
        wire in valid_request(),
        chunks in prop::collection::vec(1usize..7, 1..40),
    ) {
        let (one_shot, err) = parse_one_shot(&wire);
        prop_assert!(err.is_none(), "generator produced an invalid request: {err:?}");
        prop_assert_eq!(one_shot.len(), 1);

        let (bytewise, err) = parse_chunked(&wire, &vec![1; wire.len()]);
        prop_assert!(err.is_none());
        prop_assert_eq!(&bytewise, &one_shot);

        let (chunked, err) = parse_chunked(&wire, &chunks);
        prop_assert!(err.is_none());
        prop_assert_eq!(&chunked, &one_shot);
    }

    // Family 5: pipelined chains pop in order, whole-buffer or chunked,
    // identical to parsing each request alone.
    #[test]
    fn pipelining_preserves_order_and_content(
        wires in prop::collection::vec(valid_request(), 2..5),
        chunks in prop::collection::vec(1usize..9, 1..60),
    ) {
        let expected: Vec<Request> = wires
            .iter()
            .map(|w| parse_one_shot(w).0.remove(0))
            .collect();
        let stream: Vec<u8> = wires.concat();

        let (batch, err) = parse_one_shot(&stream);
        prop_assert!(err.is_none());
        prop_assert_eq!(&batch, &expected);

        let (chunked, err) = parse_chunked(&stream, &chunks);
        prop_assert!(err.is_none());
        prop_assert_eq!(&chunked, &expected);
    }

    // Byte soup: arbitrary bytes never panic; any error carries one of
    // the documented statuses, split-invariantly.
    #[test]
    fn arbitrary_bytes_never_panic(
        wire in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..200),
    ) {
        let (_, one_shot) = parse_one_shot(&wire);
        let (_, bytewise) = parse_chunked(&wire, &vec![1; wire.len().max(1)]);
        if let Some(e) = &one_shot {
            prop_assert!(
                matches!(e.status, 400 | 411 | 413 | 431 | 501 | 505),
                "undocumented status {}", e.status
            );
        }
        // Error detection must be split-invariant.
        prop_assert_eq!(one_shot.map(|e| e.status), bytewise.map(|e| e.status));
    }
}

/// The protocol layer rejects any JSON body the floorplan constructors
/// would reject — fuzzed through the register parser: random mutations
/// of a valid body never panic and either parse or name the problem.
#[test]
fn register_parser_survives_mutated_bodies() {
    let valid = ttsv::serve::protocol::render_register_body(
        2,
        2,
        &[vec![1.0, 2.0, 3.0, 4.0], vec![0.1, 0.2, 0.3, 0.4]],
        0.005,
    );
    assert!(ttsv::serve::protocol::parse_register(valid.as_bytes()).is_ok());
    // Truncate at every byte: never a panic, always a typed error.
    for cut in 0..valid.len() {
        let _ = ttsv::serve::protocol::parse_register(&valid.as_bytes()[..cut]);
    }
    // Single-byte corruptions.
    for i in 0..valid.len() {
        let mut corrupted = valid.clone().into_bytes();
        corrupted[i] = corrupted[i].wrapping_add(13);
        let _ = ttsv::serve::protocol::parse_register(&corrupted);
    }
}
