//! Wafer thinning is not always good for you (paper §IV-C).
//!
//! The counter-intuitive headline of Fig. 6: ΔT changes *non-monotonically*
//! with the upper-substrate thickness, because thinning the wafer raises
//! the liner's lateral resistance (shorter via sidewall) even as it lowers
//! the vertical resistance. This example sweeps t_Si, prints all models,
//! and then pinpoints the optimum thickness with a golden-section search on
//! Model A — something a closed-form analytical model makes cheap.
//!
//! ```text
//! cargo run --release --example substrate_thinning
//! ```

use ttsv::linalg::golden_section;
use ttsv::prelude::*;

fn scenario_with_tsi(t_si_um: f64) -> Result<Scenario, CoreError> {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(8.0),
            Length::from_micrometers(1.0),
        ))
        .with_ild_thickness(Length::from_micrometers(7.0))
        .with_upper_si_thickness(Length::from_micrometers(t_si_um))
        .build()
}

fn main() -> Result<(), CoreError> {
    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let baseline = OneDModel::new();
    let fem = FemReference::new();

    println!("Max ΔT [°C] vs upper substrate thickness (r = 8 µm, tL = 1 µm)\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10}",
        "t_Si [µm]", "Model A", "Model B(100)", "1-D", "FEM"
    );
    println!("{}", "-".repeat(58));
    for t_si in [5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 80.0] {
        let s = scenario_with_tsi(t_si)?;
        println!(
            "{t_si:<12.0} {:>10.2} {:>12.2} {:>10.2} {:>10.2}",
            model_a.max_delta_t(&s)?.as_celsius(),
            model_b.max_delta_t(&s)?.as_celsius(),
            baseline.max_delta_t(&s)?.as_celsius(),
            fem.max_delta_t(&s)?.as_celsius(),
        );
    }

    // The analytical model is cheap enough to optimize over directly.
    let result = golden_section(
        |t_si| {
            scenario_with_tsi(t_si)
                .and_then(|s| model_a.max_delta_t(&s))
                .map(|t| t.as_celsius())
                .unwrap_or(f64::INFINITY)
        },
        5.0,
        80.0,
        0.05,
    );
    println!(
        "\nModel A's optimum: t_Si ≈ {:.1} µm (ΔT = {:.2} °C, {} model evaluations)",
        result.x, result.f, result.evaluations
    );
    println!(
        "Thinning below the optimum *heats* the stack — the 1-D model, which is\n\
         monotone in t_Si, would recommend thinning forever."
    );
    Ok(())
}
