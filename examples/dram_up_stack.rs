//! The 3-D DRAM-µP case study (paper §IV-E), extended into a design sweep.
//!
//! Reproduces the paper's headline numbers (Model A / Model B(1000) / FEM /
//! 1-D on the 10 mm × 10 mm processor + 2×DRAM stack), then sweeps the TTSV
//! area density to show how many vias this system actually needs for a
//! given thermal budget — and how badly the 1-D model over-provisions.
//!
//! ```text
//! cargo run --release --example dram_up_stack
//! ```

use ttsv::core::full_chip::CaseStudy;
use ttsv::prelude::*;

fn main() -> Result<(), CoreError> {
    let cs = CaseStudy::paper();
    println!(
        "3-D DRAM-µP stack: {:.0} mm² footprint, powers {} W, ~{:.0} TTSVs at {:.1}% density\n",
        cs.footprint.as_square_millimeters(),
        cs.plane_powers
            .iter()
            .map(|p| format!("{:.0}", p.as_watts()))
            .collect::<Vec<_>>()
            .join("/"),
        cs.via_count(),
        cs.density * 100.0
    );

    // --- The paper's table -------------------------------------------------
    let scenario = cs.unit_cell_scenario()?;
    let model_a = ModelA::with_coefficients(CaseStudy::paper_fitting());
    let model_b = ModelB::paper_b1000();
    let baseline = OneDModel::new();
    let fem = FemReference::new();
    let models: Vec<(&str, &dyn ThermalModel, f64)> = vec![
        ("Model A", &model_a, 12.8),
        ("Model B (1000)", &model_b, 13.9),
        ("FEM", &fem, 12.0),
        ("1-D", &baseline, 20.0),
    ];

    println!("{:<16} {:>12} {:>12}", "model", "ΔT [°C]", "paper [°C]");
    println!("{}", "-".repeat(42));
    for (name, model, paper) in &models {
        let dt = model.max_delta_t(&scenario)?;
        println!("{name:<16} {:>12.1} {paper:>12.1}", dt.as_celsius());
    }

    // --- Density sweep: how many vias do we actually need? ------------------
    const BUDGET_C: f64 = 15.0;
    println!("\nTTSV density sweep (budget {BUDGET_C} °C):\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "density [%]", "#vias", "B(1000) °C", "1-D °C"
    );
    println!("{}", "-".repeat(50));
    let mut needed_b = None;
    let mut needed_1d = None;
    for density_pct in [0.1, 0.2, 0.5, 1.0, 2.0, 4.0] {
        let mut variant = cs.clone();
        variant.density = density_pct / 100.0;
        let s = variant.unit_cell_scenario()?;
        let dt_b = model_b.max_delta_t(&s)?.as_celsius();
        let dt_1d = baseline.max_delta_t(&s)?.as_celsius();
        println!(
            "{density_pct:<12.1} {:>10.0} {dt_b:>12.1} {dt_1d:>12.1}",
            variant.via_count()
        );
        if dt_b <= BUDGET_C && needed_b.is_none() {
            needed_b = Some(variant.via_count());
        }
        if dt_1d <= BUDGET_C && needed_1d.is_none() {
            needed_1d = Some(variant.via_count());
        }
    }
    match (needed_b, needed_1d) {
        (Some(b), Some(d)) => println!(
            "\nTo stay under {BUDGET_C} °C, Model B asks for ~{b:.0} vias; \
             the 1-D model would insert ~{d:.0} — {:.1}× more of a critical resource.",
            d / b
        ),
        (Some(b), None) => println!(
            "\nTo stay under {BUDGET_C} °C, Model B asks for ~{b:.0} vias; \
             the 1-D model never meets the budget in this sweep."
        ),
        _ => println!("\nBudget not met in the swept density range."),
    }
    Ok(())
}
