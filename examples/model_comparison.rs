//! Deep-dive comparison of the models on a single scenario.
//!
//! Runs all four models on the Fig. 5 configuration, reports values,
//! runtimes, and errors against the FEM reference, and prints Model B's
//! bulk/via temperature profile next to the FEM z-profile along the via —
//! the distributed model's extra insight over a single max-ΔT number.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use std::time::Instant;

use ttsv::prelude::*;
use ttsv::units::relative_error;

fn main() -> Result<(), CoreError> {
    let scenario = Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(5.0),
            Length::from_micrometers(0.5),
        ))
        .with_ild_thickness(Length::from_micrometers(7.0))
        .build()?;

    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let baseline = OneDModel::new();
    let fem = FemReference::new();

    let fem_start = Instant::now();
    let fem_dt = fem.max_delta_t(&scenario)?.as_celsius();
    let fem_time = fem_start.elapsed();

    println!("Model comparison — Fig. 5 configuration (r = 5 µm, tL = 0.5 µm)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "model", "ΔT [°C]", "err vs FEM", "runtime"
    );
    println!("{}", "-".repeat(54));
    let models: Vec<(&str, &dyn ThermalModel)> = vec![
        ("Model A", &model_a),
        ("Model B (100)", &model_b),
        ("1-D", &baseline),
    ];
    for (name, model) in models {
        let start = Instant::now();
        let dt = model.max_delta_t(&scenario)?.as_celsius();
        let elapsed = start.elapsed();
        println!(
            "{name:<16} {dt:>10.2} {:>11.1}% {:>12}",
            relative_error(dt, fem_dt) * 100.0,
            format!("{:.2?}", elapsed)
        );
    }
    println!(
        "{:<16} {fem_dt:>10.2} {:>12} {:>12}",
        "FEM",
        "-",
        format!("{:.2?}", fem_time)
    );

    // --- Model B's distributed profile --------------------------------------
    let solution = model_b.solve(&scenario)?;
    let bulk = solution.bulk_profile();
    let via = solution.via_profile();
    println!(
        "\nModel B ladder: {} segments, T0 = {:.2} °C",
        bulk.len(),
        solution.t0().as_celsius()
    );
    println!("plane-top bulk temperatures:");
    for (j, t) in solution.plane_top_temperatures().iter().enumerate() {
        println!("  plane {}: {:.2} °C", j + 1, t.as_celsius());
    }
    // Sample the ladder at ten evenly spaced segments.
    println!(
        "\n{:<10} {:>10} {:>10} {:>12}",
        "segment", "bulk °C", "via °C", "bulk − via"
    );
    println!("{}", "-".repeat(46));
    let step = (bulk.len() / 10).max(1);
    for i in (0..bulk.len()).step_by(step) {
        println!(
            "{i:<10} {:>10.2} {:>10.2} {:>12.3}",
            bulk[i].as_celsius(),
            via[i].as_celsius(),
            (bulk[i] - via[i]).as_kelvin()
        );
    }
    println!(
        "\nThe bulk–via gap is the driving force pushing heat through the liner;\n\
         it is largest near the heated top and vanishes toward the sink."
    );

    // --- FEM cross-section --------------------------------------------------
    let field = fem.solve(&scenario)?;
    let r_probe = Length::from_micrometers(2.0); // inside the via
    println!("\nFEM z-profile along the via (r = 2 µm), every ~50 µm:");
    let profile = field.z_profile(r_probe);
    let step = (profile.len() / 12).max(1);
    for (z, t) in profile.iter().step_by(step) {
        println!(
            "  z = {:>7.1} µm: {:>6.2} °C",
            z.as_micrometers(),
            t.as_celsius()
        );
    }
    Ok(())
}
