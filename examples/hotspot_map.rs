//! Full-chip hotspot analysis with the floorplan engine.
//!
//! The paper's §IV-E case study assumes uniform power, so the whole chip
//! is one unit cell. Real processors have hotspots: this example puts a
//! 4×4-tile hotspot (8× the background power density) on the µP plane of
//! the DRAM-µP stack, evaluates the full 16×16 map through Model B with
//! cell dedup, and prints the ΔT heat map, the hotspot statistics, and
//! the JSON report a serving layer would consume.
//!
//! ```text
//! cargo run --release --example hotspot_map
//! ```

use ttsv::core::full_chip::CaseStudy;
use ttsv::prelude::*;

fn main() -> Result<(), CoreError> {
    let cs = CaseStudy::paper();
    let n = 16;

    // µP plane: 8× hotspot in the center, uniform elsewhere; DRAM planes
    // stay uniform. Tile weights are normalized so each plane still
    // dissipates its §IV-E total (70 W + 7 W + 7 W).
    let hotspot = |ix: usize, iy: usize| -> f64 {
        let c = (n as f64 - 1.0) / 2.0;
        if (ix as f64 - c).abs() < 2.0 && (iy as f64 - c).abs() < 2.0 {
            8.0
        } else {
            1.0
        }
    };
    let weight_total: f64 = (0..n)
        .flat_map(|iy| (0..n).map(move |ix| hotspot(ix, iy)))
        .sum();
    let up_map = PowerMap::from_fn(n, n, |ix, iy| {
        cs.plane_powers[0] * (hotspot(ix, iy) / weight_total)
    })?;
    let dram_map = |total: Power| PowerMap::uniform(n, n, total);
    let plan = Floorplan::new(
        &cs,
        vec![
            up_map,
            dram_map(cs.plane_powers[1])?,
            dram_map(cs.plane_powers[2])?,
        ],
        ViaDensityMap::uniform(n, n, cs.density)?,
    )?;

    let model = ModelB::paper_b100();
    let report = ChipEngine::new().evaluate(&plan, &model)?;

    println!(
        "{} on a {}×{} floorplan: {} tiles, {} distinct unit cells solved (dedup)\n",
        report.model, report.nx, report.ny, report.tiles, report.distinct_cells
    );

    // ASCII heat map, one glyph per tile.
    let lo = report.delta_t.iter().copied().fold(f64::INFINITY, f64::min);
    let glyph = |dt: f64| -> char {
        let ramp = [' ', '.', ':', '+', '#', '@'];
        let t = (dt - lo) / (report.max_delta_t - lo).max(1e-12);
        ramp[((t * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1)]
    };
    for iy in 0..report.ny {
        let row: String = (0..report.nx).map(|ix| glyph(report.get(ix, iy))).collect();
        println!("  |{row}|");
    }

    println!(
        "\nhotspot ΔT {:.2} °C at tile ({}, {}), p99 {:.2} °C, mean {:.2} °C over ~{:.0} vias",
        report.max_delta_t,
        report.argmax_ix,
        report.argmax_iy,
        report.p99_delta_t,
        report.mean_delta_t,
        report.total_vias
    );

    // The serving surface: the same report as JSON (truncated here).
    let json = report.to_json();
    println!("\nJSON report ({} bytes): {}...", json.len(), &json[..120]);

    // The uniform-map limit reproduces the single-cell case study.
    let uniform = ChipEngine::new().evaluate(&Floorplan::uniform(&cs, n, n)?, &model)?;
    let unit_cell = model.max_delta_t(&cs.unit_cell_scenario()?)?.as_kelvin();
    println!(
        "\nuniform-map check: floorplan max ΔT {:.6} °C vs unit cell {unit_cell:.6} °C",
        uniform.max_delta_t
    );
    assert!((uniform.max_delta_t - unit_cell).abs() < 1e-7 * unit_cell);
    Ok(())
}
