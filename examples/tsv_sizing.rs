//! TSV sizing: pick the smallest via that meets a thermal budget.
//!
//! The paper's conclusion warns that using the 1-D model in a TTSV
//! planning flow "can result in excessive usage of TTSVs (a critical
//! resource in 3-D ICs)". This example quantifies that: sweep the via
//! radius, find the smallest radius meeting a ΔT budget according to each
//! model, and compare the silicon area each answer would spend.
//!
//! ```text
//! cargo run --release --example tsv_sizing
//! ```

use ttsv::prelude::*;

const BUDGET_C: f64 = 30.0;

fn smallest_radius_meeting_budget(
    model: &dyn ThermalModel,
    radii_um: &[f64],
) -> Result<Option<f64>, CoreError> {
    for &r in radii_um {
        let scenario = Scenario::paper_block()
            .with_tsv(TtsvConfig::new(
                Length::from_micrometers(r),
                Length::from_micrometers(0.5),
            ))
            .build()?;
        if model.max_delta_t(&scenario)?.as_celsius() <= BUDGET_C {
            return Ok(Some(r));
        }
    }
    Ok(None)
}

fn main() -> Result<(), CoreError> {
    let radii: Vec<f64> = (2..=40).map(|r| r as f64 * 0.5).collect();

    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let baseline = OneDModel::new();
    let fem = FemReference::new();

    println!("TSV sizing for a ΔT budget of {BUDGET_C} °C (paper block)\n");
    println!(
        "{:<16} {:>14} {:>18}",
        "model", "min radius [µm]", "via area [µm²]"
    );
    println!("{}", "-".repeat(50));

    let mut chosen: Vec<(&str, Option<f64>)> = Vec::new();
    let models: Vec<(&str, &dyn ThermalModel)> = vec![
        ("FEM", &fem),
        ("Model A", &model_a),
        ("Model B (100)", &model_b),
        ("1-D", &baseline),
    ];
    for (name, model) in models {
        let r = smallest_radius_meeting_budget(model, &radii)?;
        match r {
            Some(r) => {
                let area = Area::circle(Length::from_micrometers(r)).as_square_micrometers();
                println!("{name:<16} {r:>14.1} {area:>18.1}");
            }
            None => println!("{name:<16} {:>14} {:>18}", "none", "-"),
        }
        chosen.push((name, r));
    }

    let fem_r = chosen[0].1;
    let one_d_r = chosen[3].1;
    if let (Some(fem_r), Some(one_d_r)) = (fem_r, one_d_r) {
        let overdesign = (one_d_r / fem_r).powi(2);
        println!(
            "\nThe 1-D model demands a via {one_d_r:.1} µm where {fem_r:.1} µm suffices:\n\
             {overdesign:.1}× the metal area — the over-provisioning the paper warns about."
        );
    }
    Ok(())
}
