//! Quickstart: score one TTSV design with every model in the library.
//!
//! Builds the paper's 100 µm × 100 µm three-plane block, inserts a single
//! copper TTSV, and prints the maximum temperature rise predicted by
//! Model A (compact), Model B (distributed), the traditional 1-D baseline,
//! and the finite-volume reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ttsv::prelude::*;

fn main() -> Result<(), CoreError> {
    // The §IV test block: 3 planes, t_Si1 = 500 µm, t_D = 4 µm, t_b = 1 µm,
    // upper substrates 45 µm, device heat 700 W/mm³ + ILD heat 70 W/mm³.
    let scenario = Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(8.0),
            Length::from_micrometers(0.5),
        ))
        .build()?;

    println!("TTSV quickstart — paper block, r = 8 µm, tL = 0.5 µm");
    println!(
        "stack: {} planes, footprint {:.0} µm², total heat {:.1} mW\n",
        scenario.stack().plane_count(),
        scenario.stack().footprint().as_square_micrometers(),
        scenario.total_power().as_milliwatts()
    );

    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let baseline = OneDModel::new();
    let fem = FemReference::new();

    let models: Vec<(&str, &dyn ThermalModel)> = vec![
        ("Model A", &model_a),
        ("Model B (100)", &model_b),
        ("1-D", &baseline),
        ("FEM", &fem),
    ];

    println!("{:<16} {:>12}", "model", "max ΔT [°C]");
    println!("{}", "-".repeat(30));
    for (name, model) in models {
        let dt = model.max_delta_t(&scenario)?;
        println!("{name:<16} {:>12.2}", dt.as_celsius());
    }

    // A peek inside Model A: how much heat actually uses the via?
    let solution = model_a.solve(&scenario)?;
    println!(
        "\nModel A internals: T0 = {:.2} °C, via carries {:.2} mW of {:.2} mW total",
        solution.t0().as_celsius(),
        solution.via_heat().as_milliwatts(),
        scenario.total_power().as_milliwatts()
    );
    println!(
        "temperature above sink per plane (bulk): {}",
        solution
            .bulk_temperatures()
            .iter()
            .map(|t| format!("{:.2}", t.as_celsius()))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    Ok(())
}
