//! The session server: accept loop, routing, and the shared serving
//! state.
//!
//! One `std::net::TcpListener` accept thread hands each connection to a
//! long-lived bounded [`WorkerPool`]
//! (no thread per connection; the pool's bounded queue is the
//! backpressure). Every worker shares one [`ChipEngine`] whose two cache
//! tiers are bounded by the config's caps — a warm power-delta request
//! re-solves only the tiles whose bits changed, which is the entire
//! point of serving sessions instead of stateless requests.
//!
//! Sessions live in an exact-[`LruCache`]: registering past
//! `max_sessions` evicts the least-recently-used session (counted, and
//! visible in `GET /metrics`); a later request against an evicted id is
//! a clean 404. Per-session work is serialized by a per-session mutex,
//! so one session's responses form a deterministic sequence no matter
//! how many server workers run — the integration suite pins responses
//! bitwise against direct engine evaluation at 1/2/N workers.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ttsv_chip::ChipEngine;
use ttsv_validate::pool::WorkerPool;

use crate::http::{Method, Request, RequestParser, Response};
use crate::lru::LruCache;
use crate::metrics::Metrics;
use crate::protocol::{self, SessionSpec};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handling workers (the accept loop blocks when all are
    /// busy and the pool queue is full — bounded backpressure).
    pub workers: usize,
    /// Live-session quota; registering past it LRU-evicts.
    pub max_sessions: usize,
    /// Per-session tile quota (`nx · ny` at registration).
    pub max_tiles: usize,
    /// Scenario-tier cache cap handed to the shared engine.
    pub scenario_cache_cap: usize,
    /// Matrix-tier cache cap handed to the shared engine.
    pub matrix_cache_cap: usize,
    /// Per-connection read timeout (an idle keep-alive connection is
    /// dropped after this, freeing its worker).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: ttsv_validate::sweep::default_workers(),
            max_sessions: 64,
            max_tiles: 64 * 64,
            scenario_cache_cap: 1 << 16,
            matrix_cache_cap: 1 << 10,
            read_timeout: Duration::from_secs(30),
        }
    }
}

impl ServerConfig {
    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one server worker");
        self.workers = workers;
        self
    }

    /// Overrides the live-session quota.
    ///
    /// # Panics
    ///
    /// Panics if `max_sessions` is zero.
    #[must_use]
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        assert!(max_sessions > 0, "need room for at least one session");
        self.max_sessions = max_sessions;
        self
    }

    /// Overrides the per-session tile quota.
    ///
    /// # Panics
    ///
    /// Panics if `max_tiles` is zero.
    #[must_use]
    pub fn with_max_tiles(mut self, max_tiles: usize) -> Self {
        assert!(max_tiles > 0, "need room for at least one tile");
        self.max_tiles = max_tiles;
        self
    }
}

/// One registered session: the mutable floorplan plus its model.
struct Session {
    spec: Mutex<SessionSpec>,
}

/// State shared by every connection worker.
struct ServerState {
    engine: ChipEngine,
    sessions: Mutex<LruCache<u64, Arc<Session>>>,
    next_id: AtomicU64,
    metrics: Metrics,
    max_tiles: usize,
}

impl ServerState {
    fn evaluate(&self, spec: &SessionSpec) -> Result<String, Response> {
        self.engine
            .evaluate_factored(&spec.plan, &spec.model)
            .map(|report| report.to_json())
            .map_err(|e| Response::error(500, &format!("evaluation failed: {e}")))
    }

    fn session(&self, id: u64) -> Result<Arc<Session>, Response> {
        self.sessions
            .lock()
            .expect("session table lock")
            .get(&id)
            .cloned()
            .ok_or_else(|| {
                Response::error(
                    404,
                    &format!("no session {id} (expired or never registered)"),
                )
            })
    }

    fn register(&self, body: &[u8]) -> Response {
        let spec = match protocol::parse_register(body) {
            Ok(spec) => spec,
            Err(e) => return Response::error(400, &e.0),
        };
        if spec.plan.tiles() > self.max_tiles {
            return Response::error(
                413,
                &format!(
                    "floorplan of {} tiles exceeds the per-session quota of {}",
                    spec.plan.tiles(),
                    self.max_tiles
                ),
            );
        }
        // Evaluate before publishing: a session is never visible in a
        // half-registered state, and the cold-session cost is all here.
        let report = match self.evaluate(&spec) {
            Ok(json) => json,
            Err(resp) => return resp,
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            spec: Mutex::new(spec),
        });
        self.sessions
            .lock()
            .expect("session table lock")
            .insert(id, session);
        Response::json(201, format!("{{\"session\":{id},\"report\":{report}}}"))
    }

    fn power_update(&self, id: u64, body: &[u8]) -> Response {
        let session = match self.session(id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        // Per-session serialization: deltas from concurrent clients on
        // the same session apply in some total order, and each response
        // reflects exactly the plan it evaluated.
        let mut spec = session.spec.lock().expect("session lock");
        let (plane, map) = match protocol::parse_power_update(body, &spec.plan) {
            Ok(update) => update,
            Err(e) => return Response::error(400, &e.0),
        };
        if let Err(e) = spec.plan.update_power_map(plane, map) {
            return Response::error(400, &e.to_string());
        }
        match self.evaluate(&spec) {
            Ok(json) => Response::json(200, json),
            Err(resp) => resp,
        }
    }

    fn read_session(&self, id: u64) -> Response {
        let session = match self.session(id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let spec = session.spec.lock().expect("session lock");
        match self.evaluate(&spec) {
            Ok(json) => Response::json(200, json),
            Err(resp) => resp,
        }
    }

    fn delete_session(&self, id: u64) -> Response {
        match self
            .sessions
            .lock()
            .expect("session table lock")
            .remove(&id)
        {
            Some(_) => Response::json(200, format!("{{\"deleted\":{id}}}")),
            None => Response::error(404, &format!("no session {id}")),
        }
    }

    fn metrics_json(&self) -> String {
        let snap = self.metrics.snapshot();
        let (live, capacity, hits, misses, evictions) = {
            let sessions = self.sessions.lock().expect("session table lock");
            (
                sessions.len(),
                sessions.capacity(),
                sessions.hits(),
                sessions.misses(),
                sessions.evictions(),
            )
        };
        let (scenario_entries, matrix_entries) = self.engine.cache_entries();
        format!(
            "{{\"uptime_s\":{:.3},\"requests\":{},\"responses\":{{\"ok_2xx\":{},\"client_4xx\":{},\"server_5xx\":{}}},\
             \"requests_per_sec\":{:.3},\"latency_ns\":{{\"p50\":{},\"p99\":{}}},\
             \"sessions\":{{\"live\":{live},\"capacity\":{capacity},\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions}}},\
             \"engine\":{{\"solves\":{},\"factorizations\":{},\"scenario_hits\":{},\"scenario_misses\":{},\"evictions\":{},\
             \"scenario_entries\":{scenario_entries},\"matrix_entries\":{matrix_entries}}}}}",
            snap.uptime_s,
            snap.requests,
            snap.ok_2xx,
            snap.client_4xx,
            snap.server_5xx,
            snap.requests_per_sec,
            snap.p50_latency_ns,
            snap.p99_latency_ns,
            self.engine.solves(),
            self.engine.factorizations(),
            self.engine.scenario_hits(),
            self.engine.scenario_misses(),
            self.engine.evictions(),
        )
    }

    fn route(&self, request: &Request) -> Response {
        let path = request.target.split('?').next().unwrap_or("");
        match (request.method, path) {
            (Method::Get, "/metrics") => Response::json(200, self.metrics_json()),
            (Method::Get, "/healthz") => Response::json(200, "{\"ok\":true}".into()),
            (Method::Post, "/sessions") => self.register(&request.body),
            (method, path) if path.starts_with("/sessions/") => {
                let rest = &path["/sessions/".len()..];
                let (id_text, tail) = match rest.split_once('/') {
                    Some((id, tail)) => (id, Some(tail)),
                    None => (rest, None),
                };
                let Ok(id) = id_text.parse::<u64>() else {
                    return Response::error(404, &format!("malformed session id {id_text:?}"));
                };
                match (method, tail) {
                    (Method::Post, Some("power")) => self.power_update(id, &request.body),
                    (Method::Get, None) => self.read_session(id),
                    (Method::Delete, None) => self.delete_session(id),
                    (_, Some(other)) => {
                        Response::error(404, &format!("unknown session endpoint {other:?}"))
                    }
                    _ => Response::error(405, "method not allowed on this session endpoint"),
                }
            }
            (_, "/metrics" | "/healthz" | "/sessions") => {
                Response::error(405, "method not allowed on this endpoint")
            }
            _ => Response::error(404, &format!("unknown endpoint {path:?}")),
        }
    }
}

/// Serves one accepted connection until it closes, errors, or idles out.
fn handle_connection(stream: &mut TcpStream, state: &ServerState, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every request already buffered (pipelining) before
        // touching the socket again.
        loop {
            let started = Instant::now();
            match parser.next_request() {
                Ok(Some(request)) => {
                    let response = state.route(&request);
                    let keep_alive = request.keep_alive && response.keep_alive;
                    let response = Response {
                        keep_alive,
                        ..response
                    };
                    state.metrics.record(response.status, started.elapsed());
                    if response.write_to(stream).is_err() || !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let response = Response::from_error(&e);
                    state.metrics.record(response.status, started.elapsed());
                    let _ = response.write_to(stream);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => parser.feed(&chunk[..n]),
        }
    }
}

/// A running server: background accept loop + worker pool, shut down via
/// [`Server::shutdown`] (or drop).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine: ChipEngine::new()
                .with_workers(1)
                .with_scenario_cache_cap(config.scenario_cache_cap)
                .with_matrix_cache_cap(config.matrix_cache_cap),
            sessions: Mutex::new(LruCache::new(config.max_sessions)),
            next_id: AtomicU64::new(1),
            metrics: Metrics::new(),
            max_tiles: config.max_tiles,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let read_timeout = config.read_timeout;
        let workers = config.workers;
        let accept_handle = std::thread::Builder::new()
            .name("ttsv-serve-accept".into())
            .spawn(move || {
                // The pool lives (and drop-joins) inside the accept
                // thread: shutdown drains in-flight connections before
                // `Server::shutdown` returns.
                let pool = WorkerPool::new(workers);
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = conn else { continue };
                    let state = Arc::clone(&state);
                    pool.submit(move || handle_connection(&mut stream, &state, read_timeout));
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight connections, and joins the
    /// accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.accept_handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
