//! The session server: accept loop, routing, and the shared serving
//! state.
//!
//! One `std::net::TcpListener` accept thread hands each connection to a
//! long-lived bounded [`WorkerPool`]
//! (no thread per connection; the pool's bounded queue is the
//! backpressure). Every worker shares one [`ChipEngine`] whose two cache
//! tiers are bounded by the config's caps — a warm power-delta request
//! re-solves only the tiles whose bits changed, which is the entire
//! point of serving sessions instead of stateless requests.
//!
//! Sessions live in an exact-[`LruCache`]: registering past
//! `max_sessions` evicts the least-recently-used session (counted, and
//! visible in `GET /metrics`); a later request against an evicted id is
//! a clean 404. Per-session work is serialized by a per-session mutex,
//! so one session's responses form a deterministic sequence no matter
//! how many server workers run — the integration suite pins responses
//! bitwise against direct engine evaluation at 1/2/N workers.
//!
//! # Overload control and failure containment
//!
//! The server is built to survive *mis*behaving traffic, not just
//! well-formed load (`tests/serve_chaos.rs` pins all of this):
//!
//! * **Admission control** — the accept loop uses
//!   [`WorkerPool::try_submit`]; when every worker is busy and the queue
//!   is full, the connection is answered `503 Service Unavailable` with
//!   a `Retry-After` hint directly on the accept thread and closed, so
//!   tail latency stays bounded instead of queue depth growing without
//!   limit. Shed connections are counted in `/metrics`.
//! * **Per-session flood control** — more than
//!   [`ServerConfig::max_pending_updates`] concurrent requests against
//!   one session answer `429 Too Many Requests` + `Retry-After` instead
//!   of piling onto the session's serialization lock.
//! * **Deadlines** — reads carry the configured idle timeout; once a
//!   request's first byte arrives, the whole request must parse within
//!   [`ServerConfig::request_deadline`] or the connection is answered
//!   `408 Request Timeout` and closed (slowloris protection). Writes
//!   carry [`ServerConfig::write_timeout`], so a slow-reading client
//!   cannot pin a worker forever.
//! * **Panic containment** — every request handler runs under
//!   `catch_unwind`; a panic maps to a typed `500` with the connection,
//!   session table, and metrics left healthy. All shared locks are
//!   acquired with poison recovery, so one bad request can never brick
//!   the server.
//! * **Fault injection** — [`ServerConfig::with_faults`] installs a
//!   deterministic [`ServerFaults`] schedule (injected panics, engine
//!   errors, stalls) so the chaos suite can reproduce failure storms
//!   bit-for-bit.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ttsv_chip::ChipEngine;
use ttsv_validate::pool::{PoolMonitor, WorkerPool};

use crate::faults::{FaultDirective, ServerFaults};
use crate::http::{Method, Request, RequestParser, Response};
use crate::lru::LruCache;
use crate::metrics::Metrics;
use crate::protocol::{self, SessionSpec};

/// The `Retry-After` hint (seconds) on overload responses (503/429).
pub const RETRY_AFTER_SECS: u64 = 1;

/// Locks a mutex, recovering from poisoning. Handler panics are caught
/// at the request boundary, but a panic *while holding* a lock still
/// poisons it; every protected structure here (session table, session
/// spec) is valid at every await-free interleaving, so recovery is
/// sound — and the alternative is one bad request bricking every later
/// `.lock().expect(…)` call.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handling workers.
    pub workers: usize,
    /// Live-session quota; registering past it LRU-evicts.
    pub max_sessions: usize,
    /// Per-session tile quota (`nx · ny` at registration).
    pub max_tiles: usize,
    /// Scenario-tier cache cap handed to the shared engine.
    pub scenario_cache_cap: usize,
    /// Matrix-tier cache cap handed to the shared engine.
    pub matrix_cache_cap: usize,
    /// Per-connection read timeout (an idle keep-alive connection is
    /// dropped after this, freeing its worker).
    pub read_timeout: Duration,
    /// Per-write socket timeout: a client that stops reading its
    /// response loses the connection instead of pinning a worker.
    pub write_timeout: Duration,
    /// Total time a request may take from first byte to fully parsed;
    /// past it the connection is answered 408 and closed.
    pub request_deadline: Duration,
    /// Pending-connection queue bound; `None` keeps the pool default
    /// (4 × workers). Connections past it are shed with 503.
    pub queue_capacity: Option<usize>,
    /// Concurrent requests allowed per session before 429 (flood
    /// control on the per-session serialization lock).
    pub max_pending_updates: usize,
    /// Deterministic fault schedule for chaos testing (`None` in
    /// production: one `Option` check per request).
    pub faults: Option<Arc<ServerFaults>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: ttsv_validate::sweep::default_workers(),
            max_sessions: 64,
            max_tiles: 64 * 64,
            scenario_cache_cap: 1 << 16,
            matrix_cache_cap: 1 << 10,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(60),
            queue_capacity: None,
            max_pending_updates: 8,
            faults: None,
        }
    }
}

impl ServerConfig {
    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one server worker");
        self.workers = workers;
        self
    }

    /// Overrides the live-session quota.
    ///
    /// # Panics
    ///
    /// Panics if `max_sessions` is zero.
    #[must_use]
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        assert!(max_sessions > 0, "need room for at least one session");
        self.max_sessions = max_sessions;
        self
    }

    /// Overrides the per-session tile quota.
    ///
    /// # Panics
    ///
    /// Panics if `max_tiles` is zero.
    #[must_use]
    pub fn with_max_tiles(mut self, max_tiles: usize) -> Self {
        assert!(max_tiles > 0, "need room for at least one tile");
        self.max_tiles = max_tiles;
        self
    }

    /// Overrides the idle read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Overrides the per-write socket timeout.
    #[must_use]
    pub fn with_write_timeout(mut self, write_timeout: Duration) -> Self {
        self.write_timeout = write_timeout;
        self
    }

    /// Overrides the first-byte-to-parsed request deadline.
    #[must_use]
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Overrides the pending-connection queue bound (admission control
    /// sheds with 503 past it).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "the connection queue needs capacity");
        self.queue_capacity = Some(capacity);
        self
    }

    /// Overrides the per-session concurrent-request cap (429 past it).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_max_pending_updates(mut self, cap: usize) -> Self {
        assert!(cap > 0, "need room for at least one pending update");
        self.max_pending_updates = cap;
        self
    }

    /// Installs a deterministic fault-injection schedule (chaos tests).
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<ServerFaults>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// The connection-level timeout bundle `handle_connection` needs.
#[derive(Debug, Clone, Copy)]
struct ConnDeadlines {
    read_timeout: Duration,
    write_timeout: Duration,
    request_deadline: Duration,
}

/// One registered session: the mutable floorplan plus its model, and
/// the flood-control gauge counting requests currently targeting it.
struct Session {
    spec: Mutex<SessionSpec>,
    pending: AtomicUsize,
}

/// Decrements a session's pending-request gauge on drop — panic-safe,
/// so a contained handler panic can never leak a flood-control slot.
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// State shared by every connection worker.
struct ServerState {
    engine: ChipEngine,
    sessions: Mutex<LruCache<u64, Arc<Session>>>,
    next_id: AtomicU64,
    metrics: Metrics,
    max_tiles: usize,
    max_pending_updates: usize,
    pool_monitor: PoolMonitor,
    faults: Option<Arc<ServerFaults>>,
}

impl ServerState {
    fn evaluate(&self, spec: &SessionSpec, directive: FaultDirective) -> Result<String, Response> {
        if let Some(delay) = directive.engine_delay {
            std::thread::sleep(delay);
        }
        // The injected panic fires *here*, mid-evaluation — for a power
        // update that means while the per-session lock is held, so the
        // chaos suite proves poison recovery and not just the
        // `catch_unwind` boundary.
        assert!(
            !directive.panic,
            "injected fault: handler panic mid-evaluation"
        );
        if directive.engine_error {
            return Err(Response::error(
                500,
                "evaluation failed: injected engine fault",
            ));
        }
        self.engine
            .evaluate_factored(&spec.plan, &spec.model)
            .map(|report| report.to_json())
            .map_err(|e| Response::error(500, &format!("evaluation failed: {e}")))
    }

    fn session(&self, id: u64) -> Result<Arc<Session>, Response> {
        lock(&self.sessions).get(&id).cloned().ok_or_else(|| {
            Response::error(
                404,
                &format!("no session {id} (expired or never registered)"),
            )
        })
    }

    fn register(&self, body: &[u8], directive: FaultDirective) -> Response {
        let spec = match protocol::parse_register(body) {
            Ok(spec) => spec,
            Err(e) => return Response::error(400, &e.0),
        };
        if spec.plan.tiles() > self.max_tiles {
            return Response::error(
                413,
                &format!(
                    "floorplan of {} tiles exceeds the per-session quota of {}",
                    spec.plan.tiles(),
                    self.max_tiles
                ),
            );
        }
        // Evaluate before publishing: a session is never visible in a
        // half-registered state, and the cold-session cost is all here.
        let report = match self.evaluate(&spec, directive) {
            Ok(json) => json,
            Err(resp) => return resp,
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            spec: Mutex::new(spec),
            pending: AtomicUsize::new(0),
        });
        lock(&self.sessions).insert(id, session);
        Response::json(201, format!("{{\"session\":{id},\"report\":{report}}}"))
    }

    fn power_update(&self, id: u64, body: &[u8], directive: FaultDirective) -> Response {
        let session = match self.session(id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        // Flood control: past the cap, reject *before* queuing on the
        // session lock — a client hammering one session gets bounded
        // latency (429 + Retry-After) instead of unbounded lock queues.
        let already_pending = session.pending.fetch_add(1, Ordering::SeqCst);
        let _pending = PendingGuard(&session.pending);
        if already_pending >= self.max_pending_updates {
            return Response::overloaded(
                429,
                &format!(
                    "session {id} already has {already_pending} requests in flight; retry shortly"
                ),
                RETRY_AFTER_SECS,
            );
        }
        // Per-session serialization: deltas from concurrent clients on
        // the same session apply in some total order, and each response
        // reflects exactly the plan it evaluated.
        let mut spec = lock(&session.spec);
        let (plane, map) = match protocol::parse_power_update(body, &spec.plan) {
            Ok(update) => update,
            Err(e) => return Response::error(400, &e.0),
        };
        if let Err(e) = spec.plan.update_power_map(plane, map) {
            return Response::error(400, &e.to_string());
        }
        match self.evaluate(&spec, directive) {
            Ok(json) => Response::json(200, json),
            Err(resp) => resp,
        }
    }

    fn read_session(&self, id: u64, directive: FaultDirective) -> Response {
        let session = match self.session(id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let spec = lock(&session.spec);
        match self.evaluate(&spec, directive) {
            Ok(json) => Response::json(200, json),
            Err(resp) => resp,
        }
    }

    fn delete_session(&self, id: u64) -> Response {
        match lock(&self.sessions).remove(&id) {
            Some(_) => Response::json(200, format!("{{\"deleted\":{id}}}")),
            None => Response::error(404, &format!("no session {id}")),
        }
    }

    fn metrics_json(&self) -> String {
        let snap = self.metrics.snapshot();
        let (live, capacity, hits, misses, evictions) = {
            let sessions = lock(&self.sessions);
            (
                sessions.len(),
                sessions.capacity(),
                sessions.hits(),
                sessions.misses(),
                sessions.evictions(),
            )
        };
        let (scenario_entries, matrix_entries) = self.engine.cache_entries();
        format!(
            "{{\"uptime_s\":{:.3},\"requests\":{},\"responses\":{{\"ok_2xx\":{},\"client_4xx\":{},\"server_5xx\":{}}},\
             \"requests_per_sec\":{:.3},\"latency_ns\":{{\"p50\":{},\"p99\":{},\"samples\":{}}},\
             \"overload\":{{\"shed_503\":{},\"rate_limited_429\":{},\"timeouts_408\":{},\"panics\":{},\
             \"inflight\":{},\"queue_depth\":{},\"busy_workers\":{}}},\
             \"sessions\":{{\"live\":{live},\"capacity\":{capacity},\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions}}},\
             \"engine\":{{\"solves\":{},\"factorizations\":{},\"scenario_hits\":{},\"scenario_misses\":{},\"evictions\":{},\
             \"scenario_entries\":{scenario_entries},\"matrix_entries\":{matrix_entries}}}}}",
            snap.uptime_s,
            snap.requests,
            snap.ok_2xx,
            snap.client_4xx,
            snap.server_5xx,
            snap.requests_per_sec,
            snap.p50_latency_ns,
            snap.p99_latency_ns,
            snap.latency_samples,
            snap.shed,
            snap.rate_limited,
            snap.timeouts,
            snap.panics,
            snap.inflight,
            self.pool_monitor.queue_depth(),
            self.pool_monitor.in_flight(),
            self.engine.solves(),
            self.engine.factorizations(),
            self.engine.scenario_hits(),
            self.engine.scenario_misses(),
            self.engine.evictions(),
        )
    }

    /// Routes one parsed request, with the panic boundary: an unwinding
    /// handler (or an injected fault panic) becomes a typed 500 and the
    /// connection, session table, and metrics stay healthy.
    fn handle(&self, request: &Request) -> Response {
        let directive = self
            .faults
            .as_ref()
            .map_or_else(FaultDirective::default, |f| f.begin_request());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.route(request, directive)
        }));
        outcome.unwrap_or_else(|_| {
            self.metrics.note_panic();
            Response::error(
                500,
                "request handler panicked; the request was aborted and the server is healthy",
            )
        })
    }

    fn route(&self, request: &Request, directive: FaultDirective) -> Response {
        let path = request.target.split('?').next().unwrap_or("");
        match (request.method, path) {
            (Method::Get, "/metrics") => Response::json(200, self.metrics_json()),
            (Method::Get, "/healthz") => Response::json(200, "{\"ok\":true}".into()),
            (Method::Post, "/sessions") => self.register(&request.body, directive),
            (method, path) if path.starts_with("/sessions/") => {
                let rest = &path["/sessions/".len()..];
                let (id_text, tail) = match rest.split_once('/') {
                    Some((id, tail)) => (id, Some(tail)),
                    None => (rest, None),
                };
                let Ok(id) = id_text.parse::<u64>() else {
                    return Response::error(404, &format!("malformed session id {id_text:?}"));
                };
                match (method, tail) {
                    (Method::Post, Some("power")) => {
                        self.power_update(id, &request.body, directive)
                    }
                    (Method::Get, None) => self.read_session(id, directive),
                    (Method::Delete, None) => self.delete_session(id),
                    (_, Some(other)) => {
                        Response::error(404, &format!("unknown session endpoint {other:?}"))
                    }
                    _ => Response::error(405, "method not allowed on this session endpoint"),
                }
            }
            (_, "/metrics" | "/healthz" | "/sessions") => {
                Response::error(405, "method not allowed on this endpoint")
            }
            _ => Response::error(404, &format!("unknown endpoint {path:?}")),
        }
    }
}

/// Answers a blown request deadline: a counted `408`, connection closed.
fn answer_timeout(stream: &mut TcpStream, state: &ServerState, started: Instant) {
    state.metrics.record_timeout(started.elapsed());
    let response = Response {
        keep_alive: false,
        ..Response::error(
            408,
            "request did not complete within the server's request deadline",
        )
    };
    let _ = response.write_to(stream);
}

/// Serves one accepted connection until it closes, errors, idles out, or
/// blows a deadline.
fn handle_connection(stream: &mut TcpStream, state: &ServerState, deadlines: &ConnDeadlines) {
    let _inflight = state.metrics.inflight_guard();
    let _ = stream.set_read_timeout(Some(deadlines.read_timeout));
    let _ = stream.set_write_timeout(Some(deadlines.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 4096];
    // First-byte instant of the request currently being parsed; while
    // set, the whole request must finish within `request_deadline`.
    let mut request_started: Option<Instant> = None;
    loop {
        // Drain every request already buffered (pipelining) before
        // touching the socket again.
        loop {
            let started = Instant::now();
            match parser.next_request() {
                Ok(Some(request)) => {
                    request_started = None;
                    let response = state.handle(&request);
                    let keep_alive = request.keep_alive && response.keep_alive;
                    let response = Response {
                        keep_alive,
                        ..response
                    };
                    // 429 only ever means per-session flood control, so
                    // the attribution counter rides the status here.
                    if response.status == 429 {
                        state.metrics.record_rate_limited(started.elapsed());
                    } else {
                        state.metrics.record(response.status, started.elapsed());
                    }
                    if response.write_to(stream).is_err() || !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let response = Response::from_error(&e);
                    state.metrics.record(response.status, started.elapsed());
                    let _ = response.write_to(stream);
                    return;
                }
            }
        }
        // A partially-buffered request head/body is the slowloris shape:
        // cap the next read at whatever deadline budget remains.
        let timeout = if parser.buffered() > 0 {
            let started = *request_started.get_or_insert_with(Instant::now);
            match deadlines.request_deadline.checked_sub(started.elapsed()) {
                Some(remaining) if !remaining.is_zero() => remaining.min(deadlines.read_timeout),
                _ => {
                    answer_timeout(stream, state, started);
                    return;
                }
            }
        } else {
            request_started = None;
            deadlines.read_timeout
        };
        let _ = stream.set_read_timeout(Some(timeout));
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => parser.feed(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A stall mid-request is a timeout worth a typed answer;
                // a stall between requests is just an idle keep-alive
                // connection being reclaimed.
                if let Some(started) = request_started {
                    answer_timeout(stream, state, started);
                }
                return;
            }
            Err(_) => return,
        }
    }
}

/// Load-sheds one connection the pool refused: a counted `503` +
/// `Retry-After`, written on the accept thread with a short timeout so a
/// slow client cannot stall admission.
fn shed_connection(slot: &Mutex<Option<TcpStream>>, state: &ServerState, started: Instant) {
    let Some(mut stream) = lock(slot).take() else {
        return;
    };
    state.metrics.record_shed(started.elapsed());
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = Response {
        keep_alive: false,
        ..Response::overloaded(
            503,
            "server saturated: every worker is busy and the connection queue is full; retry shortly",
            RETRY_AFTER_SECS,
        )
    };
    let _ = response.write_to(&mut stream);
}

/// A running server: background accept loop + worker pool, shut down via
/// [`Server::shutdown`] (or drop).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // The pool is created out here so the shared state can hold its
        // (weak) monitor; it still moves into the accept thread, which
        // drop-joins it on shutdown so in-flight connections drain
        // before `Server::shutdown` returns.
        let pool = match config.queue_capacity {
            Some(cap) => WorkerPool::with_queue_capacity(config.workers, cap),
            None => WorkerPool::new(config.workers),
        };
        let state = Arc::new(ServerState {
            engine: ChipEngine::new()
                .with_workers(1)
                .with_scenario_cache_cap(config.scenario_cache_cap)
                .with_matrix_cache_cap(config.matrix_cache_cap),
            sessions: Mutex::new(LruCache::new(config.max_sessions)),
            next_id: AtomicU64::new(1),
            metrics: Metrics::new(),
            max_tiles: config.max_tiles,
            max_pending_updates: config.max_pending_updates,
            pool_monitor: pool.monitor(),
            faults: config.faults.clone(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let deadlines = ConnDeadlines {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            request_deadline: config.request_deadline,
        };
        let accept_handle = std::thread::Builder::new()
            .name("ttsv-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let started = Instant::now();
                    // `try_submit` hands a rejected job back, but the
                    // stream can't be unpacked from the closure — park
                    // it in a shared slot so the shed path can recover
                    // it and answer 503 on the accept thread.
                    let slot = Arc::new(Mutex::new(Some(stream)));
                    let job_slot = Arc::clone(&slot);
                    let job_state = Arc::clone(&state);
                    let admitted = pool.try_submit(move || {
                        if let Some(mut stream) = lock(&job_slot).take() {
                            handle_connection(&mut stream, &job_state, &deadlines);
                        }
                    });
                    if admitted.is_err() {
                        shed_connection(&slot, &state, started);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight connections, and joins the
    /// accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.accept_handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
