//! The session server: readiness-based connection multiplexing over a
//! small worker pool, routing, and the shared serving state.
//!
//! # Architecture: event loops own connections, workers own evaluations
//!
//! One `std::net::TcpListener` accept thread admits connections (with a
//! live-connection cap and a backoff on accept errors) and hands them
//! round-robin to a small number of **event-loop threads**. Each loop
//! owns its connections outright: sockets are `set_nonblocking(true)`,
//! incoming bytes feed the incremental [`RequestParser`] (whose state is
//! a pure function of the buffered bytes — exactly what a readiness loop
//! needs), and responses drain from per-connection
//! [`WriteBuffer`]s as the sockets accept
//! them. Cheap requests (`/metrics`, `/healthz`, deletes, routing
//! errors) are answered inline on the loop; only **evaluation** work —
//! registration, power updates, session reads — is handed to the
//! long-lived bounded [`WorkerPool`], one request in flight per
//! connection, with completions delivered back to the owning loop.
//! (One latency exception: when the whole server is idle — nothing
//! queued, in flight, or already inline — the loop evaluates right on
//! its own thread, skipping two thread handoffs; concurrent load
//! immediately shifts evaluation back to the pool.)
//! Readiness comes from one of two backends
//! ([`ServerConfig::readiness`]). On unix the default is **poll**: a
//! short yield-spin window after the last progress keeps hot traffic at
//! near-blocking latency, then the loop blocks in real `poll(2)` (via
//! [`crate::poller`], std-only) over its connections' fds plus a
//! self-pipe that the accept thread and worker completions write to, so
//! inbox activity interrupts the block immediately. The poll timeout is
//! derived from the nearest connection deadline, so an idle server
//! makes *zero* wakeups instead of ticking every millisecond (the
//! `/metrics` `readiness` block counts wakeups). Everywhere else — and
//! under `--readiness sweep` — the loops fall back to **sweep**: try
//! every socket, collect `WouldBlock`, park on a condvar with a
//! millisecond tick for deadline enforcement. Both backends run the
//! same service pass, so responses are bitwise identical across them.
//!
//! Every worker shares one [`ChipEngine`] whose two cache tiers are
//! bounded by the config's caps — a warm power-delta request re-solves
//! only the tiles whose bits changed, which is the entire point of
//! serving sessions instead of stateless requests. By default a warm
//! update also *answers* with only what changed: a delta response
//! carrying the changed tiles and updated summary statistics
//! (`?full=1` opts back into the full report; see `docs/PROTOCOL.md`).
//!
//! Sessions live in a [`ShardedLru`]: N independently locked exact-LRU
//! shards keyed by session id, so lookups for different sessions never
//! serialize on one global lock. Registering past `max_sessions` evicts
//! the least-recently-used session in the new session's shard (counted,
//! and visible per shard in `GET /metrics`); a later request against an
//! evicted id is a clean 404. Per-session work is serialized by a
//! per-session mutex, so one session's responses form a deterministic
//! sequence no matter how many workers or loops run — the integration
//! suite pins responses bitwise against direct engine evaluation.
//!
//! # Overload control and failure containment
//!
//! The server is built to survive *mis*behaving traffic, not just
//! well-formed load (`tests/serve_chaos.rs` pins all of this):
//!
//! * **Admission control** — connections past
//!   [`ServerConfig::max_connections`] (default: workers + job-queue
//!   capacity, i.e. exactly the evaluation slots available) are
//!   answered `503 Service Unavailable` with a `Retry-After` hint and
//!   closed, so tail latency stays bounded instead of queue depth
//!   growing without limit. The 503 is written *nonblocking by an event
//!   loop* (the stream is handed over uncounted), so a stalled shed
//!   client can never serialize the accept thread. A request the pool
//!   itself refuses is shed the same way. Shed requests are counted in
//!   `/metrics`.
//! * **Accept-error backoff** — a failing `accept(2)` (fd exhaustion,
//!   aborted handshakes) counts an `accept_errors` metric and backs the
//!   accept thread off exponentially (1 ms doubling to ~128 ms) instead
//!   of spinning the thread at 100% CPU until the condition clears.
//! * **Per-session flood control** — more than
//!   [`ServerConfig::max_pending_updates`] concurrent requests against
//!   one session answer `429 Too Many Requests` + `Retry-After` instead
//!   of piling onto the session's serialization lock.
//! * **Deadlines** — once a request's first byte arrives, the whole
//!   request must parse within [`ServerConfig::request_deadline`] (and
//!   may never stall longer than the read timeout) or the connection is
//!   answered `408 Request Timeout` and closed; the latency histogram
//!   measures from that same first-byte instant. An idle keep-alive
//!   connection is reclaimed silently after the read timeout. A client
//!   that stops reading its response is dropped once the write buffer
//!   makes no progress for [`ServerConfig::write_timeout`].
//! * **Failed updates roll back** — a power update stages its mutation
//!   and restores the previous power map if evaluation fails (engine
//!   error *or* contained panic), so a 500 leaves the session exactly
//!   as it was and a retry evaluates the same pre-update state.
//! * **Panic containment** — every request handler runs under
//!   `catch_unwind`; a panic maps to a typed `500` with the connection,
//!   session table, and metrics left healthy. All shared locks are
//!   acquired with poison recovery, so one bad request can never brick
//!   the server.
//! * **Fault injection** — [`ServerConfig::with_faults`] installs a
//!   deterministic [`ServerFaults`] schedule (injected panics, engine
//!   errors, stalls) so the chaos suite can reproduce failure storms
//!   bit-for-bit.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ttsv_chip::{ChipEngine, ChipReport};
use ttsv_validate::pool::{PoolMonitor, WorkerPool};

use crate::faults::{FaultDirective, ServerFaults};
use crate::http::{Method, Request, RequestParser, Response, WriteBuffer};
use crate::lru::ShardedLru;
use crate::metrics::{Metrics, PersistStats};
use crate::persist::{Journal, PersistConfig};
use crate::poller::{self, PollInterest, Poller, Waker};
use crate::protocol::{self, SessionSpec};

/// The `Retry-After` hint (seconds) on overload responses (503/429).
pub const RETRY_AFTER_SECS: u64 = 1;

/// How long an event loop keeps yield-spinning after its last progress
/// before parking on its condvar. Continuous traffic never leaves the
/// window, so the hot path stays at near-blocking latency.
const SPIN_WINDOW: Duration = Duration::from_micros(200);
/// The sweep backend's parked tick: deadline checks run at least this
/// often there — and a request landing on a parked connection eats up
/// to this much added latency, which is exactly what the poll backend
/// eliminates (`tests/serve_readiness.rs` pins parked-request latency
/// well under this on poll).
pub const IDLE_TICK: Duration = Duration::from_millis(1);
/// The sweep backend's parked tick with no connections at all to watch.
const EMPTY_TICK: Duration = Duration::from_millis(100);

/// How the event loops discover socket readiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadinessBackend {
    /// Block in real `poll(2)` with a deadline-derived timeout; woken by
    /// a self-pipe on inbox activity. Unix only — requesting it
    /// elsewhere (or when poller setup fails) falls back to sweep.
    Poll,
    /// Sweep every socket for `WouldBlock` and park on a condvar with a
    /// millisecond tick. Works everywhere; costs up to [`IDLE_TICK`] of
    /// added latency on parked connections and idle CPU.
    Sweep,
}

impl ReadinessBackend {
    /// The host default: poll where `poll(2)` exists, sweep elsewhere.
    #[must_use]
    pub fn host_default() -> Self {
        if cfg!(unix) {
            Self::Poll
        } else {
            Self::Sweep
        }
    }

    /// The wire/CLI name (`"poll"` / `"sweep"`), as reported in the
    /// `/metrics` `readiness` block.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Poll => "poll",
            Self::Sweep => "sweep",
        }
    }
}

impl FromStr for ReadinessBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poll" => Ok(Self::Poll),
            "sweep" => Ok(Self::Sweep),
            other => Err(format!(
                "unknown readiness backend {other:?} (expected \"poll\" or \"sweep\")"
            )),
        }
    }
}

impl std::fmt::Display for ReadinessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Locks a mutex, recovering from poisoning. Handler panics are caught
/// at the request boundary, but a panic *while holding* a lock still
/// poisons it; every protected structure here (session table, session
/// state, loop inboxes) is valid at every await-free interleaving, so
/// recovery is sound — and the alternative is one bad request bricking
/// every later `.lock().expect(…)` call.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Evaluation workers (the pool event loops dispatch into).
    pub workers: usize,
    /// Event-loop threads owning the nonblocking connections.
    pub event_loops: usize,
    /// Live-session quota; registering past it LRU-evicts.
    pub max_sessions: usize,
    /// Session-table shards (clamped to `max_sessions`; each shard is an
    /// independently locked exact LRU over its slice of the quota).
    pub session_shards: usize,
    /// Per-session tile quota (`nx · ny` at registration).
    pub max_tiles: usize,
    /// Scenario-tier cache cap handed to the shared engine.
    pub scenario_cache_cap: usize,
    /// Matrix-tier cache cap handed to the shared engine.
    pub matrix_cache_cap: usize,
    /// Per-connection read timeout (an idle keep-alive connection is
    /// dropped after this; a mid-request stall this long answers 408).
    pub read_timeout: Duration,
    /// Write-progress timeout: a client that stops reading its response
    /// loses the connection instead of pinning a write buffer forever.
    pub write_timeout: Duration,
    /// Total time a request may take from first byte to fully parsed;
    /// past it the connection is answered 408 and closed.
    pub request_deadline: Duration,
    /// Evaluation-job queue bound; `None` keeps the pool default
    /// (4 × workers). Requests past it are shed with 503.
    pub queue_capacity: Option<usize>,
    /// Live-connection cap; admission sheds with 503 past it. `None`
    /// derives workers + queue capacity — one request in flight per
    /// connection then fills the pool exactly. Raise it to multiplex
    /// more connections than evaluation slots.
    pub max_connections: Option<usize>,
    /// Concurrent requests allowed per session before 429 (flood
    /// control on the per-session serialization lock).
    pub max_pending_updates: usize,
    /// Deterministic fault schedule for chaos testing (`None` in
    /// production: one `Option` check per request).
    pub faults: Option<Arc<ServerFaults>>,
    /// How the event loops discover readiness. Defaults to the host
    /// default (poll on unix, sweep elsewhere), overridable via the
    /// `TTSV_SERVE_READINESS` environment variable (`poll` / `sweep` —
    /// how CI forces the sweep leg) and the serve binary's
    /// `--readiness` flag.
    pub readiness: ReadinessBackend,
    /// Durable-session persistence (`None`: purely in-memory, the
    /// previous behavior). When set, every registration, applied power
    /// update, deletion, and LRU eviction appends to a write-ahead
    /// journal under the configured state directory, and
    /// [`Server::start`] replays any journal found there — see
    /// [`crate::persist`]. Defaults from the `TTSV_SERVE_STATE_DIR`
    /// environment variable (how CI runs the existing suites with
    /// journaling on): each defaulted config gets a *unique*
    /// `srv-{pid}-{n}` subdirectory so concurrently started servers
    /// never share a journal.
    pub persist: Option<PersistConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: ttsv_validate::sweep::default_workers(),
            event_loops: 2,
            max_sessions: 64,
            session_shards: 8,
            max_tiles: 64 * 64,
            scenario_cache_cap: 1 << 16,
            matrix_cache_cap: 1 << 10,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(60),
            queue_capacity: None,
            max_connections: None,
            max_pending_updates: 8,
            faults: None,
            readiness: std::env::var("TTSV_SERVE_READINESS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(ReadinessBackend::host_default),
            persist: std::env::var_os("TTSV_SERVE_STATE_DIR").map(|root| {
                static UNIQUE: AtomicU64 = AtomicU64::new(0);
                let sub = format!(
                    "srv-{}-{}",
                    std::process::id(),
                    UNIQUE.fetch_add(1, Ordering::Relaxed)
                );
                PersistConfig::new(std::path::Path::new(&root).join(sub))
            }),
        }
    }
}

impl ServerConfig {
    /// Overrides the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one server worker");
        self.workers = workers;
        self
    }

    /// Overrides the event-loop thread count.
    ///
    /// # Panics
    ///
    /// Panics if `event_loops` is zero.
    #[must_use]
    pub fn with_event_loops(mut self, event_loops: usize) -> Self {
        assert!(event_loops > 0, "need at least one event loop");
        self.event_loops = event_loops;
        self
    }

    /// Overrides the live-session quota.
    ///
    /// # Panics
    ///
    /// Panics if `max_sessions` is zero.
    #[must_use]
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        assert!(max_sessions > 0, "need room for at least one session");
        self.max_sessions = max_sessions;
        self
    }

    /// Overrides the session-table shard count (clamped to the session
    /// quota at startup).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_session_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one session shard");
        self.session_shards = shards;
        self
    }

    /// Overrides the per-session tile quota.
    ///
    /// # Panics
    ///
    /// Panics if `max_tiles` is zero.
    #[must_use]
    pub fn with_max_tiles(mut self, max_tiles: usize) -> Self {
        assert!(max_tiles > 0, "need room for at least one tile");
        self.max_tiles = max_tiles;
        self
    }

    /// Overrides the idle read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Overrides the write-progress timeout.
    #[must_use]
    pub fn with_write_timeout(mut self, write_timeout: Duration) -> Self {
        self.write_timeout = write_timeout;
        self
    }

    /// Overrides the first-byte-to-parsed request deadline.
    #[must_use]
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Overrides the evaluation-job queue bound (requests are shed with
    /// 503 past it).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "the job queue needs capacity");
        self.queue_capacity = Some(capacity);
        self
    }

    /// Overrides the live-connection cap (admission sheds with 503 past
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        assert!(cap > 0, "need room for at least one connection");
        self.max_connections = Some(cap);
        self
    }

    /// Overrides the per-session concurrent-request cap (429 past it).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_max_pending_updates(mut self, cap: usize) -> Self {
        assert!(cap > 0, "need room for at least one pending update");
        self.max_pending_updates = cap;
        self
    }

    /// Installs a deterministic fault-injection schedule (chaos tests).
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<ServerFaults>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Overrides the readiness backend (see [`ReadinessBackend`]).
    #[must_use]
    pub fn with_readiness(mut self, readiness: ReadinessBackend) -> Self {
        self.readiness = readiness;
        self
    }

    /// Enables durable sessions with default journal tuning: a
    /// write-ahead journal lives in `state_dir` (created if missing) and
    /// startup replays whatever journal it finds there.
    #[must_use]
    pub fn with_state_dir(self, state_dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_persist(PersistConfig::new(state_dir))
    }

    /// Enables durable sessions with full journal tuning (fsync policy,
    /// compaction threshold, fault injection).
    #[must_use]
    pub fn with_persist(mut self, persist: PersistConfig) -> Self {
        self.persist = Some(persist);
        self
    }
}

/// The connection-level timeout bundle the event loops enforce.
#[derive(Debug, Clone, Copy)]
struct ConnDeadlines {
    read_timeout: Duration,
    write_timeout: Duration,
    request_deadline: Duration,
}

/// A session's serialized mutable state: the floorplan + model, and the
/// last successfully evaluated report (the baseline delta responses are
/// computed against).
struct SessionState {
    spec: SessionSpec,
    last_report: Option<ChipReport>,
}

/// One registered session: the serialized state plus the flood-control
/// gauge counting requests currently targeting it.
struct Session {
    state: Mutex<SessionState>,
    pending: AtomicUsize,
}

/// Decrements a session's pending-request gauge on drop — panic-safe,
/// so a contained handler panic can never leak a flood-control slot.
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// State shared by the accept thread, event loops, and workers.
struct ServerState {
    engine: ChipEngine,
    sessions: ShardedLru<Arc<Session>>,
    next_id: AtomicU64,
    metrics: Metrics,
    max_tiles: usize,
    max_pending_updates: usize,
    pool_monitor: PoolMonitor,
    faults: Option<Arc<ServerFaults>>,
    /// Connections currently owned by event loops (plus those in flight
    /// between accept and adoption) — the admission gauge.
    live_connections: AtomicUsize,
    /// Evaluations currently running inline on event loops. While the
    /// whole server is idle (nothing queued, nothing in flight, nothing
    /// inline) a loop evaluates on its own thread — two thread handoffs
    /// cheaper, which is most of a warm request's latency — and this
    /// gauge routes concurrent work to the pool instead.
    inline_busy: AtomicUsize,
    /// The readiness backend the loops actually run (after fallback),
    /// reported in `/metrics`.
    readiness: ReadinessBackend,
    /// The write-ahead journal (`None`: purely in-memory sessions).
    journal: Option<Arc<Journal>>,
    /// Journal counters for the `/metrics` `persistence` block — held
    /// here (not just inside the journal) so the block renders zeros
    /// when persistence is off or failed to open.
    persist: Arc<PersistStats>,
}

impl ServerState {
    fn evaluate(
        &self,
        spec: &SessionSpec,
        directive: FaultDirective,
    ) -> Result<ChipReport, Response> {
        if let Some(delay) = directive.engine_delay {
            std::thread::sleep(delay);
        }
        // The injected panic fires *here*, mid-evaluation — for a power
        // update that means while the per-session lock is held, so the
        // chaos suite proves poison recovery and not just the
        // `catch_unwind` boundary.
        assert!(
            !directive.panic,
            "injected fault: handler panic mid-evaluation"
        );
        if directive.engine_error {
            return Err(Response::error(
                500,
                "evaluation failed: injected engine fault",
            ));
        }
        self.engine
            .evaluate_factored(&spec.plan, &spec.model)
            .map_err(|e| Response::error(500, &format!("evaluation failed: {e}")))
    }

    fn session(&self, id: u64) -> Result<Arc<Session>, Response> {
        self.sessions.get(id).ok_or_else(|| {
            Response::error(
                404,
                &format!("no session {id} (expired or never registered)"),
            )
        })
    }

    fn register(&self, body: &[u8], directive: FaultDirective) -> Response {
        let spec = match protocol::parse_register(body) {
            Ok(spec) => spec,
            Err(e) => return Response::error(400, &e.0),
        };
        if spec.plan.tiles() > self.max_tiles {
            return Response::error(
                413,
                &format!(
                    "floorplan of {} tiles exceeds the per-session quota of {}",
                    spec.plan.tiles(),
                    self.max_tiles
                ),
            );
        }
        // Evaluate before publishing: a session is never visible in a
        // half-registered state, and the cold-session cost is all here.
        let report = match self.evaluate(&spec, directive) {
            Ok(report) => report,
            Err(resp) => return resp,
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Journal the raw wire body *before* publishing: if we crash
        // between the append and the insert, recovery resurrects a
        // session the client was never told about — harmless — whereas
        // the reverse order could lose an acknowledged session.
        if let Some(journal) = &self.journal {
            journal.record_register(id, body);
        }
        let json = report.to_json();
        let session = Arc::new(Session {
            state: Mutex::new(SessionState {
                spec,
                last_report: Some(report),
            }),
            pending: AtomicUsize::new(0),
        });
        self.sessions.insert(id, session);
        Response::json(201, format!("{{\"session\":{id},\"report\":{json}}}"))
    }

    fn power_update(
        &self,
        id: u64,
        body: &[u8],
        full: bool,
        directive: FaultDirective,
    ) -> Response {
        let session = match self.session(id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        // Flood control: past the cap, reject *before* queuing on the
        // session lock — a client hammering one session gets bounded
        // latency (429 + Retry-After) instead of unbounded lock queues.
        let already_pending = session.pending.fetch_add(1, Ordering::SeqCst);
        let _pending = PendingGuard(&session.pending);
        if already_pending >= self.max_pending_updates {
            return Response::overloaded(
                429,
                &format!(
                    "session {id} already has {already_pending} requests in flight; retry shortly"
                ),
                RETRY_AFTER_SECS,
            );
        }
        // Per-session serialization: deltas from concurrent clients on
        // the same session apply in some total order, and each response
        // reflects exactly the plan it evaluated.
        let mut guard = lock(&session.state);
        let state = &mut *guard;
        let (plane, map) = match protocol::parse_power_update(body, &state.spec.plan) {
            Ok(update) => update,
            Err(e) => return Response::error(400, &e.0),
        };
        // Stage the mutation: keep the previous map so *any* evaluation
        // failure — injected fault, engine error, or a panic unwinding
        // through — rolls the plan back. A 500 must leave the session
        // bitwise where it was, or a retry silently evaluates different
        // state.
        let previous = state.spec.plan.plane_maps()[plane].clone();
        if let Err(e) = state.spec.plan.update_power_map(plane, map) {
            return Response::error(400, &e.to_string());
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.evaluate(&state.spec, directive)
        }));
        let result = match outcome {
            Ok(result) => result,
            Err(panic) => {
                let _ = state.spec.plan.update_power_map(plane, previous);
                // Re-raise for the request-level boundary in `handle`,
                // which owns the panic accounting and the typed 500.
                std::panic::resume_unwind(panic);
            }
        };
        match result {
            Ok(report) => {
                // The update is now applied state; journal its raw wire
                // body under the session lock, so the journal's
                // per-session update order is exactly the serialization
                // order the responses reflect.
                if let Some(journal) = &self.journal {
                    journal.record_update(id, plane, body);
                }
                let body = if full {
                    report.to_json()
                } else {
                    match &state.last_report {
                        Some(prev) if prev.delta_t.len() == report.delta_t.len() => {
                            protocol::render_delta(prev, &report)
                        }
                        _ => report.to_json(),
                    }
                };
                state.last_report = Some(report);
                Response::json(200, body)
            }
            Err(resp) => {
                let _ = state.spec.plan.update_power_map(plane, previous);
                resp
            }
        }
    }

    fn read_session(&self, id: u64, directive: FaultDirective) -> Response {
        let session = match self.session(id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let state = lock(&session.state);
        match self.evaluate(&state.spec, directive) {
            Ok(report) => Response::json(200, report.to_json()),
            Err(resp) => resp,
        }
    }

    fn delete_session(&self, id: u64) -> Response {
        match self.sessions.remove(id) {
            Some(_) => {
                // Tombstone so recovery never resurrects it; an explicit
                // delete outlives the process.
                if let Some(journal) = &self.journal {
                    journal.record_delete(id);
                }
                Response::json(204, String::new())
            }
            None => Response::error(404, &format!("no session {id}")),
        }
    }

    fn metrics_json(&self) -> String {
        let snap = self.metrics.snapshot();
        let total = self.sessions.aggregate_stats();
        let mut shards = String::new();
        for (i, s) in self.sessions.shard_stats().iter().enumerate() {
            if i > 0 {
                shards.push(',');
            }
            shards.push_str(&format!(
                "{{\"live\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}}",
                s.live, s.capacity, s.hits, s.misses, s.evictions
            ));
        }
        let (scenario_entries, matrix_entries) = self.engine.cache_entries();
        let persist = self.persist.snapshot();
        let persist_enabled = self.journal.as_ref().is_some_and(|j| j.is_enabled());
        format!(
            "{{\"uptime_s\":{:.3},\"requests\":{},\"responses\":{{\"ok_2xx\":{},\"client_4xx\":{},\"server_5xx\":{}}},\
             \"requests_per_sec\":{:.3},\"latency_ns\":{{\"p50\":{},\"p99\":{},\"samples\":{}}},\
             \"overload\":{{\"shed_503\":{},\"rate_limited_429\":{},\"timeouts_408\":{},\"panics\":{},\
             \"accept_errors\":{},\"inflight\":{},\"queue_depth\":{},\"busy_workers\":{}}},\
             \"readiness\":{{\"backend\":\"{}\",\"poll_wakeups\":{},\"spurious_wakeups\":{},\"adopt_errors\":{}}},\
             \"persistence\":{{\"enabled\":{persist_enabled},\"records_written\":{},\"bytes_written\":{},\
             \"records_replayed\":{},\"recovered_sessions\":{},\"compactions\":{},\"write_errors\":{}}},\
             \"sessions\":{{\"live\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"shards\":[{shards}]}},\
             \"engine\":{{\"solves\":{},\"factorizations\":{},\"scenario_hits\":{},\"scenario_misses\":{},\"evictions\":{},\
             \"scenario_entries\":{scenario_entries},\"matrix_entries\":{matrix_entries}}}}}",
            snap.uptime_s,
            snap.requests,
            snap.ok_2xx,
            snap.client_4xx,
            snap.server_5xx,
            snap.requests_per_sec,
            snap.p50_latency_ns,
            snap.p99_latency_ns,
            snap.latency_samples,
            snap.shed,
            snap.rate_limited,
            snap.timeouts,
            snap.panics,
            snap.accept_errors,
            self.live_connections.load(Ordering::SeqCst),
            self.pool_monitor.queue_depth(),
            self.pool_monitor.in_flight(),
            self.readiness.name(),
            snap.poll_wakeups,
            snap.poll_spurious,
            snap.adopt_errors,
            persist.records_written,
            persist.bytes_written,
            persist.records_replayed,
            persist.recovered_sessions,
            persist.compactions,
            persist.write_errors,
            total.live,
            total.capacity,
            total.hits,
            total.misses,
            total.evictions,
            self.engine.solves(),
            self.engine.factorizations(),
            self.engine.scenario_hits(),
            self.engine.scenario_misses(),
            self.engine.evictions(),
        )
    }

    /// Routes one parsed request, with the panic boundary: an unwinding
    /// handler (or an injected fault panic) becomes a typed 500 and the
    /// connection, session table, and metrics stay healthy.
    fn handle(&self, request: &Request) -> Response {
        let directive = self
            .faults
            .as_ref()
            .map_or_else(FaultDirective::default, |f| f.begin_request());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.route(request, directive)
        }));
        outcome.unwrap_or_else(|_| {
            self.metrics.note_panic();
            Response::error(
                500,
                "request handler panicked; the request was aborted and the server is healthy",
            )
        })
    }

    fn route(&self, request: &Request, directive: FaultDirective) -> Response {
        let (path, query) = match request.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (request.target.as_str(), ""),
        };
        let full = query.split('&').any(|kv| kv == "full=1");
        match (request.method, path) {
            (Method::Get, "/metrics") => Response::json(200, self.metrics_json()),
            (Method::Get, "/healthz") => Response::json(200, "{\"ok\":true}".into()),
            (Method::Post, "/sessions") => self.register(&request.body, directive),
            (method, path) if path.starts_with("/sessions/") => {
                let rest = &path["/sessions/".len()..];
                let (id_text, tail) = match rest.split_once('/') {
                    Some((id, tail)) => (id, Some(tail)),
                    None => (rest, None),
                };
                let Ok(id) = id_text.parse::<u64>() else {
                    return Response::error(404, &format!("malformed session id {id_text:?}"));
                };
                match (method, tail) {
                    (Method::Post, Some("power")) => {
                        self.power_update(id, &request.body, full, directive)
                    }
                    (Method::Get, None) => self.read_session(id, directive),
                    (Method::Delete, None) => self.delete_session(id),
                    (_, Some(other)) => {
                        Response::error(404, &format!("unknown session endpoint {other:?}"))
                    }
                    _ => Response::error(405, "method not allowed on this session endpoint"),
                }
            }
            (_, "/metrics" | "/healthz" | "/sessions") => {
                Response::error(405, "method not allowed on this endpoint")
            }
            _ => Response::error(404, &format!("unknown endpoint {path:?}")),
        }
    }
}

/// Whether a request carries evaluation work (worth a pool slot) or is
/// cheap enough to answer inline on the event loop.
fn needs_pool(request: &Request) -> bool {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method, path) {
        (Method::Post, "/sessions") => true,
        (Method::Post | Method::Get, p) => p.starts_with("/sessions/"),
        _ => false,
    }
}

/// A request dispatched to the pool and not yet answered: the first-byte
/// instant (the honest latency origin) and the request's keep-alive
/// disposition.
struct Pending {
    started: Instant,
    keep_alive: bool,
}

/// One nonblocking connection owned by an event loop.
struct Conn {
    id: u64,
    stream: TcpStream,
    parser: RequestParser,
    write: WriteBuffer,
    /// Last byte-level progress in either direction (idle/stall clock).
    last_activity: Instant,
    /// Last time the write buffer drained any bytes (slow-reader clock).
    last_write_progress: Instant,
    /// First-byte instant of the request currently being parsed; while
    /// set, the whole request must finish within the request deadline.
    request_started: Option<Instant>,
    /// The one request currently evaluating on the pool, if any.
    inflight: Option<Pending>,
    /// Close once the write buffer drains (error responses, `Connection:
    /// close`, shed requests).
    close_after_flush: bool,
    /// The peer half-closed its sending side (read returned 0).
    read_closed: bool,
    /// Remove the connection at the end of this sweep.
    dead: bool,
    /// Whether this connection holds an admission slot
    /// (`live_connections`). Shed connections are adopted *past* the
    /// cap just to deliver their 503, so they must not hold — or
    /// release — a slot.
    counted: bool,
}

impl Conn {
    /// Adopts an accepted stream into the loop. A socket that cannot be
    /// made nonblocking would wedge the whole event loop on its next
    /// read, so a failed `set_nonblocking` (or `set_nodelay`) marks the
    /// connection dead on arrival — it is reaped before ever being
    /// read — and counts an adopt error in `/metrics`.
    fn adopt(stream: TcpStream, id: u64, counted: bool, metrics: &Metrics) -> Self {
        let adopted = stream
            .set_nonblocking(true)
            .and_then(|()| stream.set_nodelay(true));
        if adopted.is_err() {
            metrics.record_adopt_error();
        }
        let now = Instant::now();
        Self {
            id,
            stream,
            parser: RequestParser::new(),
            write: WriteBuffer::new(),
            last_activity: now,
            last_write_progress: now,
            request_started: None,
            inflight: None,
            close_after_flush: false,
            read_closed: false,
            dead: adopted.is_err(),
            counted,
        }
    }
}

/// A loop's mailbox: the accept thread pushes adopted streams (and
/// over-cap streams owed a 503), workers push completed responses,
/// shutdown raises `stop`; [`LoopShared::notify`] wakes the loop out of
/// its idle park.
#[derive(Default)]
struct LoopInbox {
    incoming: Vec<TcpStream>,
    /// Connections shed at admission: the loop adopts them uncounted,
    /// stages the 503, and lets the normal write/timeout machinery
    /// deliver it — the accept thread never blocks on a slow client.
    shed: Vec<TcpStream>,
    completions: Vec<(u64, Response)>,
    stop: bool,
}

impl LoopInbox {
    /// Whether the loop has anything to pick up (parking would be
    /// wrong).
    fn has_work(&self) -> bool {
        !self.incoming.is_empty()
            || !self.shed.is_empty()
            || !self.completions.is_empty()
            || self.stop
    }
}

struct LoopShared {
    inbox: Mutex<LoopInbox>,
    wake: Condvar,
    /// Self-pipe write side (poll backend only): interrupts the loop's
    /// blocked `poll(2)`. The condvar above covers the sweep backend.
    waker: Option<Waker>,
}

impl LoopShared {
    fn new(waker: Option<Waker>) -> Self {
        Self {
            inbox: Mutex::new(LoopInbox::default()),
            wake: Condvar::new(),
            waker,
        }
    }

    /// Wakes the owning loop out of whichever park its backend uses.
    /// Call after pushing into the inbox (and dropping the lock).
    fn notify(&self) {
        self.wake.notify_all();
        if let Some(waker) = &self.waker {
            waker.wake();
        }
    }
}

/// Records one answered request and stages its response behind the
/// connection's write queue.
fn finish_request(conn: &mut Conn, state: &ServerState, response: Response, pending: &Pending) {
    // 429 only ever means per-session flood control, so the attribution
    // counter rides the status here.
    if response.status == 429 {
        state.metrics.record_rate_limited(pending.started.elapsed());
    } else {
        state
            .metrics
            .record(response.status, pending.started.elapsed());
    }
    stage_response(conn, response, pending.keep_alive);
}

/// Stages a response (metrics already recorded by the caller).
fn stage_response(conn: &mut Conn, response: Response, request_keep_alive: bool) {
    let keep_alive = request_keep_alive && response.keep_alive;
    let response = Response {
        keep_alive,
        ..response
    };
    conn.write.push_response(&response);
    if !keep_alive {
        conn.close_after_flush = true;
    }
    let now = Instant::now();
    conn.last_activity = now;
    conn.last_write_progress = now;
}

/// Routes one parsed request: cheap endpoints answer inline on the loop;
/// evaluation work goes to the pool (one in flight per connection), and
/// a pool refusal is shed with a counted 503.
fn dispatch_request(
    conn: &mut Conn,
    request: Request,
    started: Instant,
    state: &Arc<ServerState>,
    shared: &Arc<LoopShared>,
    pool: &WorkerPool,
) {
    let pending = Pending {
        started,
        keep_alive: request.keep_alive,
    };
    if !needs_pool(&request) {
        let response = state.handle(&request);
        finish_request(conn, state, response, &pending);
        return;
    }
    // Fast path: with the whole server idle, two thread handoffs (loop →
    // worker → loop) dominate a warm request, so evaluate right here.
    // The gauges race benignly — two loops may both start inline — but
    // the moment anything is running, new work goes to the pool and the
    // loop stays free to multiplex.
    let idle = state.inline_busy.load(Ordering::SeqCst) == 0
        && state.pool_monitor.queue_depth() == 0
        && state.pool_monitor.in_flight() == 0;
    if idle {
        state.inline_busy.fetch_add(1, Ordering::SeqCst);
        // `handle` contains its own catch_unwind, so this cannot leak.
        let response = state.handle(&request);
        state.inline_busy.fetch_sub(1, Ordering::SeqCst);
        finish_request(conn, state, response, &pending);
        return;
    }
    let conn_id = conn.id;
    let job_state = Arc::clone(state);
    let job_shared = Arc::clone(shared);
    let submitted = pool.try_submit(move || {
        let response = job_state.handle(&request);
        let mut inbox = lock(&job_shared.inbox);
        inbox.completions.push((conn_id, response));
        drop(inbox);
        job_shared.notify();
    });
    match submitted {
        Ok(()) => conn.inflight = Some(pending),
        Err(_refused) => {
            state.metrics.record_shed(started.elapsed());
            let response = Response {
                keep_alive: false,
                ..Response::overloaded(
                    503,
                    "server saturated: every worker is busy and the connection queue is full; \
                     retry shortly",
                    RETRY_AFTER_SECS,
                )
            };
            stage_response(conn, response, false);
        }
    }
}

/// One service pass over a connection: flush writes, read fresh bytes,
/// pop/dispatch requests, enforce deadlines. Returns whether any
/// progress was made (the loop's spin-window signal).
fn service_conn(
    conn: &mut Conn,
    state: &Arc<ServerState>,
    shared: &Arc<LoopShared>,
    pool: &WorkerPool,
    deadlines: &ConnDeadlines,
    chunk: &mut [u8],
) -> bool {
    if conn.dead {
        return false;
    }
    let mut progress = false;

    // 1. Drain the write buffer as far as the socket allows.
    if !conn.write.is_empty() {
        match conn.write.flush(&mut conn.stream) {
            Ok(0) => {
                if conn.last_write_progress.elapsed() >= deadlines.write_timeout {
                    conn.dead = true; // slow reader
                    return true;
                }
            }
            Ok(_) => {
                progress = true;
                let now = Instant::now();
                conn.last_write_progress = now;
                conn.last_activity = now;
            }
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    if conn.write.is_empty() && conn.close_after_flush {
        conn.dead = true;
        return true;
    }

    // 2. Read whatever has arrived — only when able to act on it (one
    //    request in flight per connection bounds buffering).
    if conn.inflight.is_none() && !conn.close_after_flush && !conn.read_closed {
        loop {
            match conn.stream.read(chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    progress = true;
                    break;
                }
                Ok(n) => {
                    conn.parser.feed(&chunk[..n]);
                    let now = Instant::now();
                    conn.last_activity = now;
                    if conn.request_started.is_none() {
                        conn.request_started = Some(now);
                    }
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
    }

    // 3. Pop buffered requests (pipelining) until one needs the pool.
    while conn.inflight.is_none() && !conn.close_after_flush && !conn.dead {
        let started = conn.request_started;
        match conn.parser.next_request() {
            Ok(Some(request)) => {
                progress = true;
                conn.request_started = None;
                let started = started.unwrap_or_else(Instant::now);
                dispatch_request(conn, request, started, state, shared, pool);
            }
            Ok(None) => break,
            Err(e) => {
                progress = true;
                conn.request_started = None;
                let response = Response::from_error(&e);
                state.metrics.record(
                    response.status,
                    started.map_or(Duration::ZERO, |s| s.elapsed()),
                );
                stage_response(conn, response, false);
                break;
            }
        }
    }

    // 4. A half-closed peer with nothing pending (or an abandoned
    //    partial request) is reaped silently, like the blocking server's
    //    EOF return.
    if conn.read_closed && conn.inflight.is_none() && conn.write.is_empty() {
        conn.dead = true;
        return true;
    }

    // 5. Deadlines: a partial request must beat both the request
    //    deadline (slowloris) and the read timeout since its last byte;
    //    an idle keep-alive connection is reclaimed silently.
    if conn.inflight.is_none() && !conn.close_after_flush {
        if let Some(started) = conn.request_started {
            if started.elapsed() >= deadlines.request_deadline
                || conn.last_activity.elapsed() >= deadlines.read_timeout
            {
                progress = true;
                conn.request_started = None;
                state.metrics.record_timeout(started.elapsed());
                let response = Response {
                    keep_alive: false,
                    ..Response::error(
                        408,
                        "request did not complete within the server's request deadline",
                    )
                };
                stage_response(conn, response, false);
            }
        } else if conn.write.is_empty()
            && conn.parser.buffered() == 0
            && conn.last_activity.elapsed() >= deadlines.read_timeout
        {
            progress = true;
            conn.dead = true;
        }
    }
    progress
}

/// The nearest future instant at which `service_conn` would take a
/// deadline action on `conn`, mirroring its checks exactly: the
/// slow-reader clock while the write buffer is non-empty, the request
/// deadline and read-stall clock while a request is being parsed, and
/// the idle-reclaim clock on a quiet keep-alive connection. `None` when
/// no deadline applies (e.g. the request is in flight on the pool — its
/// completion arrives via the waker, not a timeout).
fn conn_deadline(conn: &Conn, deadlines: &ConnDeadlines) -> Option<Instant> {
    if conn.dead {
        return None;
    }
    let mut nearest: Option<Instant> = None;
    let mut consider = |t: Instant| match nearest {
        Some(n) if n <= t => {}
        _ => nearest = Some(t),
    };
    if !conn.write.is_empty() {
        consider(conn.last_write_progress + deadlines.write_timeout);
    }
    if conn.inflight.is_none() && !conn.close_after_flush {
        if let Some(started) = conn.request_started {
            consider(started + deadlines.request_deadline);
            consider(conn.last_activity + deadlines.read_timeout);
        } else if conn.write.is_empty() && conn.parser.buffered() == 0 {
            consider(conn.last_activity + deadlines.read_timeout);
        }
    }
    nearest
}

/// The directions `service_conn` can currently act on for `conn`: read
/// while a fresh request could be parsed, write while the buffer has
/// bytes to drain. `None` (don't poll this fd at all) when neither —
/// e.g. a request is in flight on the pool, where polling the fd with
/// no interest bits would still surface hang-ups and busy-spin the
/// loop.
fn conn_interest(conn: &Conn) -> Option<PollInterest> {
    if conn.dead {
        return None;
    }
    let read = conn.inflight.is_none() && !conn.close_after_flush && !conn.read_closed;
    let write = !conn.write.is_empty();
    if !read && !write {
        return None;
    }
    Some(PollInterest {
        fd: poller::stream_fd(&conn.stream),
        read,
        write,
    })
}

/// An event loop: owns its connections, discovers readiness via its
/// backend (a blocking `poll(2)` with deadline-derived timeout, or the
/// sweep fallback's condvar tick), and runs the same service pass either
/// way.
fn run_event_loop(
    state: &Arc<ServerState>,
    shared: &Arc<LoopShared>,
    pool: &WorkerPool,
    deadlines: ConnDeadlines,
    mut backend: Option<Poller>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    // Completion routing: conn id → slot in `conns`, rebuilt on reap —
    // O(1) delivery per completion instead of a linear scan (quadratic
    // at high fanout).
    let mut slots: HashMap<u64, usize> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut chunk = [0u8; 4096];
    let mut interests: Vec<PollInterest> = Vec::new();
    let mut spin_until = Instant::now();
    // Set when the last blocked poll reported socket readiness; if the
    // following service pass then makes no progress, that readiness was
    // spurious (e.g. a peer reset between poll and read) and is counted.
    let mut poll_reported_ready = false;
    loop {
        let (incoming, shed, completions, stop) = {
            let mut inbox = lock(&shared.inbox);
            (
                std::mem::take(&mut inbox.incoming),
                std::mem::take(&mut inbox.shed),
                std::mem::take(&mut inbox.completions),
                inbox.stop,
            )
        };
        if stop {
            let counted = conns.iter().filter(|c| c.counted).count();
            state.live_connections.fetch_sub(counted, Ordering::SeqCst);
            return;
        }
        let mut progress = !incoming.is_empty() || !shed.is_empty() || !completions.is_empty();
        for stream in incoming {
            next_conn_id += 1;
            slots.insert(next_conn_id, conns.len());
            conns.push(Conn::adopt(stream, next_conn_id, true, &state.metrics));
        }
        for stream in shed {
            // An over-cap connection owed its 503: adopt it *uncounted*
            // (it must not consume or release an admission slot) with
            // the response already staged; the normal nonblocking write
            // path — and its slow-reader timeout — delivers it.
            next_conn_id += 1;
            slots.insert(next_conn_id, conns.len());
            let mut conn = Conn::adopt(stream, next_conn_id, false, &state.metrics);
            let response = Response {
                keep_alive: false,
                ..Response::overloaded(
                    503,
                    "server saturated: every worker is busy and the connection queue is full; \
                     retry shortly",
                    RETRY_AFTER_SECS,
                )
            };
            stage_response(&mut conn, response, false);
            conns.push(conn);
        }
        for (conn_id, response) in completions {
            // The owning connection may have died while the job ran; the
            // request is still recorded (it was answered, the answer was
            // undeliverable) so the accounting invariant holds.
            if let Some(&slot) = slots.get(&conn_id) {
                let conn = &mut conns[slot];
                debug_assert_eq!(conn.id, conn_id, "stale completion slot");
                if let Some(pending) = conn.inflight.take() {
                    finish_request(conn, state, response, &pending);
                }
            }
        }
        for conn in &mut conns {
            progress |= service_conn(conn, state, shared, pool, &deadlines, &mut chunk);
        }
        // A dead connection with a job still in flight lingers as a
        // tombstone until its completion arrives, so the response is
        // recorded against the real first-byte instant.
        let before = conns.len();
        let mut reaped_counted = 0usize;
        conns.retain(|c| {
            let keep = !c.dead || c.inflight.is_some();
            if !keep && c.counted {
                reaped_counted += 1;
            }
            keep
        });
        if conns.len() != before {
            progress = true;
            if reaped_counted > 0 {
                state
                    .live_connections
                    .fetch_sub(reaped_counted, Ordering::SeqCst);
            }
            slots.clear();
            for (slot, conn) in conns.iter().enumerate() {
                slots.insert(conn.id, slot);
            }
        }
        if poll_reported_ready {
            poll_reported_ready = false;
            if !progress {
                state.metrics.record_poll_spurious();
            }
        }

        let now = Instant::now();
        if progress {
            spin_until = now + SPIN_WINDOW;
            continue;
        }
        if now < spin_until {
            std::thread::yield_now();
            continue;
        }
        match backend.as_mut() {
            Some(poller) => {
                // Re-check the inbox under its lock before blocking; a
                // wake issued after this check still ends the poll,
                // because the wake byte stays queued in the self-pipe.
                if lock(&shared.inbox).has_work() {
                    continue;
                }
                interests.clear();
                interests.extend(conns.iter().filter_map(conn_interest));
                let timeout = conns
                    .iter()
                    .filter_map(|c| conn_deadline(c, &deadlines))
                    .min()
                    .map(|t| t.saturating_duration_since(now));
                match poller.wait(&interests, timeout) {
                    Ok(outcome) => {
                        state.metrics.record_poll_wakeup();
                        poll_reported_ready = outcome.ready > 0 && !outcome.woken;
                    }
                    Err(_) => {
                        // poll(2) failing outright (ENOMEM and friends)
                        // has no recovery that preserves blocking
                        // semantics; degrade to the sweep tick for this
                        // park rather than spin.
                        let inbox = lock(&shared.inbox);
                        if !inbox.has_work() {
                            let _ = shared.wake.wait_timeout(inbox, IDLE_TICK);
                        }
                    }
                }
            }
            None => {
                let tick = if conns.is_empty() {
                    EMPTY_TICK
                } else {
                    IDLE_TICK
                };
                let inbox = lock(&shared.inbox);
                if !inbox.has_work() {
                    let _ = shared.wake.wait_timeout(inbox, tick);
                }
            }
        }
    }
}

/// Load-sheds one connection at admission: the `503` + `Retry-After` is
/// counted here, but *written* by an event loop (uncounted nonblocking
/// adoption), so a stalled or slow shed client can never serialize the
/// accept thread — admission keeps flowing while the 503 drains.
fn shed_connection(stream: TcpStream, state: &ServerState, started: Instant, target: &LoopShared) {
    state.metrics.record_shed(started.elapsed());
    let mut inbox = lock(&target.inbox);
    inbox.shed.push(stream);
    drop(inbox);
    target.notify();
}

/// The accept loop: admission control, accept-error backoff, and
/// round-robin handoff to the event loops.
fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    loops: &[Arc<LoopShared>],
    max_connections: usize,
    stop: &AtomicBool,
) {
    let mut next_loop = 0usize;
    let mut consecutive_errors: u32 = 0;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => {
                consecutive_errors = 0;
                stream
            }
            Err(_) => {
                // Persistent accept errors (fd exhaustion and friends)
                // must not busy-spin this thread at 100% CPU: count the
                // error and back off, doubling from 1 ms to ~128 ms.
                state.metrics.record_accept_error();
                let backoff = Duration::from_millis(1 << consecutive_errors.min(7));
                consecutive_errors = consecutive_errors.saturating_add(1);
                std::thread::sleep(backoff);
                continue;
            }
        };
        let started = Instant::now();
        let target = &loops[next_loop % loops.len()];
        next_loop = next_loop.wrapping_add(1);
        if state.live_connections.load(Ordering::SeqCst) >= max_connections {
            shed_connection(stream, state, started, target);
            continue;
        }
        state.live_connections.fetch_add(1, Ordering::SeqCst);
        let mut inbox = lock(&target.inbox);
        inbox.incoming.push(stream);
        drop(inbox);
        target.notify();
    }
}

/// A running server: accept thread + event loops + worker pool, shut
/// down via [`Server::shutdown`] (or drop).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    loop_handles: Vec<std::thread::JoinHandle<()>>,
    loops: Vec<Arc<LoopShared>>,
    /// Dropped last in shutdown so queued evaluations drain after the
    /// loops exit.
    pool: Option<Arc<WorkerPool>>,
    /// The write-ahead journal; taken at shutdown so the clean-shutdown
    /// path runs at most once.
    journal: Option<Arc<Journal>>,
    /// Whether shutdown compacts + marks the journal clean. Cleared by
    /// [`Server::abort`] to simulate a crash in-process.
    graceful: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread and event loops in the background.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (or a thread-spawn failure).
    pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let pool = Arc::new(match config.queue_capacity {
            Some(cap) => WorkerPool::with_queue_capacity(config.workers, cap),
            None => WorkerPool::new(config.workers),
        });
        let max_connections = config
            .max_connections
            .unwrap_or(config.workers + pool.queue_capacity());
        let loop_count = config.event_loops.max(1);
        // Resolve the readiness backend once, before anything spawns:
        // the backend must be uniform across loops, so a poller that
        // fails to build (non-unix, fd exhaustion) falls the whole
        // server back to sweep rather than mixing.
        let mut readiness = config.readiness;
        let mut backends: Vec<(Option<Poller>, Option<Waker>)> = Vec::with_capacity(loop_count);
        if readiness == ReadinessBackend::Poll {
            for _ in 0..loop_count {
                match Poller::new() {
                    Ok((poller, waker)) => backends.push((Some(poller), Some(waker))),
                    Err(_) => {
                        readiness = ReadinessBackend::Sweep;
                        break;
                    }
                }
            }
        }
        if readiness == ReadinessBackend::Sweep {
            backends.clear();
            backends.resize_with(loop_count, || (None, None));
        }
        // Open the journal (and replay any previous run's records)
        // before the session table exists: the eviction hook has to be
        // installed while the table is still exclusively owned, and a
        // journal that fails to open degrades to in-memory serving —
        // never a startup failure.
        let persist_stats = Arc::new(PersistStats::default());
        let mut recovery = None;
        let journal = match config.persist.clone() {
            Some(persist_config) => {
                match Journal::open(persist_config, Arc::clone(&persist_stats)) {
                    Ok((journal, recovered)) => {
                        recovery = Some(recovered);
                        Some(Arc::new(journal))
                    }
                    Err(e) => {
                        eprintln!(
                            "ttsv-serve: warning: persistence disabled: \
                             opening the journal failed: {e}"
                        );
                        persist_stats.add_write_error();
                        None
                    }
                }
            }
            None => None,
        };
        let mut sessions = ShardedLru::new(config.max_sessions, config.session_shards);
        if let Some(journal) = &journal {
            let hook = Arc::clone(journal);
            sessions.set_eviction_hook(Box::new(move |id| hook.record_evict(id)));
        }
        let state = Arc::new(ServerState {
            engine: ChipEngine::new()
                .with_workers(1)
                .with_scenario_cache_cap(config.scenario_cache_cap)
                .with_matrix_cache_cap(config.matrix_cache_cap),
            sessions,
            next_id: AtomicU64::new(recovery.as_ref().map_or(1, |r| r.next_id)),
            metrics: Metrics::new(),
            max_tiles: config.max_tiles,
            max_pending_updates: config.max_pending_updates,
            pool_monitor: pool.monitor(),
            faults: config.faults.clone(),
            live_connections: AtomicUsize::new(0),
            inline_busy: AtomicUsize::new(0),
            readiness,
            journal: journal.clone(),
            persist: persist_stats,
        });
        // Re-publish the recovered sessions before any thread can serve:
        // each one is evaluated eagerly so its `last_report` baseline —
        // and therefore its next delta response — is bitwise what the
        // never-crashed server would have answered. Insertion order is
        // the journal's touch order, so LRU recency survives too (and an
        // over-quota recovery evicts the *stalest* sessions, journaling
        // their tombstones through the hook like any other eviction).
        if let Some(recovered) = recovery {
            for session in recovered.sessions {
                match state
                    .engine
                    .evaluate_factored(&session.spec.plan, &session.spec.model)
                {
                    Ok(report) => {
                        state.sessions.insert(
                            session.id,
                            Arc::new(Session {
                                state: Mutex::new(SessionState {
                                    spec: session.spec,
                                    last_report: Some(report),
                                }),
                                pending: AtomicUsize::new(0),
                            }),
                        );
                    }
                    Err(e) => eprintln!(
                        "ttsv-serve: warning: dropping recovered session {}: \
                         evaluation failed: {e}",
                        session.id
                    ),
                }
            }
        }
        let deadlines = ConnDeadlines {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            request_deadline: config.request_deadline,
        };
        let mut loops = Vec::with_capacity(loop_count);
        let mut loop_handles = Vec::with_capacity(loop_count);
        for (i, (poller, waker)) in backends.into_iter().enumerate() {
            let shared = Arc::new(LoopShared::new(waker));
            let loop_state = Arc::clone(&state);
            let loop_shared = Arc::clone(&shared);
            let loop_pool = Arc::clone(&pool);
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("ttsv-serve-loop-{i}"))
                    .spawn(move || {
                        run_event_loop(&loop_state, &loop_shared, &loop_pool, deadlines, poller);
                    })?,
            );
            loops.push(shared);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_state = Arc::clone(&state);
        let accept_loops = loops.clone();
        let accept_handle = std::thread::Builder::new()
            .name("ttsv-serve-accept".into())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &accept_state,
                    &accept_loops,
                    max_connections,
                    &accept_stop,
                );
            })?;
        Ok(Self {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
            loop_handles,
            loops,
            pool: Some(pool),
            journal,
            graceful: true,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes the event loops, drains in-flight
    /// evaluations, and joins every background thread. With persistence
    /// on, the journal is compacted, synced, and stamped with the
    /// clean-shutdown marker — the next start replays it without the
    /// "recovering from crash" path.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Shuts down *without* the clean-shutdown path: threads are joined
    /// (so the process stays reusable) but the journal gets no final
    /// compaction, fsync, or marker — exactly the on-disk state a
    /// `SIGKILL` after the last completed append would leave. The
    /// crash-recovery suite restarts from the same state dir and pins
    /// recovered responses bitwise.
    pub fn abort(mut self) {
        self.graceful = false;
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
        for shared in &self.loops {
            lock(&shared.inbox).stop = true;
            shared.notify();
        }
        for handle in self.loop_handles.drain(..) {
            let _ = handle.join();
        }
        // Last out: dropping the pool joins the workers, so in-flight
        // evaluations finish (their completions land in dead inboxes)
        // before shutdown returns.
        self.pool = None;
        // Only after every thread that could append has exited: compact
        // and stamp the journal clean (skipped by `abort`, and skipped
        // automatically once a write error degraded the journal).
        if let Some(journal) = self.journal.take() {
            if self.graceful {
                journal.clean_shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}
