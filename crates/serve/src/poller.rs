//! Real `poll(2)` readiness for the event loops — std-only, no libc.
//!
//! The event loops in [`crate::server`] multiplex nonblocking sockets.
//! Until PR 9 they discovered readiness by *sweeping*: try every socket,
//! collect `WouldBlock`, park on a condvar with a 1 ms tick. That costs
//! a full tick of added latency for a request landing on a parked
//! connection and wakes an idle server 1000×/s to do nothing. This
//! module gives the loops genuine blocking readiness instead:
//!
//! * a hand-rolled `extern "C"` binding to POSIX `poll(2)` over the raw
//!   fds `std::os::fd` exposes (`#[cfg(unix)]`, no new dependencies —
//!   the single `unsafe` block in the workspace lives here and is
//!   scoped to that one call), and
//! * a **self-pipe** (`std::os::unix::net::UnixStream::pair`) whose
//!   read end sits in every
//!   poll set: the accept thread and worker completions write one byte
//!   to the [`Waker`] after pushing into a loop's inbox, so inbox
//!   activity interrupts a blocked `poll` immediately. The byte stays
//!   queued until the loop drains it, which closes the classic
//!   check-then-sleep race — a wake issued between the loop's last
//!   inbox check and its `poll` call leaves the pipe readable, so the
//!   `poll` returns at once instead of sleeping on a stale emptiness.
//!
//! On non-unix targets [`Poller::new`] reports `Unsupported` and the
//! server falls back to the sweep backend (`--readiness sweep`), which
//! remains fully supported everywhere — every serve suite runs against
//! both backends.

#![allow(clippy::doc_markdown)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
pub use imp::{Poller, Waker};
#[cfg(not(unix))]
pub use stub::{Poller, Waker};

/// The raw fd of a TCP stream, for interest submission. On non-unix
/// targets — where the poll backend can never be active, so no interest
/// is ever submitted — this returns a `-1` sentinel.
#[must_use]
pub fn stream_fd(stream: &std::net::TcpStream) -> i32 {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

/// One fd the caller wants readiness for, plus the directions of
/// interest. Interest mirrors the connection state machine: read
/// interest while a request may be parsed, write interest while the
/// connection's write buffer is non-empty. An entry with neither
/// interest should simply not be submitted.
#[derive(Debug, Clone, Copy)]
pub struct PollInterest {
    /// The raw fd (`std::os::fd::AsRawFd` on the socket).
    pub fd: i32,
    /// Wake when the fd becomes readable (or hung up / errored).
    pub read: bool,
    /// Wake when the fd becomes writable.
    pub write: bool,
}

/// What a [`Poller::wait`] call observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaitOutcome {
    /// Submitted fds that reported any event (readable, writable,
    /// hang-up, error). Zero with `woken == false` means the timeout
    /// elapsed.
    pub ready: usize,
    /// The self-pipe fired: at least one [`Waker::wake`] happened since
    /// the last drain. The pipe has been drained before returning.
    pub woken: bool,
}

#[cfg(unix)]
mod imp {
    use super::{io, Duration, PollInterest, WaitOutcome};
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    /// `struct pollfd` from `<poll.h>`, laid out per POSIX: the fd, the
    /// requested events, and the kernel-filled returned events.
    #[repr(C)]
    #[derive(Debug)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    /// Event bits shared by every unix we target (Linux and the BSDs
    /// agree on these low bits; they are POSIX-mandated names).
    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    // The one foreign binding: POSIX poll(2). `nfds_t` is `c_ulong` on
    // Linux and `c_uint` on the BSDs; both are register-passed, so the
    // wider type is ABI-compatible for the value ranges we use (a few
    // thousand fds at most).
    #[allow(unsafe_code)]
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    /// The write side of a loop's self-pipe. Cloneable and cheap: the
    /// accept thread and every worker completion hold one and call
    /// [`Waker::wake`] after pushing into the loop's inbox.
    #[derive(Debug, Clone)]
    pub struct Waker {
        tx: Arc<UnixStream>,
    }

    impl Waker {
        /// Makes a blocked [`Poller::wait`] return now (and the next
        /// `wait` return immediately if none is blocked). Never blocks:
        /// the pipe is nonblocking, and a full pipe already guarantees a
        /// pending wake, so `WouldBlock` is success.
        pub fn wake(&self) {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    /// A readiness selector for one event loop: the poll set scratch
    /// buffer plus the read side of the loop's self-pipe.
    #[derive(Debug)]
    pub struct Poller {
        rx: UnixStream,
        fds: Vec<PollFd>,
    }

    impl Poller {
        /// Builds a poller and its paired [`Waker`].
        ///
        /// # Errors
        ///
        /// Propagates socketpair/fcntl failures (fd exhaustion).
        pub fn new() -> io::Result<(Self, Waker)> {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            Ok((
                Self {
                    rx,
                    fds: Vec::new(),
                },
                Waker { tx: Arc::new(tx) },
            ))
        }

        /// Blocks until a submitted fd is ready, the waker fires, or
        /// `timeout` elapses (`None` blocks indefinitely — the waker is
        /// always armed, so "indefinitely" means "until someone has work
        /// for this loop"). Drains the self-pipe before returning, so
        /// each wake is observed exactly once.
        ///
        /// # Errors
        ///
        /// Propagates `poll(2)` failures other than `EINTR` (which
        /// retries with the same timeout) and `EAGAIN`.
        pub fn wait(
            &mut self,
            interests: &[PollInterest],
            timeout: Option<Duration>,
        ) -> io::Result<WaitOutcome> {
            self.fds.clear();
            self.fds.push(PollFd {
                fd: self.rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            for interest in interests {
                let mut events = 0i16;
                if interest.read {
                    events |= POLLIN;
                }
                if interest.write {
                    events |= POLLOUT;
                }
                if events != 0 {
                    self.fds.push(PollFd {
                        fd: interest.fd,
                        events,
                        revents: 0,
                    });
                }
            }
            // poll(2) takes milliseconds; round *up* so a deadline-derived
            // timeout never wakes early (which would spin: wake, find the
            // deadline not yet due, sleep the sub-millisecond remainder,
            // repeat).
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(t) => {
                    let whole = t.as_millis();
                    let carry = u128::from(t.subsec_nanos() % 1_000_000 != 0);
                    i32::try_from(whole + carry).unwrap_or(i32::MAX)
                }
            };
            let n = loop {
                // SAFETY: `fds` is a live, exclusively borrowed Vec of
                // `#[repr(C)]` pollfd-layout structs; the pointer and
                // length describe exactly that allocation, and poll(2)
                // only writes within it (the `revents` fields).
                #[allow(unsafe_code)]
                let rc = unsafe {
                    poll(
                        self.fds.as_mut_ptr(),
                        self.fds.len() as std::os::raw::c_ulong,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                match err.kind() {
                    io::ErrorKind::Interrupted => {}
                    io::ErrorKind::WouldBlock => break 0,
                    _ => return Err(err),
                }
            };
            let mut outcome = WaitOutcome::default();
            if n == 0 {
                return Ok(outcome);
            }
            const ANY: i16 = POLLIN | POLLOUT | POLLERR | POLLHUP | POLLNVAL;
            if self.fds[0].revents & ANY != 0 {
                outcome.woken = true;
                // Drain every queued wake byte; WouldBlock ends the drain.
                let mut sink = [0u8; 64];
                while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            outcome.ready = self.fds[1..]
                .iter()
                .filter(|fd| fd.revents & ANY != 0)
                .count();
            Ok(outcome)
        }
    }
}

#[cfg(not(unix))]
mod stub {
    use super::{io, Duration, PollInterest, WaitOutcome};

    /// No-op waker for targets without `poll(2)`; the sweep backend's
    /// condvar does the waking there.
    #[derive(Debug, Clone)]
    pub struct Waker;

    impl Waker {
        /// Nothing to wake: the sweep backend never blocks in `poll`.
        pub fn wake(&self) {}
    }

    /// Placeholder so non-unix builds type-check; construction always
    /// fails and the server falls back to the sweep backend.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        /// Always `Unsupported` off unix.
        ///
        /// # Errors
        ///
        /// Always.
        pub fn new() -> io::Result<(Self, Waker)> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "poll(2) readiness needs a unix target; use the sweep backend",
            ))
        }

        /// Unreachable (construction fails), present for type parity.
        ///
        /// # Errors
        ///
        /// Always.
        pub fn wait(
            &mut self,
            _interests: &[PollInterest],
            _timeout: Option<Duration>,
        ) -> io::Result<WaitOutcome> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "poll(2) readiness needs a unix target",
            ))
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_with_nothing_ready() {
        let (mut poller, _waker) = Poller::new().expect("poller");
        let started = Instant::now();
        let outcome = poller
            .wait(&[], Some(Duration::from_millis(30)))
            .expect("wait");
        assert!(!outcome.woken);
        assert_eq!(outcome.ready, 0);
        assert!(
            started.elapsed() >= Duration::from_millis(25),
            "must actually block, returned after {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (mut poller, waker) = Poller::new().expect("poller");
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let started = Instant::now();
        let outcome = poller
            .wait(&[], Some(Duration::from_secs(10)))
            .expect("wait");
        handle.join().expect("waker thread");
        assert!(outcome.woken, "the waker must end the wait");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "woke after {:?}, not at the timeout",
            started.elapsed()
        );
    }

    #[test]
    fn wake_before_wait_is_not_lost() {
        // The check-then-sleep race: a wake issued while the loop is
        // *not* blocked must make the next wait return immediately.
        let (mut poller, waker) = Poller::new().expect("poller");
        waker.wake();
        waker.wake(); // coalesces, never blocks
        let started = Instant::now();
        let outcome = poller
            .wait(&[], Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(outcome.woken);
        assert!(started.elapsed() < Duration::from_secs(1));
        // Drained: with no new wake the next wait times out.
        let outcome = poller
            .wait(&[], Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(!outcome.woken, "wake bytes must drain with the wait");
    }

    #[test]
    fn readable_fd_reports_ready() {
        let (mut poller, _waker) = Poller::new().expect("poller");
        let (mut a, b) = UnixStream::pair().expect("socket pair");
        b.set_nonblocking(true).expect("nonblocking");
        let interest = [PollInterest {
            fd: b.as_raw_fd(),
            read: true,
            write: false,
        }];
        let outcome = poller
            .wait(&interest, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(outcome.ready, 0, "nothing written yet");
        a.write_all(b"x").expect("write");
        let outcome = poller
            .wait(&interest, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(outcome.ready, 1, "pending byte must report readable");
    }

    #[test]
    fn write_interest_fires_on_an_unfilled_socket() {
        let (mut poller, _waker) = Poller::new().expect("poller");
        let (_a, b) = UnixStream::pair().expect("socket pair");
        let outcome = poller
            .wait(
                &[PollInterest {
                    fd: b.as_raw_fd(),
                    read: false,
                    write: true,
                }],
                Some(Duration::from_secs(10)),
            )
            .expect("wait");
        assert_eq!(outcome.ready, 1, "an empty socket buffer is writable");
    }

    #[test]
    fn full_wake_pipe_never_blocks_the_waker() {
        let (mut poller, waker) = Poller::new().expect("poller");
        // Far more wakes than the pipe buffers; every call must return.
        for _ in 0..1_000_000 {
            waker.wake();
        }
        let outcome = poller
            .wait(&[], Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(outcome.woken);
    }
}
