//! Lock-free request metrics: counters by status class plus a
//! logarithmic latency histogram good enough for p50/p99.
//!
//! Latencies land in power-of-two nanosecond buckets (`⌊log₂ ns⌋`), so
//! recording is two relaxed atomic increments on the hot path and
//! quantiles are a 64-bucket walk at `GET /metrics` time. A quantile is
//! reported as its bucket's upper bound — at most 2× the true value,
//! which is plenty to watch the cold-session vs warm-delta separation
//! the bench gate pins (≥5×).
//!
//! **Accounting invariant** (pinned by a property test in
//! `tests/serve_chaos.rs`): every answered request increments `requests`,
//! exactly one of the three status-class counters, and exactly one
//! histogram bucket — so `requests == ok_2xx + client_4xx + server_5xx`
//! and `requests == Σ histogram` at every instant. The overload/failure
//! attributions (`shed`, `rate_limited`, `timeouts`, `panics`) cross-cut
//! those classes: a shed request is *also* a 5xx, a deadline expiry is
//! *also* a 4xx — they never double-count the totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const BUCKETS: usize = 64;

/// Shared request metrics; every method takes `&self`.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests: AtomicU64,
    ok_2xx: AtomicU64,
    client_4xx: AtomicU64,
    server_5xx: AtomicU64,
    /// 503s issued because the worker pool was saturated (load shed).
    shed: AtomicU64,
    /// 429s issued because one session's update queue flooded.
    rate_limited: AtomicU64,
    /// 408s issued because a request blew its deadline (slowloris,
    /// slow reader, stalled body).
    timeouts: AtomicU64,
    /// 500s issued because a handler panicked and was contained.
    panics: AtomicU64,
    /// `accept(2)` failures observed by the accept loop (fd exhaustion,
    /// aborted handshakes); each one also triggers a short backoff there.
    accept_errors: AtomicU64,
    /// Connections currently inside `handle_connection` (gauge).
    inflight: AtomicU64,
    /// Blocked-`poll(2)` returns across all event loops (poll backend
    /// only; the spin window and sweep backend never touch this). An
    /// idle server should hold this near zero — that is the whole point
    /// of the poll backend, and the CI idle smoke pins it.
    poll_wakeups: AtomicU64,
    /// Poll wakeups that reported socket readiness but whose service
    /// pass then made no progress with an empty inbox (readiness races,
    /// e.g. a peer reset between `poll` and `read`). Persistent growth
    /// here means interest tracking is wrong.
    poll_spurious: AtomicU64,
    /// Connections dropped at adoption because `set_nonblocking` /
    /// `set_nodelay` failed — a socket left blocking would wedge its
    /// whole event loop on the next read, so adoption failure is fatal
    /// to the connection and counted here.
    adopt_errors: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

/// A point-in-time view of the counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Requests answered (including error responses).
    pub requests: u64,
    /// 2xx responses.
    pub ok_2xx: u64,
    /// 4xx responses.
    pub client_4xx: u64,
    /// 5xx responses.
    pub server_5xx: u64,
    /// Requests per second of uptime.
    pub requests_per_sec: f64,
    /// Median request latency in nanoseconds (bucket upper bound).
    pub p50_latency_ns: u64,
    /// 99th-percentile request latency in nanoseconds (bucket upper bound).
    pub p99_latency_ns: u64,
    /// Total histogram samples (equals `requests` by the accounting
    /// invariant; exported so clients can verify reconciliation).
    pub latency_samples: u64,
    /// 503s shed at admission (subset of `server_5xx`).
    pub shed: u64,
    /// 429s from per-session update floods (subset of `client_4xx`).
    pub rate_limited: u64,
    /// 408s from blown request deadlines (subset of `client_4xx`).
    pub timeouts: u64,
    /// Contained handler panics answered as 500 (subset of `server_5xx`).
    pub panics: u64,
    /// Accept-loop errors (not requests: nothing was parsed or answered,
    /// so these stay outside the accounting invariant).
    pub accept_errors: u64,
    /// Connections currently being handled (gauge, not a total).
    pub inflight: u64,
    /// Blocked-`poll(2)` returns across all event loops (outside the
    /// accounting invariant: wakeups are not requests).
    pub poll_wakeups: u64,
    /// Poll wakeups whose readiness produced no progress (subset of
    /// `poll_wakeups`).
    pub poll_spurious: u64,
    /// Connections dropped because adoption (`set_nonblocking` /
    /// `set_nodelay`) failed — no request was parsed, so these stay
    /// outside the accounting invariant, like `accept_errors`.
    pub adopt_errors: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters; uptime starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            ok_2xx: AtomicU64::new(0),
            client_4xx: AtomicU64::new(0),
            server_5xx: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            poll_wakeups: AtomicU64::new(0),
            poll_spurious: AtomicU64::new(0),
            adopt_errors: AtomicU64::new(0),
            latency: [(); BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }

    /// Records one answered request.
    pub fn record(&self, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.ok_2xx,
            400..=499 => &self.client_4xx,
            _ => &self.server_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (63 - u64::leading_zeros(ns.max(1)) as usize).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed at admission (a 503 + `Retry-After`).
    pub fn record_shed(&self, elapsed: Duration) {
        self.record(503, elapsed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a per-session flood rejection (a 429 + `Retry-After`).
    pub fn record_rate_limited(&self, elapsed: Duration) {
        self.record(429, elapsed);
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a blown request deadline (a 408, connection closed).
    pub fn record_timeout(&self, elapsed: Duration) {
        self.record(408, elapsed);
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a contained handler panic (a 500; the request itself is
    /// recorded via [`Metrics::record`] like any other response).
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed `accept(2)` call. Accept errors are not
    /// requests — no response was produced — so this touches neither
    /// `requests` nor the histogram.
    pub fn record_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one blocked-`poll(2)` return on an event loop.
    pub fn record_poll_wakeup(&self) {
        self.poll_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a poll wakeup that reported readiness but yielded no
    /// progress on the following service pass.
    pub fn record_poll_spurious(&self) {
        self.poll_spurious.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection dropped because adoption failed. Like
    /// accept errors, adoption failures are not requests — nothing was
    /// parsed or answered — so this touches neither `requests` nor the
    /// histogram.
    pub fn record_adopt_error(&self) {
        self.adopt_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one connection entering service; the returned guard
    /// decrements the gauge on drop (panic-safe: the worker's
    /// `catch_unwind` runs destructors).
    #[must_use]
    pub fn inflight_guard(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { metrics: self }
    }

    /// The latency at quantile `q` (nearest-rank over the histogram,
    /// reported as the matched bucket's upper bound), or 0 before any
    /// request.
    #[must_use]
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_bound_ns(i);
            }
        }
        upper_bound_ns(BUCKETS - 1)
    }

    /// Snapshots every counter at once.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let uptime_s = self.started.elapsed().as_secs_f64().max(1e-9);
        let requests = self.requests.load(Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        let requests_per_sec = requests as f64 / uptime_s;
        MetricsSnapshot {
            uptime_s,
            requests,
            ok_2xx: self.ok_2xx.load(Ordering::Relaxed),
            client_4xx: self.client_4xx.load(Ordering::Relaxed),
            server_5xx: self.server_5xx.load(Ordering::Relaxed),
            requests_per_sec,
            p50_latency_ns: self.latency_quantile_ns(0.50),
            p99_latency_ns: self.latency_quantile_ns(0.99),
            latency_samples: self.latency.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            shed: self.shed.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            poll_wakeups: self.poll_wakeups.load(Ordering::Relaxed),
            poll_spurious: self.poll_spurious.load(Ordering::Relaxed),
            adopt_errors: self.adopt_errors.load(Ordering::Relaxed),
        }
    }
}

/// Counters for the write-ahead journal (`crate::persist`), shared
/// between the journal writer and the server's `/metrics` rendering.
///
/// Like `accept_errors` and the readiness counters, everything here
/// lives **outside** the request accounting invariant: journal records
/// are not requests, and a replayed record at boot answered nobody.
#[derive(Debug, Default)]
pub struct PersistStats {
    records_written: AtomicU64,
    bytes_written: AtomicU64,
    records_replayed: AtomicU64,
    recovered_sessions: AtomicU64,
    compactions: AtomicU64,
    write_errors: AtomicU64,
}

/// A point-in-time view of [`PersistStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistSnapshot {
    /// Records appended to the journal since startup.
    pub records_written: u64,
    /// Journal bytes appended since startup (frames, not payloads).
    pub bytes_written: u64,
    /// Records replayed from the journal at startup.
    pub records_replayed: u64,
    /// Sessions rebuilt from the journal at startup.
    pub recovered_sessions: u64,
    /// Snapshot+compaction passes completed.
    pub compactions: u64,
    /// Journal write/fsync failures. The first one disables persistence
    /// for the rest of the process (serving continues unjournaled).
    pub write_errors: u64,
}

impl PersistStats {
    /// Counts `n` records appended, totalling `bytes` on the wire.
    pub fn add_written(&self, n: u64, bytes: u64) {
        self.records_written.fetch_add(n, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts `n` records replayed at startup.
    pub fn add_replayed(&self, n: u64) {
        self.records_replayed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` sessions rebuilt at startup.
    pub fn add_recovered_sessions(&self, n: u64) {
        self.recovered_sessions.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one completed snapshot+compaction pass.
    pub fn add_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one journal write/fsync failure.
    pub fn add_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots every counter at once.
    #[must_use]
    pub fn snapshot(&self) -> PersistSnapshot {
        PersistSnapshot {
            records_written: self.records_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            records_replayed: self.records_replayed.load(Ordering::Relaxed),
            recovered_sessions: self.recovered_sessions.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// Decrements the in-flight gauge when the connection finishes (however
/// it finishes).
#[derive(Debug)]
pub struct InflightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Upper bound of latency bucket `i` in nanoseconds.
fn upper_bound_ns(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_split_by_status_class() {
        let m = Metrics::new();
        m.record(200, Duration::from_nanos(100));
        m.record(201, Duration::from_nanos(100));
        m.record(404, Duration::from_nanos(100));
        m.record(500, Duration::from_nanos(100));
        let snap = m.snapshot();
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.ok_2xx, 2);
        assert_eq!(snap.client_4xx, 1);
        assert_eq!(snap.server_5xx, 1);
        assert!(snap.requests_per_sec > 0.0);
    }

    #[test]
    fn quantiles_bracket_the_recorded_latencies() {
        let m = Metrics::new();
        // 99 fast requests (~1 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            m.record(200, Duration::from_nanos(1_000));
        }
        m.record(200, Duration::from_nanos(1_000_000));
        let p50 = m.latency_quantile_ns(0.50);
        let p99 = m.latency_quantile_ns(0.99);
        assert!((1_000..=2_048).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 1_000, "p99 = {p99}");
        // The worst case lands in the ~1 ms bucket.
        let p100 = m.latency_quantile_ns(1.0);
        assert!((1_000_000..=2_097_152).contains(&p100), "max = {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        assert_eq!(Metrics::new().latency_quantile_ns(0.99), 0);
    }

    #[test]
    fn overload_paths_attribute_without_double_counting() {
        let m = Metrics::new();
        let t = Duration::from_nanos(500);
        m.record(200, t);
        m.record_shed(t);
        m.record_rate_limited(t);
        m.record_timeout(t);
        m.record(500, t);
        m.note_panic();
        let snap = m.snapshot();
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.ok_2xx, 1);
        assert_eq!(snap.client_4xx, 2, "429 + 408");
        assert_eq!(snap.server_5xx, 2, "503 + 500");
        assert_eq!(
            snap.requests,
            snap.ok_2xx + snap.client_4xx + snap.server_5xx
        );
        assert_eq!(snap.latency_samples, snap.requests);
        assert_eq!(
            (snap.shed, snap.rate_limited, snap.timeouts, snap.panics),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn accept_errors_count_outside_the_request_invariant() {
        let m = Metrics::new();
        m.record_accept_error();
        m.record_accept_error();
        let snap = m.snapshot();
        assert_eq!(snap.accept_errors, 2);
        assert_eq!(snap.requests, 0, "accept errors are not requests");
        assert_eq!(snap.latency_samples, 0);
    }

    #[test]
    fn readiness_counters_stay_outside_the_request_invariant() {
        let m = Metrics::new();
        m.record_poll_wakeup();
        m.record_poll_wakeup();
        m.record_poll_spurious();
        m.record_adopt_error();
        let snap = m.snapshot();
        assert_eq!(snap.poll_wakeups, 2);
        assert_eq!(snap.poll_spurious, 1);
        assert_eq!(snap.adopt_errors, 1);
        assert_eq!(
            snap.requests, 0,
            "wakeups and adopt errors are not requests"
        );
        assert_eq!(snap.latency_samples, 0);
    }

    #[test]
    fn top_bucket_upper_bound_saturates() {
        let m = Metrics::new();
        m.record(200, Duration::from_nanos(u64::MAX));
        assert_eq!(m.latency_quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn inflight_gauge_tracks_guards_even_across_panics() {
        let m = Metrics::new();
        assert_eq!(m.snapshot().inflight, 0);
        {
            let _a = m.inflight_guard();
            let _b = m.inflight_guard();
            assert_eq!(m.snapshot().inflight, 2);
        }
        assert_eq!(m.snapshot().inflight, 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.inflight_guard();
            panic!("unwind through the guard");
        }));
        assert!(caught.is_err());
        assert_eq!(m.snapshot().inflight, 0, "guard drops during unwind");
    }
}
