//! An exact least-recently-used cache with hit/miss/eviction counters —
//! the session table's quota enforcement.
//!
//! The floorplan engine's own tiers are *generational* (cheap clear-all
//! on overflow, keyed on bit patterns); sessions are few, long-lived, and
//! expensive to rebuild, so the session table wants exact LRU instead:
//! registering past the capacity evicts precisely the session touched
//! longest ago. Recency order is a [`VecDeque`] of keys — `O(n)` on
//! touch, which is the right trade at session-table sizes (tens to
//! hundreds) and keeps the structure trivially auditable by the property
//! suite.

use std::collections::VecDeque;

/// An exact-LRU map bounded to `capacity` entries.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    /// Keys from least- to most-recently used; values ride along.
    entries: VecDeque<(K, V)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Clone, V> LruCache<K, V> {
    /// An empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an LRU cache needs positive capacity");
        Self {
            capacity,
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found their key.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by capacity pressure (explicit [`LruCache::remove`]
    /// calls are not evictions).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks `key` up, counting a hit or miss and promoting a hit to
    /// most-recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i).expect("position came from iter");
                self.entries.push_back(entry);
                self.entries.back().map(|(_, v)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks `key` up without touching recency or the counters.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key` as most-recently used, returning the
    /// entry evicted to stay within capacity, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push_back((key, value));
        if self.entries.len() > self.capacity {
            self.evictions += 1;
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Removes `key`, returning its value (not counted as an eviction).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        self.entries.remove(i).map(|(_, v)| v)
    }

    /// Keys from least- to most-recently used (the eviction order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_follows_recency_order() {
        let mut lru = LruCache::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        // Touch "a": now "b" is the LRU entry.
        assert_eq!(lru.get(&"a"), Some(&1));
        let evicted = lru.insert("c", 3).unwrap();
        assert_eq!(evicted, ("b", 2));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.keys().collect::<Vec<_>>(), [&"a", &"c"]);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut lru = LruCache::new(2);
        lru.insert(1, "x");
        assert!(lru.get(&1).is_some());
        assert!(lru.get(&2).is_none());
        assert_eq!((lru.hits(), lru.misses()), (1, 1));
        // peek touches neither counters nor recency.
        assert!(lru.peek(&1).is_some());
        assert_eq!((lru.hits(), lru.misses()), (1, 1));
    }

    #[test]
    fn reinsert_replaces_without_growing() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none(), "replacement, not eviction");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.peek(&"a"), Some(&10));
        // "a" was promoted by the reinsert, so "b" evicts next.
        assert_eq!(lru.insert("c", 3).unwrap().0, "b");
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut lru = LruCache::new(1);
        lru.insert(7, "x");
        assert_eq!(lru.remove(&7), Some("x"));
        assert_eq!(lru.remove(&7), None);
        assert_eq!(lru.evictions(), 0);
        assert!(lru.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u64, ()>::new(0);
    }
}
