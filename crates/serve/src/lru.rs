//! An exact least-recently-used cache with hit/miss/eviction counters —
//! the session table's quota enforcement — plus a sharded wrapper that
//! splits one logical LRU across N independently locked shards.
//!
//! The floorplan engine's own tiers are *generational* (cheap clear-all
//! on overflow, keyed on bit patterns); sessions are few, long-lived, and
//! expensive to rebuild, so the session table wants exact LRU instead:
//! registering past the capacity evicts precisely the session touched
//! longest ago. Recency order is a [`VecDeque`] of keys — `O(n)` on
//! touch, which is the right trade at session-table sizes (tens to
//! hundreds) and keeps the structure trivially auditable by the property
//! suite.
//!
//! [`ShardedLru`] exists for the multiplexed server: with one global
//! `Mutex<LruCache>` every session lookup from every event loop and
//! worker serializes on a single lock. Sharding by `key % shards` keeps
//! each shard an *exact* LRU over the sessions it owns (quota split
//! across shards, remainder to the low shards) while lookups for
//! different sessions proceed in parallel. Recency — and therefore
//! eviction order — is per-shard, which is the standard trade sharded
//! caches make.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// An exact-LRU map bounded to `capacity` entries.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    /// Keys from least- to most-recently used; values ride along.
    entries: VecDeque<(K, V)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Clone, V> LruCache<K, V> {
    /// An empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an LRU cache needs positive capacity");
        Self {
            capacity,
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found their key.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by capacity pressure (explicit [`LruCache::remove`]
    /// calls are not evictions).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks `key` up, counting a hit or miss and promoting a hit to
    /// most-recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i).expect("position came from iter");
                self.entries.push_back(entry);
                self.entries.back().map(|(_, v)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks `key` up without touching recency or the counters.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key` as most-recently used, returning the
    /// entry evicted to stay within capacity, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push_back((key, value));
        if self.entries.len() > self.capacity {
            self.evictions += 1;
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Removes `key`, returning its value (not counted as an eviction).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        self.entries.remove(i).map(|(_, v)| v)
    }

    /// Keys from least- to most-recently used (the eviction order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A point-in-time view of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Live entries in the shard.
    pub live: usize,
    /// The shard's slice of the total capacity.
    pub capacity: usize,
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// Called with the key of every entry a [`ShardedLru`] evicts under
/// capacity pressure — the journal's hook for eviction tombstones.
pub type EvictionHook = Box<dyn Fn(u64) + Send + Sync>;

/// `u64`-keyed exact-LRU cache split across independently locked shards.
///
/// The shard for a key is `key % shards`; the total `capacity` is divided
/// evenly across shards with the remainder going to the lowest-numbered
/// ones, so shard capacities always sum to exactly `capacity`.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<LruCache<u64, V>>>,
    eviction_hook: Option<EvictionHook>,
}

impl<V> std::fmt::Debug for ShardedLru<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("eviction_hook", &self.eviction_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl<V: Clone> ShardedLru<V> {
    /// A sharded cache bounded to `capacity` total entries. `shards` is
    /// clamped to `capacity` so every shard holds at least one entry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "a sharded LRU needs positive capacity");
        assert!(shards > 0, "a sharded LRU needs at least one shard");
        let shards = shards.min(capacity);
        let base = capacity / shards;
        let remainder = capacity % shards;
        let shards = (0..shards)
            .map(|i| {
                let cap = base + usize::from(i < remainder);
                Mutex::new(LruCache::new(cap))
            })
            .collect();
        Self {
            shards,
            eviction_hook: None,
        }
    }

    /// Installs a callback invoked (outside any shard lock) with the key
    /// of every entry evicted by capacity pressure. Explicit
    /// [`ShardedLru::remove`] calls do not fire it. Install before the
    /// cache is shared: the hook is part of construction, not runtime
    /// reconfiguration.
    pub fn set_eviction_hook(&mut self, hook: EvictionHook) {
        self.eviction_hook = Some(hook);
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, LruCache<u64, V>> {
        #[allow(clippy::cast_possible_truncation)]
        let i = (key % self.shards.len() as u64) as usize;
        self.shards[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks `key` up in its shard, cloning the value out so the shard
    /// lock is released before the caller does real work.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<V> {
        self.shard(key).get(&key).cloned()
    }

    /// Inserts `key` as most-recently used in its shard, returning the
    /// entry that shard evicted to stay within its slice of the quota.
    /// A capacity eviction fires the eviction hook (after the shard
    /// lock is released, so the hook may take unrelated locks freely).
    pub fn insert(&self, key: u64, value: V) -> Option<(u64, V)> {
        let evicted = self.shard(key).insert(key, value);
        if let (Some((victim, _)), Some(hook)) = (&evicted, &self.eviction_hook) {
            hook(*victim);
        }
        evicted
    }

    /// Removes `key` from its shard (not counted as an eviction).
    pub fn remove(&self, key: u64) -> Option<V> {
        self.shard(key).remove(&key)
    }

    /// Per-shard counters, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(PoisonError::into_inner);
                ShardStats {
                    live: s.len(),
                    capacity: s.capacity(),
                    hits: s.hits(),
                    misses: s.misses(),
                    evictions: s.evictions(),
                }
            })
            .collect()
    }

    /// Counters summed across shards: `(live, capacity, hits, misses,
    /// evictions)`.
    #[must_use]
    pub fn aggregate_stats(&self) -> ShardStats {
        let mut total = ShardStats {
            live: 0,
            capacity: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        for s in self.shard_stats() {
            total.live += s.live;
            total.capacity += s.capacity;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_follows_recency_order() {
        let mut lru = LruCache::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        // Touch "a": now "b" is the LRU entry.
        assert_eq!(lru.get(&"a"), Some(&1));
        let evicted = lru.insert("c", 3).unwrap();
        assert_eq!(evicted, ("b", 2));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.keys().collect::<Vec<_>>(), [&"a", &"c"]);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut lru = LruCache::new(2);
        lru.insert(1, "x");
        assert!(lru.get(&1).is_some());
        assert!(lru.get(&2).is_none());
        assert_eq!((lru.hits(), lru.misses()), (1, 1));
        // peek touches neither counters nor recency.
        assert!(lru.peek(&1).is_some());
        assert_eq!((lru.hits(), lru.misses()), (1, 1));
    }

    #[test]
    fn reinsert_replaces_without_growing() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none(), "replacement, not eviction");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.peek(&"a"), Some(&10));
        // "a" was promoted by the reinsert, so "b" evicts next.
        assert_eq!(lru.insert("c", 3).unwrap().0, "b");
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut lru = LruCache::new(1);
        lru.insert(7, "x");
        assert_eq!(lru.remove(&7), Some("x"));
        assert_eq!(lru.remove(&7), None);
        assert_eq!(lru.evictions(), 0);
        assert!(lru.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u64, ()>::new(0);
    }

    #[test]
    fn shard_capacities_sum_to_the_quota() {
        for (capacity, shards) in [(2, 8), (7, 3), (64, 8), (1, 1), (5, 5)] {
            let lru = ShardedLru::<u64>::new(capacity, shards);
            assert_eq!(lru.shard_count(), shards.min(capacity));
            let stats = lru.shard_stats();
            assert_eq!(stats.iter().map(|s| s.capacity).sum::<usize>(), capacity);
            assert!(stats.iter().all(|s| s.capacity >= 1));
            // Low shards absorb the remainder, never differing by > 1.
            let caps: Vec<usize> = stats.iter().map(|s| s.capacity).collect();
            assert!(caps.windows(2).all(|w| w[0] >= w[1] && w[0] - w[1] <= 1));
        }
    }

    #[test]
    fn sharded_eviction_is_exact_within_each_shard() {
        // Quota 2 over 2 shards: keys 1 and 3 share shard 1; inserting 3
        // evicts 1 while shard 0's key 2 is untouched.
        let lru = ShardedLru::new(2, 8);
        assert_eq!(lru.shard_count(), 2);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        assert_eq!(lru.insert(3, "c"), Some((1, "a")));
        assert_eq!(lru.get(1), None);
        assert_eq!(lru.get(2), Some("b"));
        assert_eq!(lru.get(3), Some("c"));
        let total = lru.aggregate_stats();
        assert_eq!(total.live, 2);
        assert_eq!(total.capacity, 2);
        assert_eq!(total.evictions, 1);
        assert_eq!((total.hits, total.misses), (2, 1));
    }

    #[test]
    fn eviction_hook_sees_capacity_evictions_only() {
        use std::sync::Arc;

        let evicted = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&evicted);
        let mut lru = ShardedLru::new(1, 1);
        lru.set_eviction_hook(Box::new(move |key| {
            log.lock().unwrap().push(key);
        }));
        lru.insert(1, "a");
        lru.insert(2, "b"); // evicts 1
        assert_eq!(lru.remove(2), Some("b")); // explicit: no hook
        lru.insert(3, "c"); // fits: no hook
        lru.insert(4, "d"); // evicts 3
        assert_eq!(*evicted.lock().unwrap(), vec![1, 3]);
    }

    #[test]
    fn sharded_remove_frees_the_slot_without_an_eviction() {
        let lru = ShardedLru::new(4, 2);
        lru.insert(10, 1);
        assert_eq!(lru.remove(10), Some(1));
        assert_eq!(lru.remove(10), None);
        let total = lru.aggregate_stats();
        assert_eq!(total.live, 0);
        assert_eq!(total.evictions, 0);
    }
}
