//! Thermal-as-a-service: a std-only HTTP/1.1 session server over the
//! full-chip floorplan engine.
//!
//! The DATE 2011 models were built to answer *streams* of queries —
//! PAPERS.md's multiscale 3-D-integration workflows assume a chip-thermal
//! engine that prices repeated, slightly-perturbed floorplans cheaply.
//! This crate serves exactly that workload over plain `std::net`
//! sockets, in the spirit of the repo's vendored stand-ins (no external
//! dependencies anywhere):
//!
//! * [`http`] — incremental HTTP/1.1 request parser (partial reads,
//!   `Content-Length` bodies, keep-alive, pipelining, typed 4xx/5xx on
//!   malformed input) + response writer,
//! * [`protocol`] — JSON bodies → validated [`Floorplan`](ttsv_chip::Floorplan)
//!   registrations and power-delta moves, plus the delta-response
//!   renderer and its client-side `apply_delta` inverse
//!   (`docs/PROTOCOL.md` is the wire reference),
//! * [`server`] — the session server: nonblocking connections
//!   multiplexed across a few event-loop threads that hand evaluations
//!   to a bounded long-lived
//!   [`WorkerPool`](ttsv_validate::pool::WorkerPool), shared capped
//!   [`ChipEngine`](ttsv_chip::ChipEngine), sharded exact-LRU session
//!   table with quotas, transactional power updates (staged, rolled
//!   back on failure), `GET /metrics`,
//! * [`poller`] — real `poll(2)` readiness for the event loops (a
//!   hand-rolled std-only binding plus a self-pipe waker; unix-gated,
//!   with the portable sweep loop as fallback),
//! * [`persist`] — the per-server write-ahead journal (`--state-dir`):
//!   CRC32-framed records for registrations, power updates, deletions,
//!   and eviction tombstones; torn-tail-tolerant crash recovery that
//!   answers bitwise-identical reports after a restart; snapshot
//!   compaction; configurable fsync policy; graceful degradation on
//!   journal I/O errors,
//! * [`lru`] / [`metrics`] — the sharded session cache and the request
//!   counters/latency histogram behind it,
//! * [`client`] — a blocking keep-alive client plus the deterministic
//!   power-trace replay `bench-client` and CI share.
//!
//! Binaries: `serve` (run the server) and `bench-client` (replay a trace
//! against one, reporting cold-session vs warm-delta latency).
//!
//! # Quick start
//!
//! This snippet is kept byte-identical to the README's
//! "Thermal-as-a-service" section, so that section is verified by
//! `cargo test --doc`:
//!
//! ```
//! use ttsv_serve::client::Client;
//! use ttsv_serve::server::{Server, ServerConfig};
//!
//! fn main() -> std::io::Result<()> {
//!     // Ephemeral port, 2 connection workers, bounded caches.
//!     let server = Server::start("127.0.0.1:0", ServerConfig::default().with_workers(2))?;
//!     let mut client = Client::connect(&server.addr().to_string())?;
//!
//!     // Register a 2×2 floorplan (3 planes, paper §IV-E geometry).
//!     let (status, body) = client.request(
//!         "POST",
//!         "/sessions",
//!         r#"{"nx":2,"ny":2,"planes":[[20,15,20,15],[2,2,2,2],[2,2,2,2]],"via_density":0.005}"#,
//!     )?;
//!     assert_eq!(status, 201);
//!     assert!(body.starts_with("{\"session\":"));
//!
//!     // Stream a power delta: only the touched tile re-solves.
//!     let (status, report) = client.request(
//!         "POST",
//!         "/sessions/1/power",
//!         r#"{"plane":0,"updates":[[0,0,25.0]]}"#,
//!     )?;
//!     assert_eq!(status, 200);
//!     assert!(report.contains("\"max_delta_t\""));
//!
//!     // Observability: request counters, latency, cache hit rates.
//!     let (status, metrics) = client.request("GET", "/metrics", "")?;
//!     assert_eq!(status, 200);
//!     assert!(metrics.contains("\"sessions\":{\"live\":1"));
//!
//!     server.shutdown();
//!     Ok(())
//! }
//! ```

// `deny`, not `forbid`: the poll(2) binding in `poller` carries the
// crate's one reviewed `#[allow(unsafe_code)]`; everything else stays
// rejected.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod persist;
pub mod poller;
pub mod protocol;
pub mod server;

pub use client::{Client, RetryPolicy, TraceConfig, TraceOutcome};
pub use faults::{FaultConfig, FaultyStream, ServerFaults, SplitMix64};
pub use http::{HttpError, Request, RequestParser, Response};
pub use lru::LruCache;
pub use metrics::Metrics;
pub use persist::{FsyncPolicy, PersistConfig};
pub use server::{ReadinessBackend, Server, ServerConfig};
