//! The wire protocol: JSON request bodies → validated floorplan moves.
//!
//! `docs/PROTOCOL.md` is the authoritative description; in short:
//!
//! * **Register** (`POST /sessions`): `{"nx", "ny", "planes": [[W…]…],
//!   "via_density": d | [d…], "segments": [first, others]?}` — the stack
//!   geometry is the paper's §IV-E case study
//!   ([`CaseStudy::paper`](ttsv_core::full_chip::CaseStudy::paper)); the
//!   maps and the Model B segment counts come from the request.
//! * **Power delta** (`POST /sessions/{id}/power`): `{"plane": j,
//!   "tiles": [W…]}` replaces plane `j`'s whole map, or `{"plane": j,
//!   "updates": [[ix, iy, W]…]}` patches individual tiles — the cheap
//!   serving move: unchanged tiles stay cache-hot in the engine.
//!
//! Every validation failure is a [`ProtocolError`] (HTTP 400 with the
//! message in an `{"error": …}` body) — malformed JSON, wrong shapes,
//! non-finite numbers, out-of-range indices, and floorplan constraint
//! violations all land here; nothing panics on client input.

use serde::json::Value;
use ttsv_chip::{ChipReport, Floorplan, PowerMap, ViaDensityMap};
use ttsv_core::full_chip::CaseStudy;
use ttsv_core::model_b::ModelB;
use ttsv_units::Power;

/// A rejected request body: the message for the 400 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// A registered session's immutable model and mutable floorplan.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The floorplan power deltas will mutate.
    pub plan: Floorplan,
    /// The Model B configuration every evaluation uses.
    pub model: ModelB,
}

fn parse_body(body: &[u8]) -> Result<Value, ProtocolError> {
    let text = std::str::from_utf8(body).map_err(|_| err("request body is not valid UTF-8"))?;
    serde::json::from_str(text).map_err(|e| err(format!("malformed JSON body: {e}")))
}

fn field<'a>(obj: &'a Value, name: &str) -> Result<&'a Value, ProtocolError> {
    obj.get(name)
        .ok_or_else(|| err(format!("missing field {name:?}")))
}

fn usize_field(obj: &Value, name: &str) -> Result<usize, ProtocolError> {
    field(obj, name)?
        .as_usize()
        .ok_or_else(|| err(format!("field {name:?} must be a non-negative integer")))
}

fn watts_array(value: &Value, expected: usize, what: &str) -> Result<Vec<Power>, ProtocolError> {
    let entries = value
        .as_array()
        .ok_or_else(|| err(format!("{what} must be an array of watts")))?;
    if entries.len() != expected {
        return Err(err(format!(
            "{what} holds {} tiles but the grid needs {expected}",
            entries.len()
        )));
    }
    entries
        .iter()
        .map(|v| {
            v.as_f64()
                .map(Power::from_watts)
                .ok_or_else(|| err(format!("{what} entries must be numbers")))
        })
        .collect()
}

/// Parses a `POST /sessions` registration body.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on malformed JSON, missing/ill-typed
/// fields, or maps the floorplan constructors reject.
pub fn parse_register(body: &[u8]) -> Result<SessionSpec, ProtocolError> {
    let doc = parse_body(body)?;
    let nx = usize_field(&doc, "nx")?;
    let ny = usize_field(&doc, "ny")?;
    let tiles = nx
        .checked_mul(ny)
        .ok_or_else(|| err("grid size overflows"))?;

    let planes = field(&doc, "planes")?
        .as_array()
        .ok_or_else(|| err("field \"planes\" must be an array of per-plane tile arrays"))?;
    let plane_maps = planes
        .iter()
        .enumerate()
        .map(|(j, p)| {
            let watts = watts_array(p, tiles, &format!("plane {j}"))?;
            PowerMap::new(nx, ny, watts).map_err(|e| err(e.to_string()))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let via_map = match field(&doc, "via_density")? {
        Value::Array(entries) => {
            if entries.len() != tiles {
                return Err(err(format!(
                    "via_density holds {} tiles but the grid needs {tiles}",
                    entries.len()
                )));
            }
            let densities = entries
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| err("via_density entries must be numbers"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            ViaDensityMap::new(nx, ny, densities)
        }
        scalar => {
            let d = scalar
                .as_f64()
                .ok_or_else(|| err("field \"via_density\" must be a number or array"))?;
            ViaDensityMap::uniform(nx, ny, d)
        }
    }
    .map_err(|e| err(e.to_string()))?;

    let model = match doc.get("segments") {
        None => ModelB::paper_b20(),
        Some(v) => {
            let pair = v
                .as_array()
                .ok_or_else(|| err("field \"segments\" must be [first, others]"))?;
            let (first, others) = match (pair.first(), pair.get(1)) {
                (Some(f), Some(o)) if pair.len() == 2 => (
                    f.as_usize()
                        .ok_or_else(|| err("segment counts must be integers"))?,
                    o.as_usize()
                        .ok_or_else(|| err("segment counts must be integers"))?,
                ),
                _ => return Err(err("field \"segments\" must be [first, others]")),
            };
            if first == 0 || others == 0 || first > 1_000 || others > 10_000 {
                return Err(err("segment counts must be in 1..=1000 / 1..=10000"));
            }
            ModelB::with_segments(first, others)
        }
    };

    let plan =
        Floorplan::new(&CaseStudy::paper(), plane_maps, via_map).map_err(|e| err(e.to_string()))?;
    Ok(SessionSpec { plan, model })
}

/// Parses a `POST /sessions/{id}/power` delta body against the session's
/// current floorplan, returning the plane index and its replacement map.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on malformed JSON, a plane or tile index
/// outside the grid, or power values the map constructor rejects.
pub fn parse_power_update(
    body: &[u8],
    plan: &Floorplan,
) -> Result<(usize, PowerMap), ProtocolError> {
    let doc = parse_body(body)?;
    let plane = usize_field(&doc, "plane")?;
    if plane >= plan.plane_count() {
        return Err(err(format!(
            "plane {plane} out of range for a {}-plane session",
            plan.plane_count()
        )));
    }
    let (nx, ny) = (plan.nx(), plan.ny());

    if let Some(tiles) = doc.get("tiles") {
        let watts = watts_array(tiles, nx * ny, "tiles")?;
        let map = PowerMap::new(nx, ny, watts).map_err(|e| err(e.to_string()))?;
        return Ok((plane, map));
    }

    let updates = field(&doc, "updates")?
        .as_array()
        .ok_or_else(|| err("field \"updates\" must be an array of [ix, iy, watts]"))?;
    let mut tiles: Vec<Power> = plan.plane_maps()[plane].tiles().to_vec();
    for u in updates {
        let triple = u
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| err("each update must be [ix, iy, watts]"))?;
        let ix = triple[0]
            .as_usize()
            .ok_or_else(|| err("update indices must be integers"))?;
        let iy = triple[1]
            .as_usize()
            .ok_or_else(|| err("update indices must be integers"))?;
        let w = triple[2]
            .as_f64()
            .ok_or_else(|| err("update watts must be a number"))?;
        if ix >= nx || iy >= ny {
            return Err(err(format!(
                "update tile ({ix}, {iy}) outside the {nx}\u{d7}{ny} grid"
            )));
        }
        tiles[iy * nx + ix] = Power::from_watts(w);
    }
    let map = PowerMap::new(nx, ny, tiles).map_err(|e| err(e.to_string()))?;
    Ok((plane, map))
}

/// Renders the delta-response body for a power update: only the tiles
/// whose `ΔT` changed bitwise between `prev` and `next`, plus `next`'s
/// full summary statistics.
///
/// The wire format (`"delta":true` is the discriminator — full reports
/// never carry it):
///
/// ```json
/// {"delta":true,"model":…,"nx":…,"ny":…,"tiles":…,
///  "changed":[[index,delta_t]…],
///  "max_delta_t":…,"mean_delta_t":…,"p99_delta_t":…,
///  "argmax_ix":…,"argmax_iy":…,"total_vias":…,"distinct_cells":…}
/// ```
///
/// Every number is rendered exactly as [`ChipReport::to_json`] would
/// render it (shortest round-trip floats), so [`apply_delta`] can rebuild
/// the full report byte-for-byte.
///
/// # Panics
///
/// Panics if the two reports cover different tile counts — a delta only
/// makes sense within one session, whose grid is fixed at registration.
#[must_use]
pub fn render_delta(prev: &ChipReport, next: &ChipReport) -> String {
    assert_eq!(
        prev.delta_t.len(),
        next.delta_t.len(),
        "delta responses require a fixed grid"
    );
    let mut body = format!(
        "{{\"delta\":true,\"model\":{},\"nx\":{},\"ny\":{},\"tiles\":{},\"changed\":[",
        serde::json::to_string(&next.model),
        next.nx,
        next.ny,
        next.tiles,
    );
    let mut first = true;
    for (i, (p, n)) in prev.delta_t.iter().zip(&next.delta_t).enumerate() {
        if p.to_bits() == n.to_bits() {
            continue;
        }
        if !first {
            body.push(',');
        }
        first = false;
        body.push_str(&format!("[{i},{}]", serde::json::to_string(n)));
    }
    body.push_str(&format!(
        "],\"max_delta_t\":{},\"mean_delta_t\":{},\"p99_delta_t\":{},\"argmax_ix\":{},\"argmax_iy\":{},\"total_vias\":{},\"distinct_cells\":{}}}",
        serde::json::to_string(&next.max_delta_t),
        serde::json::to_string(&next.mean_delta_t),
        serde::json::to_string(&next.p99_delta_t),
        next.argmax_ix,
        next.argmax_iy,
        serde::json::to_string(&next.total_vias),
        next.distinct_cells,
    ));
    body
}

fn f64_at(doc: &Value, name: &str) -> Result<f64, ProtocolError> {
    field(doc, name)?
        .as_f64()
        .ok_or_else(|| err(format!("field {name:?} must be a number")))
}

/// Applies a [`render_delta`] body on top of the previous *full* report
/// JSON, reproducing the next full report exactly as the server would
/// have rendered it with `?full=1`.
///
/// Byte-exactness holds because both sides render floats in shortest
/// round-trip form: parsing a full report recovers every `f64` bit
/// pattern, and re-rendering a recovered `f64` reproduces its original
/// text.
///
/// # Errors
///
/// Returns a [`ProtocolError`] when either document is malformed, the
/// delta is not a delta (`"delta":true` missing), or a changed-tile index
/// falls outside the previous report's grid.
pub fn apply_delta(prev_full: &str, delta: &str) -> Result<String, ProtocolError> {
    let prev = serde::json::from_str(prev_full)
        .map_err(|e| err(format!("malformed previous report: {e}")))?;
    let doc =
        serde::json::from_str(delta).map_err(|e| err(format!("malformed delta response: {e}")))?;
    if !matches!(doc.get("delta"), Some(Value::Bool(true))) {
        return Err(err("not a delta response (missing \"delta\":true)"));
    }

    let mut delta_t: Vec<f64> = field(&prev, "delta_t")?
        .as_array()
        .ok_or_else(|| err("previous report field \"delta_t\" must be an array"))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| err("previous report delta_t entries must be numbers"))
        })
        .collect::<Result<_, _>>()?;
    let changed = field(&doc, "changed")?
        .as_array()
        .ok_or_else(|| err("field \"changed\" must be an array of [index, delta_t]"))?;
    for entry in changed {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| err("each changed entry must be [index, delta_t]"))?;
        let i = pair[0]
            .as_usize()
            .ok_or_else(|| err("changed indices must be integers"))?;
        let v = pair[1]
            .as_f64()
            .ok_or_else(|| err("changed values must be numbers"))?;
        if i >= delta_t.len() {
            return Err(err(format!(
                "changed tile {i} outside the {}-tile grid",
                delta_t.len()
            )));
        }
        delta_t[i] = v;
    }

    let model = field(&doc, "model")?
        .as_str()
        .ok_or_else(|| err("field \"model\" must be a string"))?
        .to_string();
    let mut body = format!(
        "{{\"model\":{},\"nx\":{},\"ny\":{},\"delta_t\":[",
        serde::json::to_string(&model),
        usize_field(&doc, "nx")?,
        usize_field(&doc, "ny")?,
    );
    for (i, v) in delta_t.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&serde::json::to_string(v));
    }
    body.push_str(&format!(
        "],\"max_delta_t\":{},\"mean_delta_t\":{},\"p99_delta_t\":{},\"argmax_ix\":{},\"argmax_iy\":{},\"total_vias\":{},\"distinct_cells\":{},\"tiles\":{}}}",
        serde::json::to_string(&f64_at(&doc, "max_delta_t")?),
        serde::json::to_string(&f64_at(&doc, "mean_delta_t")?),
        serde::json::to_string(&f64_at(&doc, "p99_delta_t")?),
        usize_field(&doc, "argmax_ix")?,
        usize_field(&doc, "argmax_iy")?,
        serde::json::to_string(&f64_at(&doc, "total_vias")?),
        usize_field(&doc, "distinct_cells")?,
        usize_field(&doc, "tiles")?,
    ));
    Ok(body)
}

/// Renders a register body for `grid × grid` tiles with explicit
/// per-plane watt arrays — shared by the bench client, docs, and tests.
#[must_use]
pub fn render_register_body(nx: usize, ny: usize, planes: &[Vec<f64>], via_density: f64) -> String {
    let mut body = format!("{{\"nx\":{nx},\"ny\":{ny},\"planes\":[");
    for (j, plane) in planes.iter().enumerate() {
        if j > 0 {
            body.push(',');
        }
        body.push('[');
        for (i, w) in plane.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("{w}"));
        }
        body.push(']');
    }
    body.push_str(&format!("],\"via_density\":{via_density}}}"));
    body
}

/// Renders a full-replacement power body (`{"plane": j, "tiles": [W…]}`)
/// for an existing map — the journal's snapshot+compaction
/// ([`crate::persist`]) folds a session's whole update history into one
/// such record per touched plane. Watts are rendered in Rust's default
/// (shortest round-trip) float form, so parsing the rendered body
/// recovers every `f64` bit pattern and the fold is bit-exact.
#[must_use]
pub fn render_power_body_full(plane: usize, map: &PowerMap) -> String {
    let mut body = format!("{{\"plane\":{plane},\"tiles\":[");
    for (i, w) in map.tiles().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{}", w.as_watts()));
    }
    body.push_str("]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsv_core::scenario::ThermalModel;

    fn register_body(nx: usize, ny: usize) -> String {
        let tiles = nx * ny;
        #[allow(clippy::cast_precision_loss)]
        let planes: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                (0..tiles)
                    .map(|i| 0.5 + 0.01 * (i as f64) + 0.1 * (j as f64))
                    .collect()
            })
            .collect();
        render_register_body(nx, ny, &planes, 0.005)
    }

    #[test]
    fn register_round_trips_grid_and_planes() {
        let spec = parse_register(register_body(3, 2).as_bytes()).unwrap();
        assert_eq!((spec.plan.nx(), spec.plan.ny()), (3, 2));
        assert_eq!(spec.plan.plane_count(), 3);
        assert_eq!(spec.model.name(), ModelB::paper_b20().name());
        assert!((spec.plan.plane_maps()[0].get(1, 0).as_watts() - 0.51).abs() < 1e-12);
    }

    #[test]
    fn register_accepts_density_arrays_and_segment_overrides() {
        let body = "{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[0.1,0.2]],\
                    \"via_density\":[0.004,0.006],\"segments\":[3,30]}";
        let spec = parse_register(body.as_bytes()).unwrap();
        assert!((spec.plan.via_map().get(1, 0) - 0.006).abs() < 1e-12);
        assert_eq!(spec.model.name(), ModelB::with_segments(3, 30).name());
    }

    #[test]
    fn register_rejections_name_the_problem() {
        let cases: &[(&str, &str)] = &[
            ("not json", "malformed JSON"),
            ("{\"ny\":1,\"planes\":[],\"via_density\":0.005}", "missing field \"nx\""),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1,2]],\"via_density\":0.005}", "at least 2 plane"),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1],[2]],\"via_density\":0.005}", "grid needs 2"),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[-1,0]],\"via_density\":0.005}", "non-negative"),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[1,1]],\"via_density\":2.0}", "(0, 1)"),
            (
                "{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[1,1]],\"via_density\":0.005,\"segments\":[0,5]}",
                "segment counts",
            ),
        ];
        for (body, needle) in cases {
            let got = parse_register(body.as_bytes()).unwrap_err();
            assert!(got.0.contains(needle), "{body} → {got}");
        }
    }

    #[test]
    fn power_updates_patch_tiles_in_place() {
        let spec = parse_register(register_body(2, 2).as_bytes()).unwrap();
        let (plane, map) =
            parse_power_update(b"{\"plane\":1,\"updates\":[[0,1,9.5]]}", &spec.plan).unwrap();
        assert_eq!(plane, 1);
        assert!((map.get(0, 1).as_watts() - 9.5).abs() < 1e-12);
        // Untouched tiles keep the registered values.
        assert_eq!(
            map.get(1, 0).as_watts(),
            spec.plan.plane_maps()[1].get(1, 0).as_watts()
        );
    }

    #[test]
    fn delta_render_and_apply_round_trip_bitwise() {
        use ttsv_chip::ChipEngine;

        let engine = ChipEngine::new().with_workers(1);
        let spec = parse_register(register_body(4, 4).as_bytes()).unwrap();
        let before = engine.evaluate_factored(&spec.plan, &spec.model).unwrap();

        let mut plan = spec.plan.clone();
        let (plane, map) =
            parse_power_update(b"{\"plane\":0,\"updates\":[[1,2,9.0],[3,0,4.5]]}", &plan).unwrap();
        plan.update_power_map(plane, map).unwrap();
        let after = engine.evaluate_factored(&plan, &spec.model).unwrap();

        let delta = render_delta(&before, &after);
        assert!(delta.starts_with("{\"delta\":true,"));
        assert!(delta.contains("\"max_delta_t\""));
        assert!(
            delta.len() < after.to_json().len(),
            "a two-tile update's delta ({} B) must undercut the full report ({} B)",
            delta.len(),
            after.to_json().len()
        );
        let rebuilt = apply_delta(&before.to_json(), &delta).unwrap();
        assert_eq!(rebuilt, after.to_json(), "byte-exact reconstruction");
    }

    #[test]
    fn delta_with_no_changes_still_reconstructs() {
        let engine = ttsv_chip::ChipEngine::new().with_workers(1);
        let spec = parse_register(register_body(3, 3).as_bytes()).unwrap();
        let report = engine.evaluate_factored(&spec.plan, &spec.model).unwrap();
        let delta = render_delta(&report, &report);
        assert!(delta.contains("\"changed\":[]"), "{delta}");
        assert_eq!(
            apply_delta(&report.to_json(), &delta).unwrap(),
            report.to_json()
        );
    }

    #[test]
    fn apply_delta_rejections_name_the_problem() {
        let engine = ttsv_chip::ChipEngine::new().with_workers(1);
        let spec = parse_register(register_body(2, 2).as_bytes()).unwrap();
        let full = engine
            .evaluate_factored(&spec.plan, &spec.model)
            .unwrap()
            .to_json();
        for (delta, needle) in [
            ("not json", "malformed delta"),
            (full.as_str(), "not a delta response"),
            ("{\"delta\":true}", "missing field \"changed\""),
            (
                "{\"delta\":true,\"changed\":[[99,1.0]],\"model\":\"m\",\"nx\":2,\"ny\":2,\
                 \"tiles\":4,\"max_delta_t\":1,\"mean_delta_t\":1,\"p99_delta_t\":1,\
                 \"argmax_ix\":0,\"argmax_iy\":0,\"total_vias\":1,\"distinct_cells\":1}",
                "outside the 4-tile grid",
            ),
        ] {
            let got = apply_delta(&full, delta).unwrap_err();
            assert!(got.0.contains(needle), "{delta} → {got}");
        }
        assert!(apply_delta("broken", "{\"delta\":true}")
            .unwrap_err()
            .0
            .contains("malformed previous report"));
    }

    #[test]
    fn full_power_body_render_round_trips_bitwise() {
        let spec = parse_register(register_body(3, 2).as_bytes()).unwrap();
        let (plane, map) = parse_power_update(
            b"{\"plane\":1,\"updates\":[[0,1,9.5],[2,0,0.125]]}",
            &spec.plan,
        )
        .unwrap();
        let body = render_power_body_full(plane, &map);
        let (plane2, map2) = parse_power_update(body.as_bytes(), &spec.plan).unwrap();
        assert_eq!(plane2, plane);
        let bits = |m: &PowerMap| -> Vec<u64> {
            m.tiles().iter().map(|w| w.as_watts().to_bits()).collect()
        };
        assert_eq!(bits(&map2), bits(&map), "render → parse is bit-exact");
    }

    #[test]
    fn power_update_full_replacement_and_rejections() {
        let spec = parse_register(register_body(2, 1).as_bytes()).unwrap();
        let (_, map) = parse_power_update(b"{\"plane\":0,\"tiles\":[4,5]}", &spec.plan).unwrap();
        assert_eq!(map.get(1, 0).as_watts(), 5.0);
        for (body, needle) in [
            (&b"{\"plane\":7,\"updates\":[]}"[..], "out of range"),
            (b"{\"plane\":0,\"updates\":[[5,0,1.0]]}", "outside the"),
            (b"{\"plane\":0,\"updates\":[[0,0,-3.0]]}", "non-negative"),
            (b"{\"plane\":0}", "missing field \"updates\""),
        ] {
            let got = parse_power_update(body, &spec.plan).unwrap_err();
            assert!(got.0.contains(needle), "{got}");
        }
    }
}
