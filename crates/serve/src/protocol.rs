//! The wire protocol: JSON request bodies → validated floorplan moves.
//!
//! `docs/PROTOCOL.md` is the authoritative description; in short:
//!
//! * **Register** (`POST /sessions`): `{"nx", "ny", "planes": [[W…]…],
//!   "via_density": d | [d…], "segments": [first, others]?}` — the stack
//!   geometry is the paper's §IV-E case study
//!   ([`CaseStudy::paper`](ttsv_core::full_chip::CaseStudy::paper)); the
//!   maps and the Model B segment counts come from the request.
//! * **Power delta** (`POST /sessions/{id}/power`): `{"plane": j,
//!   "tiles": [W…]}` replaces plane `j`'s whole map, or `{"plane": j,
//!   "updates": [[ix, iy, W]…]}` patches individual tiles — the cheap
//!   serving move: unchanged tiles stay cache-hot in the engine.
//!
//! Every validation failure is a [`ProtocolError`] (HTTP 400 with the
//! message in an `{"error": …}` body) — malformed JSON, wrong shapes,
//! non-finite numbers, out-of-range indices, and floorplan constraint
//! violations all land here; nothing panics on client input.

use serde::json::Value;
use ttsv_chip::{Floorplan, PowerMap, ViaDensityMap};
use ttsv_core::full_chip::CaseStudy;
use ttsv_core::model_b::ModelB;
use ttsv_units::Power;

/// A rejected request body: the message for the 400 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// A registered session's immutable model and mutable floorplan.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The floorplan power deltas will mutate.
    pub plan: Floorplan,
    /// The Model B configuration every evaluation uses.
    pub model: ModelB,
}

fn parse_body(body: &[u8]) -> Result<Value, ProtocolError> {
    let text = std::str::from_utf8(body).map_err(|_| err("request body is not valid UTF-8"))?;
    serde::json::from_str(text).map_err(|e| err(format!("malformed JSON body: {e}")))
}

fn field<'a>(obj: &'a Value, name: &str) -> Result<&'a Value, ProtocolError> {
    obj.get(name)
        .ok_or_else(|| err(format!("missing field {name:?}")))
}

fn usize_field(obj: &Value, name: &str) -> Result<usize, ProtocolError> {
    field(obj, name)?
        .as_usize()
        .ok_or_else(|| err(format!("field {name:?} must be a non-negative integer")))
}

fn watts_array(value: &Value, expected: usize, what: &str) -> Result<Vec<Power>, ProtocolError> {
    let entries = value
        .as_array()
        .ok_or_else(|| err(format!("{what} must be an array of watts")))?;
    if entries.len() != expected {
        return Err(err(format!(
            "{what} holds {} tiles but the grid needs {expected}",
            entries.len()
        )));
    }
    entries
        .iter()
        .map(|v| {
            v.as_f64()
                .map(Power::from_watts)
                .ok_or_else(|| err(format!("{what} entries must be numbers")))
        })
        .collect()
}

/// Parses a `POST /sessions` registration body.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on malformed JSON, missing/ill-typed
/// fields, or maps the floorplan constructors reject.
pub fn parse_register(body: &[u8]) -> Result<SessionSpec, ProtocolError> {
    let doc = parse_body(body)?;
    let nx = usize_field(&doc, "nx")?;
    let ny = usize_field(&doc, "ny")?;
    let tiles = nx
        .checked_mul(ny)
        .ok_or_else(|| err("grid size overflows"))?;

    let planes = field(&doc, "planes")?
        .as_array()
        .ok_or_else(|| err("field \"planes\" must be an array of per-plane tile arrays"))?;
    let plane_maps = planes
        .iter()
        .enumerate()
        .map(|(j, p)| {
            let watts = watts_array(p, tiles, &format!("plane {j}"))?;
            PowerMap::new(nx, ny, watts).map_err(|e| err(e.to_string()))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let via_map = match field(&doc, "via_density")? {
        Value::Array(entries) => {
            if entries.len() != tiles {
                return Err(err(format!(
                    "via_density holds {} tiles but the grid needs {tiles}",
                    entries.len()
                )));
            }
            let densities = entries
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| err("via_density entries must be numbers"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            ViaDensityMap::new(nx, ny, densities)
        }
        scalar => {
            let d = scalar
                .as_f64()
                .ok_or_else(|| err("field \"via_density\" must be a number or array"))?;
            ViaDensityMap::uniform(nx, ny, d)
        }
    }
    .map_err(|e| err(e.to_string()))?;

    let model = match doc.get("segments") {
        None => ModelB::paper_b20(),
        Some(v) => {
            let pair = v
                .as_array()
                .ok_or_else(|| err("field \"segments\" must be [first, others]"))?;
            let (first, others) = match (pair.first(), pair.get(1)) {
                (Some(f), Some(o)) if pair.len() == 2 => (
                    f.as_usize()
                        .ok_or_else(|| err("segment counts must be integers"))?,
                    o.as_usize()
                        .ok_or_else(|| err("segment counts must be integers"))?,
                ),
                _ => return Err(err("field \"segments\" must be [first, others]")),
            };
            if first == 0 || others == 0 || first > 1_000 || others > 10_000 {
                return Err(err("segment counts must be in 1..=1000 / 1..=10000"));
            }
            ModelB::with_segments(first, others)
        }
    };

    let plan =
        Floorplan::new(&CaseStudy::paper(), plane_maps, via_map).map_err(|e| err(e.to_string()))?;
    Ok(SessionSpec { plan, model })
}

/// Parses a `POST /sessions/{id}/power` delta body against the session's
/// current floorplan, returning the plane index and its replacement map.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on malformed JSON, a plane or tile index
/// outside the grid, or power values the map constructor rejects.
pub fn parse_power_update(
    body: &[u8],
    plan: &Floorplan,
) -> Result<(usize, PowerMap), ProtocolError> {
    let doc = parse_body(body)?;
    let plane = usize_field(&doc, "plane")?;
    if plane >= plan.plane_count() {
        return Err(err(format!(
            "plane {plane} out of range for a {}-plane session",
            plan.plane_count()
        )));
    }
    let (nx, ny) = (plan.nx(), plan.ny());

    if let Some(tiles) = doc.get("tiles") {
        let watts = watts_array(tiles, nx * ny, "tiles")?;
        let map = PowerMap::new(nx, ny, watts).map_err(|e| err(e.to_string()))?;
        return Ok((plane, map));
    }

    let updates = field(&doc, "updates")?
        .as_array()
        .ok_or_else(|| err("field \"updates\" must be an array of [ix, iy, watts]"))?;
    let mut tiles: Vec<Power> = plan.plane_maps()[plane].tiles().to_vec();
    for u in updates {
        let triple = u
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| err("each update must be [ix, iy, watts]"))?;
        let ix = triple[0]
            .as_usize()
            .ok_or_else(|| err("update indices must be integers"))?;
        let iy = triple[1]
            .as_usize()
            .ok_or_else(|| err("update indices must be integers"))?;
        let w = triple[2]
            .as_f64()
            .ok_or_else(|| err("update watts must be a number"))?;
        if ix >= nx || iy >= ny {
            return Err(err(format!(
                "update tile ({ix}, {iy}) outside the {nx}\u{d7}{ny} grid"
            )));
        }
        tiles[iy * nx + ix] = Power::from_watts(w);
    }
    let map = PowerMap::new(nx, ny, tiles).map_err(|e| err(e.to_string()))?;
    Ok((plane, map))
}

/// Renders a register body for `grid × grid` tiles with explicit
/// per-plane watt arrays — shared by the bench client, docs, and tests.
#[must_use]
pub fn render_register_body(nx: usize, ny: usize, planes: &[Vec<f64>], via_density: f64) -> String {
    let mut body = format!("{{\"nx\":{nx},\"ny\":{ny},\"planes\":[");
    for (j, plane) in planes.iter().enumerate() {
        if j > 0 {
            body.push(',');
        }
        body.push('[');
        for (i, w) in plane.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("{w}"));
        }
        body.push(']');
    }
    body.push_str(&format!("],\"via_density\":{via_density}}}"));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttsv_core::scenario::ThermalModel;

    fn register_body(nx: usize, ny: usize) -> String {
        let tiles = nx * ny;
        #[allow(clippy::cast_precision_loss)]
        let planes: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                (0..tiles)
                    .map(|i| 0.5 + 0.01 * (i as f64) + 0.1 * (j as f64))
                    .collect()
            })
            .collect();
        render_register_body(nx, ny, &planes, 0.005)
    }

    #[test]
    fn register_round_trips_grid_and_planes() {
        let spec = parse_register(register_body(3, 2).as_bytes()).unwrap();
        assert_eq!((spec.plan.nx(), spec.plan.ny()), (3, 2));
        assert_eq!(spec.plan.plane_count(), 3);
        assert_eq!(spec.model.name(), ModelB::paper_b20().name());
        assert!((spec.plan.plane_maps()[0].get(1, 0).as_watts() - 0.51).abs() < 1e-12);
    }

    #[test]
    fn register_accepts_density_arrays_and_segment_overrides() {
        let body = "{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[0.1,0.2]],\
                    \"via_density\":[0.004,0.006],\"segments\":[3,30]}";
        let spec = parse_register(body.as_bytes()).unwrap();
        assert!((spec.plan.via_map().get(1, 0) - 0.006).abs() < 1e-12);
        assert_eq!(spec.model.name(), ModelB::with_segments(3, 30).name());
    }

    #[test]
    fn register_rejections_name_the_problem() {
        let cases: &[(&str, &str)] = &[
            ("not json", "malformed JSON"),
            ("{\"ny\":1,\"planes\":[],\"via_density\":0.005}", "missing field \"nx\""),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1,2]],\"via_density\":0.005}", "at least 2 plane"),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1],[2]],\"via_density\":0.005}", "grid needs 2"),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[-1,0]],\"via_density\":0.005}", "non-negative"),
            ("{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[1,1]],\"via_density\":2.0}", "(0, 1)"),
            (
                "{\"nx\":2,\"ny\":1,\"planes\":[[1,2],[1,1]],\"via_density\":0.005,\"segments\":[0,5]}",
                "segment counts",
            ),
        ];
        for (body, needle) in cases {
            let got = parse_register(body.as_bytes()).unwrap_err();
            assert!(got.0.contains(needle), "{body} → {got}");
        }
    }

    #[test]
    fn power_updates_patch_tiles_in_place() {
        let spec = parse_register(register_body(2, 2).as_bytes()).unwrap();
        let (plane, map) =
            parse_power_update(b"{\"plane\":1,\"updates\":[[0,1,9.5]]}", &spec.plan).unwrap();
        assert_eq!(plane, 1);
        assert!((map.get(0, 1).as_watts() - 9.5).abs() < 1e-12);
        // Untouched tiles keep the registered values.
        assert_eq!(
            map.get(1, 0).as_watts(),
            spec.plan.plane_maps()[1].get(1, 0).as_watts()
        );
    }

    #[test]
    fn power_update_full_replacement_and_rejections() {
        let spec = parse_register(register_body(2, 1).as_bytes()).unwrap();
        let (_, map) = parse_power_update(b"{\"plane\":0,\"tiles\":[4,5]}", &spec.plan).unwrap();
        assert_eq!(map.get(1, 0).as_watts(), 5.0);
        for (body, needle) in [
            (&b"{\"plane\":7,\"updates\":[]}"[..], "out of range"),
            (b"{\"plane\":0,\"updates\":[[5,0,1.0]]}", "outside the"),
            (b"{\"plane\":0,\"updates\":[[0,0,-3.0]]}", "non-negative"),
            (b"{\"plane\":0}", "missing field \"updates\""),
        ] {
            let got = parse_power_update(body, &spec.plan).unwrap_err();
            assert!(got.0.contains(needle), "{got}");
        }
    }
}
