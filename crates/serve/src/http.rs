//! A hand-rolled, std-only HTTP/1.1 layer: an **incremental** request
//! parser plus a response writer.
//!
//! The parser is a pure function of the bytes buffered so far — feeding
//! the same byte stream in any split pattern (one call, byte-at-a-time,
//! random chunks) produces the same sequence of requests and errors. The
//! property suite exploits exactly that invariant. Malformed input never
//! panics; it maps to a typed [`HttpError`] carrying the 4xx/5xx status
//! the connection answers before closing:
//!
//! | status | condition |
//! |--------|-----------|
//! | 400    | malformed start-line, header, or `Content-Length` |
//! | 411    | `POST` without a `Content-Length` |
//! | 413    | declared body larger than [`MAX_BODY_BYTES`] |
//! | 431    | header section larger than [`MAX_HEAD_BYTES`] (or more than [`MAX_HEADERS`] fields) |
//! | 501    | unknown method, or `Transfer-Encoding` (chunked bodies are not implemented) |
//! | 505    | HTTP version other than 1.0 / 1.1 |
//!
//! Keep-alive follows RFC 9112 defaults: HTTP/1.1 persists unless
//! `Connection: close`; HTTP/1.0 closes unless `Connection: keep-alive`.
//! Pipelined requests are supported — bytes past one complete request
//! stay buffered for the next [`RequestParser::next_request`] call.

use std::io::{self, Write};

/// Maximum size of the start-line + header section, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum number of header fields per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum declared `Content-Length`, in bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// The request methods the server implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET` — metrics, health, session reads.
    Get,
    /// `POST` — session registration and power-delta streaming.
    Post,
    /// `DELETE` — explicit session teardown.
    Delete,
}

impl Method {
    /// The canonical token, e.g. `"GET"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

/// One fully parsed request: start line, headers, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target (always starts with `/`).
    pub target: String,
    /// Header fields in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection persists after this exchange.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of header `name` (ASCII case-insensitive lookup;
    /// stored names are already lower-case).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A protocol violation: the status the connection answers (then closes)
/// plus a human-readable reason for the JSON error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The 4xx/5xx status code.
    pub status: u16,
    /// What was wrong with the request.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// The incremental request parser: feed bytes as they arrive, pop
/// complete requests as they become available.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes to the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (useful to detect trailing garbage).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete request, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes"; `Ok(Some(_))` consumes exactly
    /// one request (pipelined followers stay buffered); `Err(_)` means the
    /// buffered bytes cannot become a valid request — answer the error
    /// and close the connection.
    ///
    /// # Errors
    ///
    /// Returns the [`HttpError`] catalogued in the module docs.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_len) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::new(
                    431,
                    format!("header section exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                format!("header section exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let (mut request, content_length) = parse_head(&self.buf[..head_len])?;
        let total = head_len + 4 + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        request.body = self.buf[head_len + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(request))
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the start-line + header section (without the terminator) into a
/// body-less request plus the declared content length.
fn parse_head(head: &[u8]) -> Result<(Request, usize), HttpError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or("");
    if start.bytes().any(|b| b.is_ascii_control()) {
        return Err(HttpError::new(400, "control bytes in the start line"));
    }
    let mut parts = start.split(' ');
    let (method_token, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed start line {start:?}"),
            ))
        }
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Err(HttpError::new(
                505,
                format!("unsupported protocol version {version:?}"),
            ))
        }
    };
    let method = match method_token {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "DELETE" => Method::Delete,
        other if other.bytes().all(|b| b.is_ascii_uppercase()) => {
            return Err(HttpError::new(
                501,
                format!("method {other} not implemented"),
            ));
        }
        other => return Err(HttpError::new(400, format!("malformed method {other:?}"))),
    };
    if !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            format!("request target {target:?} must start with '/'"),
        ));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(
                431,
                format!("more than {MAX_HEADERS} header fields"),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(
                400,
                format!("header line {line:?} has no ':'"),
            ));
        };
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
        {
            return Err(HttpError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        let value = value.trim();
        if value.bytes().any(|b| b.is_ascii_control()) {
            return Err(HttpError::new(
                400,
                format!("control bytes in header {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::new(
            501,
            "transfer-encoding is not implemented; send a Content-Length body",
        ));
    }

    let mut content_length: Option<usize> = None;
    for (k, v) in &headers {
        if k != "content-length" {
            continue;
        }
        let parsed: usize = if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::new(
                400,
                format!("malformed Content-Length {v:?}"),
            ));
        } else {
            v.parse()
                .map_err(|_| HttpError::new(400, format!("malformed Content-Length {v:?}")))?
        };
        if let Some(prev) = content_length {
            if prev != parsed {
                return Err(HttpError::new(400, "conflicting Content-Length headers"));
            }
        }
        content_length = Some(parsed);
    }
    let content_length = match content_length {
        Some(n) if n > MAX_BODY_BYTES => {
            return Err(HttpError::new(
                413,
                format!("declared body of {n} bytes exceeds {MAX_BODY_BYTES}"),
            ));
        }
        Some(n) => n,
        None if method == Method::Post => {
            return Err(HttpError::new(411, "POST requires a Content-Length"));
        }
        None => 0,
    };

    let keep_alive = match headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
        Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => keep_alive_default,
    };

    Ok((
        Request {
            method,
            target: target.to_string(),
            headers,
            body: Vec::new(),
            keep_alive,
        },
        content_length,
    ))
}

/// The canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An outgoing response: status, JSON body, connection disposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The JSON body (may be empty for 204).
    pub body: String,
    /// Whether the connection persists after writing this response.
    pub keep_alive: bool,
    /// Seconds for a `Retry-After` header (overload responses: 503 when
    /// the pool sheds, 429 when a session floods).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response that keeps the connection alive.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            keep_alive: true,
            retry_after: None,
        }
    }

    /// The `{"error": …}` response for a protocol violation; always
    /// closes the connection (framing may be lost after a parse error).
    #[must_use]
    pub fn from_error(err: &HttpError) -> Self {
        Self {
            status: err.status,
            body: format!("{{\"error\":{}}}", serde::json::to_string(&err.message)),
            keep_alive: false,
            retry_after: None,
        }
    }

    /// An application-level error (routing, bad session id, invalid
    /// floorplan) that keeps the connection alive — framing is intact.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Self {
            status,
            body: format!("{{\"error\":{}}}", serde::json::to_string(&message)),
            keep_alive: true,
            retry_after: None,
        }
    }

    /// An overload rejection (`503` shed / `429` flood) carrying a
    /// `Retry-After` hint so well-behaved clients back off instead of
    /// hammering a saturated server.
    #[must_use]
    pub fn overloaded(status: u16, message: &str, retry_after_secs: u64) -> Self {
        Self {
            retry_after: Some(retry_after_secs),
            ..Self::error(status, message)
        }
    }

    /// Serializes the response to the wire.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Renders the full wire image (status line, headers, body) into one
    /// buffer — the form the nonblocking write path needs, where a
    /// response may leave the socket across many partial writes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let connection = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let mut out = Vec::with_capacity(128 + self.body.len());
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.body.len(),
            connection,
        );
        if let Some(secs) = self.retry_after {
            let _ = write!(out, "retry-after: {secs}\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(self.body.as_bytes());
        out
    }
}

/// An outgoing byte queue for one nonblocking connection.
///
/// Responses are staged with [`WriteBuffer::push_response`]; the event
/// loop drains the queue with [`WriteBuffer::flush`] whenever the socket
/// accepts bytes. `WouldBlock` is not an error at this layer — it maps to
/// `Ok(0)` so the caller can tell "no progress" from "peer gone" without
/// matching on error kinds everywhere.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuffer {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether every staged byte has left the buffer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes still waiting to be written.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Stages a response's full wire image behind whatever is queued.
    pub fn push_response(&mut self, response: &Response) {
        if self.is_empty() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(&response.to_bytes());
    }

    /// Writes as much queued data as `w` accepts right now.
    ///
    /// Returns the number of bytes written this call; `WouldBlock` (and
    /// `Interrupted`) report `Ok(0)`. Fully drained buffers are compacted
    /// so a long-lived keep-alive connection does not grow without bound.
    ///
    /// # Errors
    ///
    /// Propagates hard I/O errors (reset, broken pipe) — the caller
    /// should drop the connection.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut written = 0;
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => break,
                Ok(n) => {
                    self.pos += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.is_empty() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Vec<Request>, HttpError> {
        let mut parser = RequestParser::new();
        parser.feed(bytes);
        let mut out = Vec::new();
        while let Some(req) = parser.next_request()? {
            out.push(req);
        }
        Ok(out)
    }

    #[test]
    fn parses_a_get_without_a_body() {
        let reqs = parse_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, Method::Get);
        assert_eq!(reqs[0].target, "/metrics");
        assert!(reqs[0].keep_alive);
        assert!(reqs[0].body.is_empty());
        assert_eq!(reqs[0].header("Host"), Some("x"));
    }

    #[test]
    fn parses_a_post_with_a_content_length_body() {
        let reqs =
            parse_all(b"POST /sessions HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(reqs[0].body, b"{\"a\"");
    }

    #[test]
    fn partial_reads_return_need_more_until_complete() {
        let wire = b"POST /sessions HTTP/1.1\r\ncontent-length: 2\r\n\r\nok";
        let mut parser = RequestParser::new();
        for &b in &wire[..wire.len() - 1] {
            parser.feed(&[b]);
            assert_eq!(parser.next_request().unwrap(), None);
        }
        parser.feed(&wire[wire.len() - 1..]);
        let req = parser.next_request().unwrap().unwrap();
        assert_eq!(req.body, b"ok");
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_pop_in_order() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(parser.next_request().unwrap().unwrap().target, "/a");
        assert_eq!(parser.next_request().unwrap().unwrap().target, "/b");
        assert_eq!(parser.next_request().unwrap(), None);
    }

    #[test]
    fn http10_defaults_to_close_and_11_to_keep_alive() {
        let old = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old[0].keep_alive);
        let pinned = parse_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!pinned[0].keep_alive);
        let revived = parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(revived[0].keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_the_documented_statuses() {
        let cases: &[(&[u8], u16)] = &[
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET /\r\n\r\n", 400),
            (b"get / HTTP/1.1\r\n\r\n", 400),
            (b"GET x HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nno-colon\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n", 400),
            (b"POST /s HTTP/1.1\r\ncontent-length: -1\r\n\r\n", 400),
            (
                b"POST /s HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n",
                400,
            ),
            (b"POST /s HTTP/1.1\r\n\r\n", 411),
            (b"POST /s HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n", 413),
            (b"BREW /pot HTTP/1.1\r\n\r\n", 501),
            (
                b"POST /s HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                501,
            ),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"GET / HTTP/1.1 extra\r\n\r\n", 400),
        ];
        for (wire, want) in cases {
            let got = parse_all(wire).unwrap_err();
            assert_eq!(
                got.status,
                *want,
                "{:?} → {:?}",
                String::from_utf8_lossy(wire),
                got
            );
        }
    }

    #[test]
    fn oversized_head_is_rejected_even_without_a_terminator() {
        let mut parser = RequestParser::new();
        parser.feed(&vec![b'A'; MAX_HEAD_BYTES + 1]);
        assert_eq!(parser.next_request().unwrap_err().status, 431);
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            wire.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&wire).unwrap_err().status, 431);
    }

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
        let mut err = Vec::new();
        Response::from_error(&HttpError::new(400, "bad \"quote\""))
            .write_to(&mut err)
            .unwrap();
        let err = String::from_utf8(err).unwrap();
        assert!(err.contains("connection: close"), "{err}");
        assert!(err.contains("{\"error\":\"bad \\\"quote\\\"\"}"), "{err}");
    }

    #[test]
    fn write_buffer_survives_one_byte_at_a_time_sinks() {
        struct OneByte(Vec<u8>, usize);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                // Alternate a 1-byte write with a WouldBlock, like a
                // congested nonblocking socket.
                self.1 += 1;
                if self.1.is_multiple_of(2) {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let first = Response::json(200, "{\"ok\":true}".into());
        let second = Response::error(404, "gone");
        let mut expected = first.to_bytes();
        expected.extend_from_slice(&second.to_bytes());
        let mut queue = WriteBuffer::new();
        queue.push_response(&first);
        queue.push_response(&second);
        assert_eq!(queue.pending(), expected.len());
        let mut sink = OneByte(Vec::new(), 0);
        while !queue.is_empty() {
            queue.flush(&mut sink).unwrap();
        }
        assert_eq!(sink.0, expected, "byte-exact across partial writes");
        assert_eq!(queue.pending(), 0);
    }

    #[test]
    fn overload_responses_carry_retry_after() {
        let mut out = Vec::new();
        Response::overloaded(503, "saturated", 2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        assert!(text.contains("\r\n\r\n{\"error\":\"saturated\"}"), "{text}");
        // Ordinary responses never emit the header.
        let mut plain = Vec::new();
        Response::json(200, "{}".into())
            .write_to(&mut plain)
            .unwrap();
        assert!(!String::from_utf8(plain).unwrap().contains("retry-after"));
    }
}
