//! Durable sessions: an append-only, CRC-framed write-ahead journal.
//!
//! A crash or restart used to lose every registered floorplan, because
//! sessions lived only in the [`ShardedLru`](crate::lru::ShardedLru).
//! But the engine is bitwise-deterministic, so a session is *fully*
//! determined by its registration body plus its ordered power-update
//! bodies — exactly the shape a small write-ahead journal captures.
//! This module journals those raw wire bodies and replays them through
//! the same [`crate::protocol`] parsers at boot, which is why
//! a recovered session answers its next report bitwise-identical to a
//! server that never crashed.
//!
//! # On-disk format
//!
//! One file per server, `<state-dir>/journal.ttsv`:
//!
//! ```text
//! "TTSVJRNL" (8 B)  version u32 LE (4 B)          — header
//! [len u32 LE][crc32 u32 LE][payload; len B]      — frame, repeated
//! payload = [kind u8][id u64 LE][rest…]
//! ```
//!
//! Kinds: `1` register (rest = raw request body), `2` power update
//! (rest = raw request body), `3` delete, `4` LRU-eviction tombstone,
//! `5` meta (`id` field carries the next session id). The CRC32 is the
//! IEEE polynomial, hand-rolled below (std has none).
//!
//! # Failure model
//!
//! * **Torn tail.** A crash mid-append leaves a partial frame; the
//!   length/CRC framing makes [`scan`] stop at the first bad frame, so
//!   recovery always yields a valid *prefix* of the history — never a
//!   panic, never a half-applied record. The tail is truncated on open
//!   so new appends extend a clean journal.
//! * **Write/fsync errors.** The journal *degrades*: persistence is
//!   disabled for the rest of the process, `persistence.write_errors`
//!   is counted, a warning is printed, and serving continues
//!   unjournaled. Durability is best-effort; availability is not.
//! * **Clean shutdown.** [`Journal::clean_shutdown`] compacts, syncs,
//!   and writes a `clean` marker recording the journal length; the next
//!   boot uses a matching marker to trust the tail (and to report the
//!   boot as clean) instead of assuming a crash.
//!
//! # Compaction
//!
//! Deletions, evictions, and repeated updates to the same plane leave
//! dead records behind. Once the journal holds at least
//! [`PersistConfig::compact_min_records`] records and fewer than half
//! are live, it is folded: each live session becomes its original
//! registration body plus **one** full-replacement update per touched
//! plane ([`render_power_body_full`](crate::protocol::render_power_body_full)),
//! written to a temp file and atomically renamed over the journal.
//! Shortest-round-trip float rendering keeps the fold bit-exact. The
//! fold reads the journal *file* under the journal lock only — it never
//! touches live session state, so there is no lock-order cycle with the
//! serving paths.
//!
//! Fault injection for all of this lives in
//! [`crate::faults::FaultyJournal`], seeded like every other chaos
//! tool in this crate.

use std::collections::{BTreeSet, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::faults::{FaultyJournal, JournalFaultConfig, JournalFaultPlan};
use crate::metrics::PersistStats;
use crate::protocol::{self, SessionSpec};

/// Journal file magic (first 8 bytes).
const MAGIC: &[u8; 8] = b"TTSVJRNL";
/// Journal format version (4 bytes, little-endian, after the magic).
const VERSION: u32 = 1;
/// Header length: magic + version.
const HEADER_LEN: usize = 12;
/// A frame's payload may not exceed this (sanity bound during the scan:
/// a corrupt length field must not allocate gigabytes). Far above the
/// server's request-body cap.
const MAX_PAYLOAD: usize = 16 * 1024 * 1024;
/// The smallest valid payload: kind byte + id.
const MIN_PAYLOAD: usize = 9;

/// Hand-rolled IEEE CRC32 (the zlib/Ethernet polynomial, reflected
/// form) — std ships no checksum, and the journal needs one to tell a
/// torn tail from a valid record.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One journal record. `Register` and `PowerUpdate` carry the raw
/// request body exactly as it arrived on the wire — replaying it
/// through the same parser is what makes recovery bitwise-faithful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A session registration (`POST /sessions`) that was accepted.
    Register {
        /// The session id the server allocated.
        id: u64,
        /// The raw registration body.
        body: Vec<u8>,
    },
    /// A power update (`POST /sessions/{id}/power`) that was applied.
    PowerUpdate {
        /// The session the update was applied to.
        id: u64,
        /// The raw update body.
        body: Vec<u8>,
    },
    /// An explicit `DELETE /sessions/{id}` — recovery must never
    /// resurrect this session.
    Delete {
        /// The deleted session.
        id: u64,
    },
    /// An LRU-eviction tombstone — same recovery semantics as a delete.
    Evict {
        /// The evicted session.
        id: u64,
    },
    /// Journal metadata: the next session id to allocate, so ids stay
    /// monotonic across restarts even after every session is deleted.
    Meta {
        /// The next id the server should hand out.
        next_id: u64,
    },
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Register { .. } => 1,
            Record::PowerUpdate { .. } => 2,
            Record::Delete { .. } => 3,
            Record::Evict { .. } => 4,
            Record::Meta { .. } => 5,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let (id, body): (u64, &[u8]) = match self {
            Record::Register { id, body } | Record::PowerUpdate { id, body } => (*id, body),
            Record::Delete { id } | Record::Evict { id } => (*id, &[]),
            Record::Meta { next_id } => (*next_id, &[]),
        };
        let mut payload = Vec::with_capacity(MIN_PAYLOAD + body.len());
        payload.push(self.kind());
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(body);
        payload
    }

    /// Encodes this record as one framed journal entry
    /// (`[len][crc32][payload]`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        #[allow(clippy::cast_possible_truncation)]
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        if payload.len() < MIN_PAYLOAD {
            return None;
        }
        let id = u64::from_le_bytes(payload[1..9].try_into().ok()?);
        let body = &payload[9..];
        match (payload[0], body.is_empty()) {
            (1, _) => Some(Record::Register {
                id,
                body: body.to_vec(),
            }),
            (2, _) => Some(Record::PowerUpdate {
                id,
                body: body.to_vec(),
            }),
            (3, true) => Some(Record::Delete { id }),
            (4, true) => Some(Record::Evict { id }),
            (5, true) => Some(Record::Meta { next_id: id }),
            _ => None,
        }
    }
}

/// The journal header ([`MAGIC`] + version), as written to a new file.
fn header_bytes() -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h
}

/// Scans raw journal bytes into the longest valid record prefix.
///
/// Returns the decoded records and the byte length of the valid prefix
/// (header included). The scan stops — without panicking, whatever the
/// input — at the first missing/oversized/corrupt frame: a torn tail,
/// a bad CRC, or an unknown record kind all just end the prefix. A
/// missing or corrupt *header* yields an empty journal (prefix 0).
#[must_use]
pub fn scan(bytes: &[u8]) -> (Vec<Record>, usize) {
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != MAGIC
        || bytes[8..HEADER_LEN] != VERSION.to_le_bytes()
    {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    while let Some(head) = bytes.get(offset..offset + 8) {
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) {
            break;
        }
        let Some(payload) = bytes.get(offset + 8..offset + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = Record::decode(payload) else {
            break;
        };
        records.push(record);
        offset += 8 + len;
    }
    (records, offset)
}

/// When the journal is flushed to the OS *and* fsynced to the device.
///
/// Appends always reach the OS page cache immediately (surviving a
/// process crash); the fsync policy only governs durability across
/// power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record (most durable, slowest).
    Always,
    /// fsync at most once per interval, piggybacked on appends — the
    /// default, at 100 ms: bounded power-loss exposure at near-`Never`
    /// latency.
    Interval(Duration),
    /// Never fsync (the OS decides; fastest).
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(100))
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::default()),
            _ => match s.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval {ms:?} (milliseconds)")),
                None => Err(format!(
                    "unknown fsync policy {s:?} (expected always | interval[:MS] | never)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => f.write_str("never"),
        }
    }
}

/// Where journal bytes land: `Write` plus a durability barrier. The
/// real media is a [`File`] (fsync via `sync_data`); tests use
/// `Vec<u8>`, and [`FaultyJournal`] wraps either with seeded faults.
pub trait JournalMedia: Write + Send {
    /// Flushes written bytes through to the device (fsync).
    ///
    /// # Errors
    ///
    /// Propagates the underlying fsync failure.
    fn sync(&mut self) -> io::Result<()>;
}

impl JournalMedia for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl JournalMedia for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Journal configuration: where state lives and how durable it is.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding `journal.ttsv` and the `clean` marker
    /// (created if absent). One server per directory.
    pub state_dir: PathBuf,
    /// When appended records are fsynced.
    pub fsync: FsyncPolicy,
    /// Compaction never triggers below this many journal records
    /// (avoids rewriting a tiny journal over and over).
    pub compact_min_records: u64,
    /// Seeded fault injection for the journal media (chaos tests).
    pub faults: Option<JournalFaultPlan>,
}

impl PersistConfig {
    /// A default-durability config journaling under `state_dir`.
    #[must_use]
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            state_dir: state_dir.into(),
            fsync: FsyncPolicy::default(),
            compact_min_records: 1024,
            faults: None,
        }
    }

    /// Replaces the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Replaces the compaction floor.
    #[must_use]
    pub fn with_compact_min_records(mut self, records: u64) -> Self {
        self.compact_min_records = records;
        self
    }

    /// Wraps the journal media in a seeded [`FaultyJournal`].
    #[must_use]
    pub fn with_faults(mut self, config: JournalFaultConfig, seed: u64) -> Self {
        self.faults = Some(JournalFaultPlan { config, seed });
        self
    }

    /// The journal file this config reads and appends.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.state_dir.join("journal.ttsv")
    }

    /// The clean-shutdown marker file.
    #[must_use]
    pub fn marker_path(&self) -> PathBuf {
        self.state_dir.join("clean")
    }

    fn wrap_media(&self, file: File) -> Box<dyn JournalMedia> {
        match self.faults {
            Some(plan) => Box::new(FaultyJournal::new(file, plan.config, plan.seed)),
            None => Box::new(file),
        }
    }
}

/// One session rebuilt from the journal at boot.
#[derive(Debug)]
pub struct RecoveredSession {
    /// Its original id (preserved across the restart).
    pub id: u64,
    /// Its spec with every journaled power update re-applied — hand it
    /// to the engine and the next report is bitwise what the
    /// never-crashed server would have answered.
    pub spec: SessionSpec,
}

/// What [`Journal::open`] replayed, in least-recently-touched-first
/// order (so inserting in order rebuilds the LRU recency too).
#[derive(Debug)]
pub struct Recovery {
    /// The surviving sessions (deleted/evicted ones stay gone).
    pub sessions: Vec<RecoveredSession>,
    /// The next session id to allocate.
    pub next_id: u64,
    /// How many journal records the scan replayed.
    pub records_replayed: u64,
    /// Whether the previous run wrote a matching clean-shutdown marker.
    pub clean_shutdown: bool,
}

/// A session's journaled history after folding deletes/evictions.
#[derive(Debug, Default)]
struct FoldedSession {
    register: Vec<u8>,
    updates: Vec<Vec<u8>>,
}

/// The fold of a record sequence: live sessions in touch order, plus
/// the id watermark.
#[derive(Debug, Default)]
struct Folded {
    /// Touch-ordered (least recent first), like an LRU's iteration.
    sessions: Vec<(u64, FoldedSession)>,
    next_id: u64,
}

fn fold(records: &[Record]) -> Folded {
    let mut folded = Folded {
        sessions: Vec::new(),
        next_id: 1,
    };
    let position = |sessions: &[(u64, FoldedSession)], id: u64| {
        sessions.iter().position(|(sid, _)| *sid == id)
    };
    for record in records {
        match record {
            Record::Register { id, body } => {
                if let Some(i) = position(&folded.sessions, *id) {
                    folded.sessions.remove(i);
                }
                folded.sessions.push((
                    *id,
                    FoldedSession {
                        register: body.clone(),
                        updates: Vec::new(),
                    },
                ));
                folded.next_id = folded.next_id.max(id + 1);
            }
            Record::PowerUpdate { id, body } => {
                // An update for an unknown id can only come from silent
                // corruption that beat the CRC; drop it rather than
                // fail the whole recovery.
                if let Some(i) = position(&folded.sessions, *id) {
                    let mut entry = folded.sessions.remove(i);
                    entry.1.updates.push(body.clone());
                    folded.sessions.push(entry);
                }
                folded.next_id = folded.next_id.max(id + 1);
            }
            Record::Delete { id } | Record::Evict { id } => {
                if let Some(i) = position(&folded.sessions, *id) {
                    folded.sessions.remove(i);
                }
                folded.next_id = folded.next_id.max(id + 1);
            }
            Record::Meta { next_id } => folded.next_id = folded.next_id.max(*next_id),
        }
    }
    folded
}

/// Replays one folded session through the wire parsers, returning the
/// rebuilt spec and the set of planes its updates touched.
fn rebuild_spec(folded: &FoldedSession) -> Result<(SessionSpec, BTreeSet<usize>), String> {
    let mut spec = protocol::parse_register(&folded.register).map_err(|e| e.to_string())?;
    let mut planes = BTreeSet::new();
    for body in &folded.updates {
        let (plane, map) =
            protocol::parse_power_update(body, &spec.plan).map_err(|e| e.to_string())?;
        spec.plan
            .update_power_map(plane, map)
            .map_err(|e| e.to_string())?;
        planes.insert(plane);
    }
    Ok((spec, planes))
}

/// Live-append bookkeeping: everything the compaction trigger needs
/// without re-reading the file.
struct Inner {
    media: Box<dyn JournalMedia>,
    /// Journal length in bytes (what a clean marker records).
    file_len: u64,
    /// Records in the file, live or dead.
    total_records: u64,
    /// Live sessions → planes their surviving updates touch; a
    /// session's live-record count is `1 + planes.len()` after a fold.
    sessions: HashMap<u64, BTreeSet<usize>>,
    last_sync: Instant,
}

impl Inner {
    fn live_records(&self) -> u64 {
        self.sessions
            .values()
            .map(|planes| 1 + planes.len() as u64)
            .sum::<u64>()
            + 1 // the Meta watermark a fold always writes
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("file_len", &self.file_len)
            .field("total_records", &self.total_records)
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

/// Mutex poisoning must not take the journal down: a panic elsewhere
/// while holding the lock leaves bookkeeping merely stale, and every
/// append re-validates against it loosely.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The per-server write-ahead journal. All methods are `&self` and
/// thread-safe; the server shares one behind an `Arc`.
///
/// Appends never return errors to the serving path: any journal
/// write/fsync failure permanently degrades this journal (persistence
/// off, [`PersistStats::add_write_error`] counted, warning printed) and
/// the request that triggered it still succeeds.
#[derive(Debug)]
pub struct Journal {
    config: PersistConfig,
    stats: Arc<PersistStats>,
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Journal {
    /// Opens (or creates) the journal under `config.state_dir` and
    /// replays it.
    ///
    /// A torn tail is truncated away; a missing or corrupt header
    /// restarts the journal empty. Sessions whose bodies no longer
    /// parse are dropped with a warning rather than failing the boot.
    ///
    /// # Errors
    ///
    /// Only environmental failures surface here (directory or file
    /// cannot be created/read) — the caller treats that as "persistence
    /// unavailable", not a fatal server error.
    pub fn open(
        config: PersistConfig,
        stats: Arc<PersistStats>,
    ) -> io::Result<(Journal, Recovery)> {
        fs::create_dir_all(&config.state_dir)?;
        let path = config.journal_path();
        let existing = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let marker_len: Option<u64> = fs::read_to_string(config.marker_path())
            .ok()
            .and_then(|s| s.trim().parse().ok());
        // A marker only ever describes the *previous* run; consume it so
        // a crash after this boot is never mistaken for a clean one.
        let _ = fs::remove_file(config.marker_path());

        let (records, valid_len) = scan(&existing);
        let clean_shutdown =
            marker_len == Some(existing.len() as u64) && valid_len == existing.len();

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = if valid_len == 0 {
            // New file, or an unrecognizable header: start fresh.
            file.set_len(0)?;
            file.write_all(&header_bytes())?;
            HEADER_LEN as u64
        } else {
            // Truncate any torn tail so appends extend a valid prefix.
            file.set_len(valid_len as u64)?;
            valid_len as u64
        };
        file.seek(SeekFrom::End(0))?;

        let folded = fold(&records);
        let mut sessions = Vec::new();
        let mut bookkeeping = HashMap::new();
        for (id, folded_session) in &folded.sessions {
            match rebuild_spec(folded_session) {
                Ok((spec, planes)) => {
                    bookkeeping.insert(*id, planes);
                    sessions.push(RecoveredSession { id: *id, spec });
                }
                Err(e) => eprintln!(
                    "ttsv-serve: journal recovery dropping session {id} (body no longer parses: {e})"
                ),
            }
        }
        stats.add_replayed(records.len() as u64);
        stats.add_recovered_sessions(sessions.len() as u64);

        let recovery = Recovery {
            sessions,
            next_id: folded.next_id,
            records_replayed: records.len() as u64,
            clean_shutdown,
        };
        let journal = Journal {
            inner: Mutex::new(Inner {
                media: config.wrap_media(file),
                file_len,
                total_records: records.len() as u64,
                sessions: bookkeeping,
                last_sync: Instant::now(),
            }),
            config,
            stats,
            enabled: AtomicBool::new(true),
        };
        Ok((journal, recovery))
    }

    /// Whether persistence is still live (false after the journal has
    /// degraded on a write/fsync error).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Journals an accepted registration.
    pub fn record_register(&self, id: u64, body: &[u8]) {
        self.append(
            Record::Register {
                id,
                body: body.to_vec(),
            },
            None,
        );
    }

    /// Journals an applied power update (`plane` is the index the
    /// server already parsed from `body`).
    pub fn record_update(&self, id: u64, plane: usize, body: &[u8]) {
        self.append(
            Record::PowerUpdate {
                id,
                body: body.to_vec(),
            },
            Some(plane),
        );
    }

    /// Journals an explicit deletion.
    pub fn record_delete(&self, id: u64) {
        self.append(Record::Delete { id }, None);
    }

    /// Journals an LRU-eviction tombstone.
    pub fn record_evict(&self, id: u64) {
        self.append(Record::Evict { id }, None);
    }

    fn append(&self, record: Record, plane: Option<usize>) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = lock(&self.inner);
        if !self.is_enabled() {
            return; // degraded while we waited for the lock
        }
        let frame = record.encode();
        if let Err(e) = inner.media.write_all(&frame) {
            self.degrade("write", &e);
            return;
        }
        inner.file_len += frame.len() as u64;
        inner.total_records += 1;
        match (&record, plane) {
            (Record::Register { id, .. }, _) => {
                inner.sessions.insert(*id, BTreeSet::new());
            }
            (Record::PowerUpdate { id, .. }, Some(plane)) => {
                if let Some(planes) = inner.sessions.get_mut(id) {
                    planes.insert(plane);
                }
            }
            (Record::Delete { id } | Record::Evict { id }, _) => {
                inner.sessions.remove(id);
            }
            _ => {}
        }
        self.stats.add_written(1, frame.len() as u64);

        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(interval) => inner.last_sync.elapsed() >= interval,
            FsyncPolicy::Never => false,
        };
        if due {
            if let Err(e) = inner.media.sync() {
                self.degrade("fsync", &e);
                return;
            }
            inner.last_sync = Instant::now();
        }

        if inner.total_records >= self.config.compact_min_records
            && inner.live_records() * 2 < inner.total_records
        {
            if let Err(e) = self.compact_locked(&mut inner) {
                self.degrade("compaction", &e);
            }
        }
    }

    /// Folds the journal file into its live snapshot (see the module
    /// docs). Runs with the journal lock held and touches nothing else.
    fn compact_locked(&self, inner: &mut Inner) -> io::Result<()> {
        inner.media.flush()?;
        let bytes = fs::read(self.config.journal_path())?;
        let (records, _) = scan(&bytes);
        let folded = fold(&records);

        let mut out = header_bytes();
        let mut out_records: u64 = 1;
        out.extend_from_slice(
            &Record::Meta {
                next_id: folded.next_id,
            }
            .encode(),
        );
        let mut bookkeeping = HashMap::new();
        for (id, folded_session) in &folded.sessions {
            match rebuild_spec(folded_session) {
                Ok((spec, planes)) => {
                    out.extend_from_slice(
                        &Record::Register {
                            id: *id,
                            body: folded_session.register.clone(),
                        }
                        .encode(),
                    );
                    out_records += 1;
                    for &plane in &planes {
                        let body =
                            protocol::render_power_body_full(plane, &spec.plan.plane_maps()[plane]);
                        out.extend_from_slice(
                            &Record::PowerUpdate {
                                id: *id,
                                body: body.into_bytes(),
                            }
                            .encode(),
                        );
                        out_records += 1;
                    }
                    bookkeeping.insert(*id, planes);
                }
                Err(e) => eprintln!(
                    "ttsv-serve: journal compaction dropping session {id} (body no longer parses: {e})"
                ),
            }
        }

        let tmp = self.config.state_dir.join("journal.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.config.journal_path())?;
        sync_dir(&self.config.state_dir);

        let file = OpenOptions::new()
            .append(true)
            .open(self.config.journal_path())?;
        inner.media = self.config.wrap_media(file);
        inner.file_len = out.len() as u64;
        inner.total_records = out_records;
        inner.sessions = bookkeeping;
        inner.last_sync = Instant::now();
        self.stats.add_compaction();
        Ok(())
    }

    /// Graceful-shutdown hook: compact, sync, and write the clean
    /// marker. Crash simulation (`Server::abort`) skips this — that is
    /// the whole difference between the two shutdowns.
    pub fn clean_shutdown(&self) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = lock(&self.inner);
        if !self.is_enabled() {
            return;
        }
        if let Err(e) = self.compact_locked(&mut inner) {
            self.degrade("shutdown compaction", &e);
            return;
        }
        if let Err(e) = inner.media.sync() {
            self.degrade("shutdown fsync", &e);
            return;
        }
        let write_marker = || -> io::Result<()> {
            let mut f = File::create(self.config.marker_path())?;
            write!(f, "{}", inner.file_len)?;
            f.sync_data()
        };
        if let Err(e) = write_marker() {
            self.degrade("shutdown marker", &e);
        }
    }

    fn degrade(&self, what: &str, err: &io::Error) {
        self.enabled.store(false, Ordering::Relaxed);
        self.stats.add_write_error();
        eprintln!(
            "ttsv-serve: persistence disabled after journal {what} error: {err} \
             (serving continues unjournaled)"
        );
    }
}

/// Best-effort directory fsync so a compaction rename is durable; not
/// portable everywhere, so failures are ignored.
fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    {
        let _ = File::open(dir).and_then(|d| d.sync_all());
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn test_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ttsv-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn register_body(nx: usize, ny: usize) -> Vec<u8> {
        let tiles = nx * ny;
        #[allow(clippy::cast_precision_loss)]
        let planes: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                (0..tiles)
                    .map(|i| 0.5 + 0.01 * i as f64 + 0.1 * j as f64)
                    .collect()
            })
            .collect();
        protocol::render_register_body(nx, ny, &planes, 0.005).into_bytes()
    }

    fn plan_bits(spec: &SessionSpec) -> Vec<Vec<u64>> {
        spec.plan
            .plane_maps()
            .iter()
            .map(|m| m.tiles().iter().map(|w| w.as_watts().to_bits()).collect())
            .collect()
    }

    #[test]
    fn crc32_matches_the_ieee_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn fsync_policy_parses_and_round_trips() {
        assert_eq!("always".parse(), Ok(FsyncPolicy::Always));
        assert_eq!("never".parse(), Ok(FsyncPolicy::Never));
        assert_eq!(
            "interval:250".parse(),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!("interval".parse(), Ok(FsyncPolicy::default()));
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::Interval(Duration::from_millis(7)),
        ] {
            assert_eq!(policy.to_string().parse(), Ok(policy));
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("interval:often".parse::<FsyncPolicy>().is_err());
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Meta { next_id: 7 },
            Record::Register {
                id: 1,
                body: register_body(2, 2),
            },
            Record::PowerUpdate {
                id: 1,
                body: b"{\"plane\":0,\"updates\":[[0,0,9.5]]}".to_vec(),
            },
            Record::Register {
                id: 2,
                body: register_body(2, 2),
            },
            Record::Delete { id: 2 },
            Record::Evict { id: 1 },
        ]
    }

    #[test]
    fn encode_scan_round_trips_every_record_kind() {
        let records = sample_records();
        let mut bytes = header_bytes();
        for r in &records {
            bytes.extend_from_slice(&r.encode());
        }
        let (scanned, valid) = scan(&bytes);
        assert_eq!(scanned, records);
        assert_eq!(valid, bytes.len());
    }

    #[test]
    fn scan_stops_cleanly_at_every_truncation_and_on_corruption() {
        let records = sample_records();
        let mut bytes = header_bytes();
        let mut boundaries = vec![HEADER_LEN];
        for r in &records {
            bytes.extend_from_slice(&r.encode());
            boundaries.push(bytes.len());
        }
        // Truncation at every byte offset: the scan never panics and
        // yields exactly the records whose frames fit entirely.
        for cut in 0..=bytes.len() {
            let (scanned, valid) = scan(&bytes[..cut]);
            let expect =
                boundaries.iter().filter(|b| **b <= cut).count() - usize::from(cut >= HEADER_LEN);
            if cut < HEADER_LEN {
                assert_eq!((scanned.len(), valid), (0, 0), "cut={cut}");
            } else {
                assert_eq!(scanned.len(), expect, "cut={cut}");
                assert_eq!(valid, boundaries[expect], "cut={cut}");
                assert_eq!(scanned.as_slice(), &records[..expect], "cut={cut}");
            }
        }
        // A flipped payload byte kills that record and the rest of the
        // prefix, but not the records before it.
        let mut corrupt = bytes.clone();
        corrupt[boundaries[2] + 12] ^= 0x40;
        let (scanned, valid) = scan(&corrupt);
        assert_eq!(scanned.as_slice(), &records[..2]);
        assert_eq!(valid, boundaries[2]);
        // A corrupt header means an empty journal, not a panic.
        let mut bad_header = bytes;
        bad_header[3] ^= 0xFF;
        assert_eq!(scan(&bad_header), (Vec::new(), 0));
    }

    #[test]
    fn fold_applies_deletes_evictions_and_meta() {
        let folded = fold(&sample_records());
        assert!(folded.sessions.is_empty(), "both sessions ended dead");
        assert_eq!(folded.next_id, 7, "meta watermark wins");

        let folded = fold(&[
            Record::Register {
                id: 3,
                body: register_body(2, 2),
            },
            Record::PowerUpdate {
                id: 3,
                body: b"{\"plane\":1,\"updates\":[[1,0,2.5]]}".to_vec(),
            },
        ]);
        assert_eq!(folded.sessions.len(), 1);
        assert_eq!(folded.sessions[0].0, 3);
        assert_eq!(folded.sessions[0].1.updates.len(), 1);
        assert_eq!(folded.next_id, 4, "max id + 1 without a meta record");
    }

    #[test]
    fn journal_round_trips_sessions_across_reopen() {
        let dir = test_dir("reopen");
        let config = PersistConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let expected = {
            let (journal, recovery) =
                Journal::open(config.clone(), Arc::new(PersistStats::default())).unwrap();
            assert!(recovery.sessions.is_empty());
            assert!(!recovery.clean_shutdown);
            assert_eq!(recovery.next_id, 1);
            journal.record_register(1, &register_body(3, 2));
            journal.record_register(2, &register_body(3, 2));
            let update = b"{\"plane\":2,\"updates\":[[1,1,4.25]]}";
            journal.record_update(1, 2, update);
            journal.record_delete(2);
            // Ground truth: replay by hand.
            let mut spec = protocol::parse_register(&register_body(3, 2)).unwrap();
            let (plane, map) = protocol::parse_power_update(update, &spec.plan).unwrap();
            spec.plan.update_power_map(plane, map).unwrap();
            plan_bits(&spec)
            // journal dropped without clean_shutdown: a crash.
        };

        let stats = Arc::new(PersistStats::default());
        let (journal, recovery) = Journal::open(config.clone(), Arc::clone(&stats)).unwrap();
        assert!(!recovery.clean_shutdown, "no marker was written");
        assert_eq!(recovery.records_replayed, 4);
        assert_eq!(recovery.next_id, 3);
        assert_eq!(recovery.sessions.len(), 1, "session 2 was deleted");
        assert_eq!(recovery.sessions[0].id, 1);
        assert_eq!(plan_bits(&recovery.sessions[0].spec), expected);
        assert_eq!(stats.snapshot().records_replayed, 4);
        assert_eq!(stats.snapshot().recovered_sessions, 1);

        // Clean shutdown compacts and leaves a marker the next open
        // recognizes.
        journal.clean_shutdown();
        let (_, recovery) = Journal::open(config, Arc::new(PersistStats::default())).unwrap();
        assert!(recovery.clean_shutdown);
        assert_eq!(recovery.next_id, 3, "meta record preserves the watermark");
        assert_eq!(recovery.sessions.len(), 1);
        assert_eq!(plan_bits(&recovery.sessions[0].spec), expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_truncates_a_torn_tail_and_keeps_appending() {
        let dir = test_dir("torn");
        let config = PersistConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        {
            let (journal, _) =
                Journal::open(config.clone(), Arc::new(PersistStats::default())).unwrap();
            journal.record_register(1, &register_body(2, 2));
            journal.record_register(2, &register_body(2, 2));
        }
        // Tear the last record mid-frame.
        let bytes = fs::read(config.journal_path()).unwrap();
        let torn_len = bytes.len() - 7;
        let f = OpenOptions::new()
            .write(true)
            .open(config.journal_path())
            .unwrap();
        f.set_len(torn_len as u64).unwrap();
        drop(f);

        let (journal, recovery) =
            Journal::open(config.clone(), Arc::new(PersistStats::default())).unwrap();
        assert_eq!(
            recovery.sessions.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![1],
            "the torn register never happened"
        );
        // The tail was truncated, so an append after the torn record
        // still yields a fully valid journal.
        journal.record_register(9, &register_body(2, 2));
        drop(journal);
        let bytes = fs::read(config.journal_path()).unwrap();
        let (records, valid) = scan(&bytes);
        assert_eq!(valid, bytes.len(), "no garbage survived the reopen");
        assert_eq!(records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_dead_records_and_preserves_bits() {
        let dir = test_dir("compact");
        let config = PersistConfig::new(&dir)
            .with_fsync(FsyncPolicy::Never)
            .with_compact_min_records(8);
        let stats = Arc::new(PersistStats::default());
        let (journal, _) = Journal::open(config.clone(), Arc::clone(&stats)).unwrap();
        journal.record_register(1, &register_body(3, 3));
        let mut spec = protocol::parse_register(&register_body(3, 3)).unwrap();
        for round in 0..12 {
            let body = format!(
                "{{\"plane\":0,\"updates\":[[{},{},{}.5]]}}",
                round % 3,
                round % 3,
                round
            );
            journal.record_update(1, 0, body.as_bytes());
            let (plane, map) = protocol::parse_power_update(body.as_bytes(), &spec.plan).unwrap();
            spec.plan.update_power_map(plane, map).unwrap();
        }
        assert!(
            stats.snapshot().compactions >= 1,
            "12 same-plane updates against a floor of 8 must have compacted"
        );
        drop(journal);

        let (_, recovery) = Journal::open(config, Arc::new(PersistStats::default())).unwrap();
        assert_eq!(recovery.sessions.len(), 1);
        assert_eq!(plan_bits(&recovery.sessions[0].spec), plan_bits(&spec));
        assert!(
            recovery.records_replayed <= 4,
            "a folded session is register + one update per touched plane, got {}",
            recovery.records_replayed
        );
        assert_eq!(recovery.next_id, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_faults_degrade_without_panicking() {
        let dir = test_dir("degrade");
        let stats = Arc::new(PersistStats::default());
        let config = PersistConfig::new(&dir).with_faults(
            JournalFaultConfig {
                write_error: 1.0,
                ..JournalFaultConfig::default()
            },
            42,
        );
        let (journal, _) = Journal::open(config, Arc::clone(&stats)).unwrap();
        assert!(journal.is_enabled());
        journal.record_register(1, &register_body(2, 2));
        assert!(!journal.is_enabled(), "first failed append degrades");
        assert_eq!(stats.snapshot().write_errors, 1);
        // Further appends are silent no-ops, and clean shutdown neither
        // panics nor writes a marker.
        journal.record_update(1, 0, b"{\"plane\":0,\"tiles\":[1,1,1,1]}");
        assert_eq!(stats.snapshot().write_errors, 1);
        journal.clean_shutdown();
        assert!(
            !journal.config.marker_path().exists(),
            "a degraded journal must not claim a clean shutdown"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_writes_are_absorbed_losslessly() {
        let dir = test_dir("short");
        let config = PersistConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_faults(
                JournalFaultConfig {
                    short_write: 0.8,
                    ..JournalFaultConfig::default()
                },
                7,
            );
        let (journal, _) =
            Journal::open(config.clone(), Arc::new(PersistStats::default())).unwrap();
        journal.record_register(1, &register_body(2, 2));
        journal.record_update(1, 1, b"{\"plane\":1,\"updates\":[[0,1,3.5]]}");
        assert!(journal.is_enabled(), "short writes are not errors");
        drop(journal);
        let (_, recovery) = Journal::open(config, Arc::new(PersistStats::default())).unwrap();
        assert_eq!(recovery.sessions.len(), 1);
        assert_eq!(recovery.records_replayed, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
