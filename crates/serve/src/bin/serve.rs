//! The `serve` binary: run the thermal session server until killed.
//!
//! ```text
//! cargo run --release -p ttsv-serve --bin serve -- \
//!     [--addr 127.0.0.1:7071] [--workers N] [--event-loops N] \
//!     [--max-sessions N] [--session-shards N] [--max-tiles N] \
//!     [--queue-capacity N] [--max-connections N] [--max-pending-updates N] \
//!     [--request-deadline-ms MS] [--write-timeout-ms MS] [--readiness poll|sweep] \
//!     [--state-dir PATH] [--fsync always|interval[:MS]|never]
//! ```
//!
//! `--state-dir` turns on durable sessions: a write-ahead journal under
//! PATH records every registration, power update, deletion, and
//! eviction, and a restart pointed at the same PATH recovers the
//! sessions (see `docs/PROTOCOL.md`, "Durability & recovery"). `--fsync`
//! picks the durability-vs-latency point (default `interval:100`).
//!
//! Prints exactly one `listening on <addr>` line to stdout once the
//! socket is bound (port 0 resolves to the real ephemeral port), which
//! is how `bench-client --spawn` discovers the address.

use std::time::Duration;

use ttsv_serve::persist::FsyncPolicy;
use ttsv_serve::server::{Server, ServerConfig};

// `--readiness` defaults to poll on unix, sweep elsewhere; the
// `TTSV_SERVE_READINESS` environment variable overrides the default and
// the flag overrides both (see `ServerConfig::readiness`).

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--event-loops N] \
         [--max-sessions N] [--session-shards N] [--max-tiles N] \
         [--queue-capacity N] [--max-connections N] [--max-pending-updates N] \
         [--request-deadline-ms MS] [--write-timeout-ms MS] [--readiness poll|sweep] \
         [--state-dir PATH] [--fsync always|interval[:MS]|never]"
    );
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(value) = args.next() else {
        eprintln!("{flag} needs a value");
        usage();
    };
    let Ok(parsed) = value.parse() else {
        eprintln!("{flag} {value:?} is not valid");
        usage();
    };
    parsed
}

fn main() {
    let mut addr = "127.0.0.1:7071".to_string();
    let mut config = ServerConfig::default();
    let mut state_dir: Option<String> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag(&mut args, "--addr"),
            "--state-dir" => state_dir = Some(parse_flag(&mut args, "--state-dir")),
            "--fsync" => fsync = Some(parse_flag(&mut args, "--fsync")),
            "--workers" => config = config.with_workers(parse_flag(&mut args, "--workers")),
            "--event-loops" => {
                config = config.with_event_loops(parse_flag(&mut args, "--event-loops"));
            }
            "--max-sessions" => {
                config = config.with_max_sessions(parse_flag(&mut args, "--max-sessions"));
            }
            "--session-shards" => {
                config = config.with_session_shards(parse_flag(&mut args, "--session-shards"));
            }
            "--max-tiles" => config = config.with_max_tiles(parse_flag(&mut args, "--max-tiles")),
            "--queue-capacity" => {
                config = config.with_queue_capacity(parse_flag(&mut args, "--queue-capacity"));
            }
            "--max-connections" => {
                config = config.with_max_connections(parse_flag(&mut args, "--max-connections"));
            }
            "--max-pending-updates" => {
                config =
                    config.with_max_pending_updates(parse_flag(&mut args, "--max-pending-updates"));
            }
            "--request-deadline-ms" => {
                config = config.with_request_deadline(Duration::from_millis(parse_flag(
                    &mut args,
                    "--request-deadline-ms",
                )));
            }
            "--write-timeout-ms" => {
                config = config.with_write_timeout(Duration::from_millis(parse_flag(
                    &mut args,
                    "--write-timeout-ms",
                )));
            }
            "--readiness" => {
                config = config.with_readiness(parse_flag(&mut args, "--readiness"));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    // `--state-dir` beats the `TTSV_SERVE_STATE_DIR` env default (which
    // `ServerConfig::default` may already have filled in); `--fsync`
    // tunes whichever persistence config ends up active.
    if let Some(dir) = state_dir {
        config = config.with_state_dir(dir);
    }
    if let Some(policy) = fsync {
        match config.persist.take() {
            Some(persist) => config.persist = Some(persist.with_fsync(policy)),
            None => {
                eprintln!("--fsync needs --state-dir (or TTSV_SERVE_STATE_DIR) to apply to");
                usage();
            }
        }
    }
    let server = match Server::start(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    // Flush eagerly: a spawning bench-client reads this line through a pipe.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
