//! The `bench-client` binary: replay a deterministic power-trace
//! workload against a running (or freshly spawned) `serve` process and
//! report cold-session vs warm-delta latency.
//!
//! ```text
//! cargo run --release -p ttsv-serve --bin bench-client -- \
//!     --spawn [--trace SESSIONS:ROUNDS:GRID] [--check] [--chaos SEED] \
//!     [--readiness poll|sweep] [--state-dir PATH]
//! cargo run --release -p ttsv-serve --bin bench-client -- \
//!     --addr 127.0.0.1:7071 [--sessions N | --fanout N] [--rounds N] \
//!     [--grid N] [--delta]
//! cargo run --release -p ttsv-serve --bin bench-client -- \
//!     --addr 127.0.0.1:7071 --probe SESSION_ID
//! ```
//!
//! `--spawn` launches the sibling `serve` binary on an ephemeral port
//! (with its connection and queue caps raised so wide fan-outs are not
//! shed) and kills it when the replay finishes, so CI needs no fixed
//! port and no external server. `--check` exits nonzero unless
//! warm-delta p50 latency beats cold-session p99 by at least 5× — the
//! serving-layer acceptance gate: if a *typical* two-tile delta costs
//! anywhere near a full registration, the session cache is broken. (The
//! warm p50, not p99: a warm round that lands a never-seen tile/watt
//! scenario legitimately pays a cache miss, and under concurrency the
//! warm tail also carries queueing — neither says anything about
//! whether the cache pays for itself.) `--chaos SEED`
//! replays the same trace through a seeded lossless fault wrapper (short
//! reads and writes, delays) — every response must still come back
//! correct, which is the transport-robustness smoke CI runs. `--fanout N`
//! replays N concurrent sessions and switches what `--check` gates:
//! under wide fan-out every request's latency is queueing-dominated
//! (32 clients share a few workers), so the cold/warm cache ratio
//! compresses toward the service-time ratio and stops being the
//! interesting invariant. Instead the fan-out check proves the server
//! actually *multiplexed*: the summed per-request latencies must exceed
//! the replay's wall-clock by at least 4× (requests overlapped in
//! flight), which fails if connections are served one at a time — and
//! the replay itself already fails on any shed or wrong response.
//! `--delta` switches the power rounds from `?full=1` full reports to
//! the server's default delta responses. `--readiness` (only with
//! `--spawn`) forwards the readiness backend to the spawned server, so
//! CI can smoke both the `poll(2)` backend and the sweep fallback.
//! `--state-dir` (only with `--spawn`) forwards the durable-session
//! state directory, so the replay exercises the journaled hot path.
//! `--probe ID` (only with `--addr`) is the restart-recovery smoke:
//! instead of replaying a trace it asserts `GET /sessions/ID` answers
//! 200 *and* `/metrics` reports at least one recovered session — run it
//! against a server restarted from a killed predecessor's state dir.
//!
//! A connection the server refuses or resets exits 1 with a diagnostic
//! naming the address, instead of an opaque panic.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use ttsv_serve::client::{percentile_ns, run_trace, TraceConfig};

/// The `--check` gate: cold-session p99 must exceed 5× warm-delta p50.
const WARM_SPEEDUP_GATE: u128 = 5;

/// The `--fanout --check` gate: summed per-request latencies must exceed
/// wall-clock elapsed by this factor, proving requests overlapped in
/// flight instead of being served one connection at a time.
const FANOUT_OVERLAP_GATE: u128 = 4;

fn usage() -> ! {
    eprintln!(
        "usage: bench-client (--addr HOST:PORT | --spawn) \
         [--trace SESSIONS:ROUNDS:GRID] [--sessions N | --fanout N] [--rounds N] \
         [--grid N] [--delta] [--check] [--chaos SEED] [--readiness poll|sweep] \
         [--state-dir PATH] [--probe SESSION_ID]"
    );
    std::process::exit(2);
}

/// The `--probe ID` recovery smoke: the session must answer 200 and the
/// server must report at least one recovered session in `/metrics`.
/// Exits the process with a diagnostic on any miss.
fn probe_recovered_session(addr: &str, id: u64) -> ! {
    let mut client = ttsv_serve::Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("{}", explain_trace_error(addr, &e));
        std::process::exit(1);
    });
    let (status, body) = client
        .request("GET", &format!("/sessions/{id}"), "")
        .unwrap_or_else(|e| {
            eprintln!("{}", explain_trace_error(addr, &e));
            std::process::exit(1);
        });
    if status != 200 {
        eprintln!("--probe FAILED: GET /sessions/{id} answered {status}, not 200: {body}");
        std::process::exit(1);
    }
    let (status, metrics) = client.request("GET", "/metrics", "").unwrap_or_else(|e| {
        eprintln!("{}", explain_trace_error(addr, &e));
        std::process::exit(1);
    });
    if status != 200 {
        eprintln!("--probe FAILED: GET /metrics answered {status}");
        std::process::exit(1);
    }
    // No JSON dependency here: the persistence block's field is flat.
    let recovered: u64 = metrics
        .split_once("\"recovered_sessions\":")
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or_else(|| {
            eprintln!("--probe FAILED: /metrics has no recovered_sessions field: {metrics}");
            std::process::exit(1);
        });
    if recovered == 0 {
        eprintln!("--probe FAILED: session {id} answered but recovered_sessions is 0 — the server did not actually replay a journal");
        std::process::exit(1);
    }
    println!("--probe: session {id} recovered ({recovered} sessions replayed from the journal)");
    std::process::exit(0);
}

/// Turns the usual connection-level failures into actionable one-liners;
/// everything else is reported verbatim.
fn explain_trace_error(addr: &str, e: &std::io::Error) -> String {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::ConnectionRefused => format!(
            "could not connect to {addr}: connection refused — is the serve process running \
             and listening there? (start one with `serve --addr {addr}` or use --spawn)"
        ),
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            format!(
                "connection to {addr} dropped mid-replay ({e}) — the server died, shed the \
                 connection, or a proxy between us closed it"
            )
        }
        _ => format!("trace replay against {addr} failed: {e}"),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(value) = args.next() else {
        eprintln!("{flag} needs a value");
        usage();
    };
    let Ok(parsed) = value.parse() else {
        eprintln!("{flag} {value:?} is not valid");
        usage();
    };
    parsed
}

/// Spawns the sibling `serve` binary on an ephemeral port and reads the
/// bound address from its `listening on <addr>` stdout line.
fn spawn_server(readiness: Option<&str>, state_dir: Option<&str>) -> (Child, String) {
    let serve = std::env::current_exe()
        .expect("current exe path")
        .with_file_name(if cfg!(windows) { "serve.exe" } else { "serve" });
    let mut command = Command::new(&serve);
    // Raised caps: a wide --fanout replay must multiplex, not shed.
    command.args([
        "--addr",
        "127.0.0.1:0",
        "--max-connections",
        "256",
        "--queue-capacity",
        "256",
        "--max-sessions",
        "256",
    ]);
    if let Some(readiness) = readiness {
        command.args(["--readiness", readiness]);
    }
    if let Some(state_dir) = state_dir {
        command.args(["--state-dir", state_dir]);
    }
    let mut child = command
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", serve.display()));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read serve stdout");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner {line:?}"))
        .to_string();
    (child, addr)
}

fn main() {
    let mut addr: Option<String> = None;
    let mut spawn = false;
    let mut check = false;
    let mut fanout = false;
    let mut readiness: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut probe: Option<u64> = None;
    let mut config = TraceConfig::default();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_flag(&mut args, "--addr")),
            "--spawn" => spawn = true,
            "--state-dir" => state_dir = Some(parse_flag(&mut args, "--state-dir")),
            "--probe" => probe = Some(parse_flag(&mut args, "--probe")),
            "--check" => check = true,
            "--sessions" => config.sessions = parse_flag(&mut args, "--sessions"),
            "--fanout" => {
                config.sessions = parse_flag(&mut args, "--fanout");
                fanout = true;
            }
            "--rounds" => config.rounds = parse_flag(&mut args, "--rounds"),
            "--grid" => config.grid = parse_flag(&mut args, "--grid"),
            "--delta" => config.full_reports = false,
            "--chaos" => config.chaos = Some(parse_flag(&mut args, "--chaos")),
            "--readiness" => {
                // Validate here (same names the server accepts), so a
                // typo fails fast instead of inside the spawned child.
                let value: String = parse_flag(&mut args, "--readiness");
                if value.parse::<ttsv_serve::ReadinessBackend>().is_err() {
                    eprintln!("--readiness {value:?} is not \"poll\" or \"sweep\"");
                    usage();
                }
                readiness = Some(value);
            }
            "--trace" => {
                let spec: String = parse_flag(&mut args, "--trace");
                let parts: Vec<&str> = spec.split(':').collect();
                match (
                    parts.first().and_then(|s| s.parse().ok()),
                    parts.get(1).and_then(|s| s.parse().ok()),
                    parts.get(2).and_then(|s| s.parse().ok()),
                ) {
                    (Some(s), Some(r), Some(g)) if parts.len() == 3 => {
                        config = TraceConfig {
                            sessions: s,
                            rounds: r,
                            grid: g,
                            ..config
                        };
                    }
                    _ => {
                        eprintln!("--trace {spec:?} is not SESSIONS:ROUNDS:GRID");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if config.sessions == 0 || config.rounds == 0 || config.grid == 0 {
        eprintln!("trace needs at least one session, round, and tile");
        usage();
    }

    if readiness.is_some() && !spawn {
        eprintln!("--readiness only makes sense with --spawn (it configures the spawned server)");
        usage();
    }
    if state_dir.is_some() && !spawn {
        eprintln!("--state-dir only makes sense with --spawn (it configures the spawned server)");
        usage();
    }
    if let Some(id) = probe {
        // The recovery smoke targets an already-restarted server; a
        // freshly spawned one by definition recovered nothing.
        let Some(addr) = addr else {
            eprintln!("--probe needs --addr (point it at the restarted server)");
            usage();
        };
        if spawn {
            eprintln!("--probe and --spawn are mutually exclusive");
            usage();
        }
        probe_recovered_session(&addr, id);
    }

    let mut child = None;
    let addr = match (addr, spawn) {
        (Some(addr), false) => addr,
        (None, true) => {
            let (spawned, addr) = spawn_server(readiness.as_deref(), state_dir.as_deref());
            child = Some(spawned);
            addr
        }
        _ => usage(),
    };

    let outcome = run_trace(&addr, config);
    if let Some(mut child) = child {
        let _ = child.kill();
        let _ = child.wait();
    }
    let outcome = outcome.unwrap_or_else(|e| {
        eprintln!("{}", explain_trace_error(&addr, &e));
        std::process::exit(1);
    });

    let cold_p99 = percentile_ns(&outcome.cold_ns, 0.99);
    let warm_p99 = percentile_ns(&outcome.warm_ns, 0.99);
    let warm_p50 = percentile_ns(&outcome.warm_ns, 0.50);
    println!(
        "{{\"trace\":{{\"sessions\":{},\"rounds\":{},\"grid\":{}}},\"requests\":{},\
         \"requests_per_sec\":{:.1},\"cold_session_p99_ns\":{cold_p99},\
         \"warm_delta_p50_ns\":{warm_p50},\"warm_delta_p99_ns\":{warm_p99}}}",
        config.sessions,
        config.rounds,
        config.grid,
        outcome.requests(),
        outcome.requests_per_sec(),
    );

    if check && fanout {
        let summed: u128 = outcome.cold_ns.iter().chain(outcome.warm_ns.iter()).sum();
        let elapsed = outcome.elapsed.as_nanos().max(1);
        if summed >= FANOUT_OVERLAP_GATE * elapsed {
            println!(
                "--check: {:.1}x request-latency overlap across {} connections (gate: {FANOUT_OVERLAP_GATE}x)",
                summed as f64 / elapsed as f64,
                config.sessions
            );
        } else {
            eprintln!(
                "--check FAILED: summed request latency {summed} ns < {FANOUT_OVERLAP_GATE}x \
                 wall-clock {elapsed} ns — connections were served serially, not multiplexed"
            );
            std::process::exit(1);
        }
    } else if check {
        if cold_p99 >= WARM_SPEEDUP_GATE * warm_p50 {
            println!(
                "--check: warm-delta p50 is {:.1}x faster than cold-session p99 (gate: {WARM_SPEEDUP_GATE}x)",
                cold_p99 as f64 / warm_p50.max(1) as f64
            );
        } else {
            eprintln!(
                "--check FAILED: cold p99 {cold_p99} ns < {WARM_SPEEDUP_GATE}x warm p50 {warm_p50} ns \
                 — the session cache is not paying for itself"
            );
            std::process::exit(1);
        }
    }
}
