//! A minimal blocking keep-alive HTTP/1.1 client plus the deterministic
//! power-trace replay the bench client and CI smoke test share.
//!
//! The client exists so the integration suite and `bench-client` can
//! exercise the server over real sockets with zero external
//! dependencies. The trace is fully deterministic (no RNG): session `s`
//! registers a gradient power map scaled by `s`, then each round patches
//! a couple of tiles with values that cycle through a small set — so a
//! replay is reproducible byte-for-byte and the warm rounds genuinely
//! hit the engine's scenario cache, which is the behavior the
//! cold-vs-warm latency gate measures. Power rounds replay either the
//! full-report wire format (`?full=1`, the default here, comparable
//! across bench history) or the server's default delta responses.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::faults::{FaultConfig, FaultyStream};
use crate::protocol::render_register_body;

/// What a [`Client`] talks through: a plain socket or a fault-injecting
/// wrapper around one.
trait Transport: Read + Write + Send {}

impl<T: Read + Write + Send> Transport for T {}

/// How a [`Client`] retries a failed request. The policy is safe for
/// non-idempotent requests by construction — see [`Client::request`]
/// for exactly which failures are eligible.
///
/// The default client retries nothing ([`RetryPolicy::none`]); opt in
/// with [`Client::with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = never retry).
    pub max_retries: u32,
    /// First backoff; doubles per retry (bounded exponential).
    pub base_backoff: Duration,
    /// Backoff ceiling — also clamps a server-sent `Retry-After`, so a
    /// test (or an impatient caller) can bound the worst-case stall.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Never retry (the default client behavior).
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry number `attempt` (0-based):
    /// `base · 2^attempt`, capped at `max_backoff`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    /// Up to 4 retries, 10 ms doubling backoff capped at 1 s.
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// A fully parsed response, including the envelope fields retry logic
/// needs (`Retry-After`, `Connection: close`).
struct RawResponse {
    status: u16,
    body: String,
    retry_after: Option<u64>,
    close: bool,
}

/// What went wrong with one request attempt, split by whether a retry
/// could double-apply it.
enum AttemptError {
    /// Failed before a single request byte reached the transport — the
    /// server cannot have seen the request, so a retry is safe even for
    /// a non-idempotent update.
    Fresh(io::Error),
    /// Failed after at least one byte was written (or mid-response):
    /// the server may have applied the request, so the error must
    /// surface instead of being blindly retried.
    Committed(io::Error),
}

/// One reusable keep-alive connection.
pub struct Client {
    stream: Box<dyn Transport>,
    buf: Vec<u8>,
    addr: String,
    faults: Option<(FaultConfig, u64)>,
    retry: RetryPolicy,
    reconnects: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("buffered", &self.buf.len())
            .field("retry", &self.retry)
            .field("reconnects", &self.reconnects)
            .finish()
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7071"`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(Self {
            stream: Box::new(Self::socket(addr)?),
            buf: Vec::new(),
            addr: addr.to_string(),
            faults: None,
            retry: RetryPolicy::none(),
            reconnects: 0,
        })
    }

    /// Connects like [`Client::connect`] but routes all traffic through a
    /// seeded [`FaultyStream`], so a replay can rehearse short
    /// reads/writes and injected socket errors deterministically.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_faults(addr: &str, config: FaultConfig, seed: u64) -> io::Result<Self> {
        Ok(Self {
            stream: Box::new(FaultyStream::new(Self::socket(addr)?, config, seed)),
            buf: Vec::new(),
            addr: addr.to_string(),
            faults: Some((config, seed)),
            retry: RetryPolicy::none(),
            reconnects: 0,
        })
    }

    /// Enables retries under `policy` (the default retries nothing).
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Connections re-established by the retry logic so far.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn socket(addr: &str) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        // A server that stops reading must fail the request, not wedge
        // the client forever.
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(stream)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.reconnects += 1;
        self.buf.clear();
        self.stream = match self.faults {
            // A fresh connection gets a derived sub-seed so the fault
            // schedule stays deterministic but does not replay the exact
            // storm that just killed us.
            Some((config, seed)) => Box::new(FaultyStream::new(
                Self::socket(&self.addr)?,
                config,
                seed.wrapping_add(self.reconnects.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )),
            None => Box::new(Self::socket(&self.addr)?),
        };
        Ok(())
    }

    /// Sends one request and reads the response, returning
    /// `(status, body)`. The connection stays usable afterwards.
    ///
    /// With a [`RetryPolicy`] installed, two — and only two — failure
    /// shapes are retried, both safe for non-idempotent updates:
    ///
    /// * a transport error **before any request byte was written**
    ///   (e.g. the server reset a stale keep-alive connection): the
    ///   client backs off, reconnects, and resends;
    /// * a **503/429** response: the protocol guarantees the request
    ///   was *not* applied, so the client honors `Retry-After` (clamped
    ///   to `max_backoff`, exponential backoff when absent) and
    ///   resends, reconnecting first if the server said
    ///   `Connection: close`.
    ///
    /// A failure after even one request byte is on the wire is never
    /// retried — the server may have applied a half-sent update — and
    /// surfaces as the error it was.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failure or a malformed response, or
    /// when the retry budget is exhausted.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let wire = format!(
            "{method} {path} HTTP/1.1\r\nhost: ttsv\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut attempt: u32 = 0;
        loop {
            let retries_left = attempt < self.retry.max_retries;
            match self.try_request(wire.as_bytes()) {
                Ok(response) => {
                    if (response.status == 503 || response.status == 429) && retries_left {
                        let wait = response
                            .retry_after
                            .map_or_else(|| self.retry.backoff(attempt), Duration::from_secs)
                            .min(self.retry.max_backoff);
                        std::thread::sleep(wait);
                        if response.close {
                            self.reconnect()?;
                        }
                        attempt += 1;
                        continue;
                    }
                    return Ok((response.status, response.body));
                }
                Err(AttemptError::Fresh(_)) if retries_left => {
                    std::thread::sleep(self.retry.backoff(attempt));
                    self.reconnect()?;
                    attempt += 1;
                }
                Err(AttemptError::Fresh(e) | AttemptError::Committed(e)) => return Err(e),
            }
        }
    }

    /// One request attempt: a counting write loop (so a failure knows
    /// whether any byte went out) followed by the response read.
    fn try_request(&mut self, wire: &[u8]) -> Result<RawResponse, AttemptError> {
        let mut written = 0usize;
        let classify = |written: usize, e: io::Error| {
            if written == 0 {
                AttemptError::Fresh(e)
            } else {
                AttemptError::Committed(e)
            }
        };
        while written < wire.len() {
            match self.stream.write(&wire[written..]) {
                Ok(0) => {
                    return Err(classify(
                        written,
                        io::Error::new(io::ErrorKind::WriteZero, "transport accepted no bytes"),
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(classify(written, e)),
            }
        }
        self.read_response().map_err(AttemptError::Committed)
    }

    fn read_response(&mut self) -> io::Result<RawResponse> {
        let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => return Err(malformed("connection closed mid-response")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| malformed("non-UTF-8 response head"))?;
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed("malformed status line"))?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut close = false;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .parse()
                        .map_err(|_| malformed("malformed content-length"))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.parse().ok();
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.eq_ignore_ascii_case("close");
                }
            }
        }
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => return Err(malformed("connection closed mid-body")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = String::from_utf8(self.buf[body_start..body_start + content_length].to_vec())
            .map_err(|_| malformed("non-UTF-8 response body"))?;
        self.buf.drain(..body_start + content_length);
        Ok(RawResponse {
            status,
            body,
            retry_after,
            close,
        })
    }

    /// A client over an arbitrary transport, for unit-testing the retry
    /// classification without a socket.
    #[cfg(test)]
    fn over_transport(stream: Box<dyn Transport>, retry: RetryPolicy) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            addr: String::new(),
            faults: None,
            retry,
            reconnects: 0,
        }
    }
}

/// Shape of a deterministic replay: `sessions` clients, each registering
/// a `grid × grid` floorplan and streaming `rounds` power deltas.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Concurrent sessions to register.
    pub sessions: usize,
    /// Power-delta rounds per session.
    pub rounds: usize,
    /// Tiles per side of each session's floorplan.
    pub grid: usize,
    /// When set, replay through a seeded *lossless* [`FaultyStream`]
    /// (short reads/writes and delays, no injected errors): every
    /// response must still come back correct, just over a mangled
    /// transport. Each session derives its own sub-seed.
    pub chaos: Option<u64>,
    /// When set, power updates request `?full=1` (the complete
    /// `ChipReport` per round, the pre-delta wire format) instead of the
    /// default delta responses. Defaults to `true` so latency numbers
    /// stay comparable across bench history; flip it off to measure the
    /// delta wire format.
    pub full_reports: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sessions: 4,
            rounds: 25,
            grid: 12,
            chaos: None,
            full_reports: true,
        }
    }
}

/// Latencies gathered by a replay, split by request kind.
#[derive(Debug, Clone, Default)]
pub struct TraceOutcome {
    /// Cold-session registration latencies (ns), one per session.
    pub cold_ns: Vec<u128>,
    /// Warm power-delta latencies (ns), `sessions × rounds` of them.
    pub warm_ns: Vec<u128>,
    /// Total wall-clock of the replay.
    pub elapsed: Duration,
}

impl TraceOutcome {
    /// Total requests the replay issued.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.cold_ns.len() + self.warm_ns.len()
    }

    /// Sustained requests per second over the replay.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let n = self.requests() as f64;
        n / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Nearest-rank percentile of `samples` (not required to be sorted).
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn percentile_ns(samples: &[u128], q: f64) -> u128 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The registration body session `s` sends: three planes of a gradient
/// map (every tile distinct) scaled per session, so no two sessions
/// share cache entries, plus a per-session via density and the paper's
/// deep B(1000) model — registration genuinely pays a fresh ladder
/// factorization, which is the "cold" the cold-vs-warm gate prices.
#[must_use]
pub fn trace_register_body(grid: usize, session: usize) -> String {
    let tiles = grid * grid;
    #[allow(clippy::cast_precision_loss)]
    let scale = 1.0 + session as f64 * 0.01;
    #[allow(clippy::cast_precision_loss)]
    let planes: Vec<Vec<f64>> = [70.0, 7.0, 7.0]
        .iter()
        .map(|&total| {
            (0..tiles)
                .map(|i| scale * (total / tiles as f64) * (0.5 + i as f64 / tiles as f64))
                .collect()
        })
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let density = 0.005 + session as f64 * 1e-5;
    let body = render_register_body(grid, grid, &planes, density);
    format!("{},\"segments\":[10,1000]}}", &body[..body.len() - 1])
}

/// The power-delta body session `s` sends in `round`: patches two tiles
/// with watt values cycling through five levels.
#[must_use]
pub fn trace_power_body(grid: usize, session: usize, round: usize) -> String {
    let tiles = grid * grid;
    let t1 = (round * 7 + session * 3) % tiles;
    let t2 = (round * 13 + session * 5 + 1) % tiles;
    #[allow(clippy::cast_precision_loss)]
    let watts = |t: usize| 0.05 + 0.01 * (((round + session + t) % 5) as f64);
    format!(
        "{{\"plane\":0,\"updates\":[[{},{},{}],[{},{},{}]]}}",
        t1 % grid,
        t1 / grid,
        watts(t1),
        t2 % grid,
        t2 / grid,
        watts(t2)
    )
}

/// Replays the trace against a running server, one thread per session,
/// and gathers per-request latencies.
///
/// # Errors
///
/// Propagates the first socket or protocol failure any session hit.
pub fn run_trace(addr: &str, config: TraceConfig) -> io::Result<TraceOutcome> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for s in 0..config.sessions {
        let addr = addr.to_string();
        handles.push(std::thread::spawn(
            move || -> io::Result<(u128, Vec<u128>)> {
                let mut client = match config.chaos {
                    Some(seed) => Client::connect_with_faults(
                        &addr,
                        FaultConfig::lossless(),
                        seed.wrapping_add((s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    )?,
                    None => Client::connect(&addr)?,
                };
                let bad = |status: u16, body: &str| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("session {s}: unexpected status {status}: {body}"),
                    )
                };
                let t = Instant::now();
                let (status, body) =
                    client.request("POST", "/sessions", &trace_register_body(config.grid, s))?;
                let cold = t.elapsed().as_nanos();
                if status != 201 {
                    return Err(bad(status, &body));
                }
                let id = body
                    .split_once("\"session\":")
                    .and_then(|(_, rest)| {
                        rest.split(|c: char| !c.is_ascii_digit())
                            .next()?
                            .parse::<u64>()
                            .ok()
                    })
                    .ok_or_else(|| bad(status, &body))?;
                let power_path = if config.full_reports {
                    format!("/sessions/{id}/power?full=1")
                } else {
                    format!("/sessions/{id}/power")
                };
                let mut warm = Vec::with_capacity(config.rounds);
                for round in 0..config.rounds {
                    let t = Instant::now();
                    let (status, body) = client.request(
                        "POST",
                        &power_path,
                        &trace_power_body(config.grid, s, round),
                    )?;
                    warm.push(t.elapsed().as_nanos());
                    if status != 200 {
                        return Err(bad(status, &body));
                    }
                }
                Ok((cold, warm))
            },
        ));
    }
    let mut outcome = TraceOutcome::default();
    for handle in handles {
        let (cold, warm) = handle
            .join()
            .map_err(|_| io::Error::other("trace session thread panicked"))??;
        outcome.cold_ns.push(cold);
        outcome.warm_ns.extend(warm);
    }
    outcome.elapsed = started.elapsed();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn half_sent_requests_are_never_retried() {
        // A transport that accepts 5 bytes, then resets. The retry
        // policy has budget, but a half-sent non-idempotent request
        // must surface the error instead of resending.
        struct HalfDeadTransport {
            write_calls: Arc<AtomicUsize>,
        }
        impl Read for HalfDeadTransport {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
        }
        impl Write for HalfDeadTransport {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                match self.write_calls.fetch_add(1, Ordering::Relaxed) {
                    0 => Ok(buf.len().min(5)),
                    _ => Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "reset mid-send",
                    )),
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let write_calls = Arc::new(AtomicUsize::new(0));
        let mut client = Client::over_transport(
            Box::new(HalfDeadTransport {
                write_calls: Arc::clone(&write_calls),
            }),
            RetryPolicy::default(),
        );
        let err = client
            .request("POST", "/sessions/1/power", "{\"plane\":0,\"tiles\":[1]}")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(
            write_calls.load(Ordering::Relaxed),
            2,
            "5 bytes, the reset, and nothing more — no blind retry"
        );
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn overload_responses_are_retried_on_the_same_connection() {
        // Scripted transport: a keep-alive 503 with Retry-After, then a
        // 200. The client must eat the 503, honor the (clamped) wait,
        // and resend without surfacing an error.
        struct Scripted {
            responses: Vec<Vec<u8>>,
            requests_sent: Arc<AtomicUsize>,
        }
        impl Read for Scripted {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.responses.is_empty() {
                    return Ok(0);
                }
                let next = self.responses.remove(0);
                buf[..next.len()].copy_from_slice(&next);
                Ok(next.len())
            }
        }
        impl Write for Scripted {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if buf.ends_with(b"}") {
                    self.requests_sent.fetch_add(1, Ordering::Relaxed);
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let requests_sent = Arc::new(AtomicUsize::new(0));
        let overloaded = b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 2\r\n\
                           retry-after: 30\r\nconnection: keep-alive\r\n\r\n{}";
        let ok = b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\nconnection: keep-alive\r\n\r\ndone";
        let mut client = Client::over_transport(
            Box::new(Scripted {
                responses: vec![overloaded.to_vec(), ok.to_vec()],
                requests_sent: Arc::clone(&requests_sent),
            }),
            // max_backoff 5 ms clamps the server's 30 s Retry-After, so
            // this test proves the clamp by finishing at all.
            RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
            },
        );
        let started = Instant::now();
        let (status, body) = client.request("POST", "/sessions", "{}").unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!((status, body.as_str()), (200, "done"));
        assert_eq!(requests_sent.load(Ordering::Relaxed), 2);
        assert_eq!(client.reconnects(), 0, "keep-alive 503 reuses the socket");
    }

    #[test]
    fn retry_backoff_is_bounded_exponential() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(70),
        };
        let got: Vec<u64> = (0..5)
            .map(|a| policy.backoff(a).as_millis() as u64)
            .collect();
        assert_eq!(got, [10, 20, 40, 70, 70]);
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile_ns(&samples, 0.5), 50);
        assert_eq!(percentile_ns(&samples, 0.99), 99);
        assert_eq!(percentile_ns(&samples, 1.0), 100);
        assert_eq!(percentile_ns(&[42], 0.99), 42);
    }

    #[test]
    fn trace_bodies_are_deterministic_and_in_grid() {
        assert_eq!(
            trace_register_body(4, 2),
            trace_register_body(4, 2),
            "replays must be reproducible"
        );
        assert_ne!(trace_register_body(4, 1), trace_register_body(4, 2));
        for round in 0..50 {
            let body = trace_power_body(4, 1, round);
            let spec = crate::protocol::parse_register(trace_register_body(4, 1).as_bytes())
                .expect("trace register body is valid");
            crate::protocol::parse_power_update(body.as_bytes(), &spec.plan)
                .expect("trace power body is valid");
        }
    }
}
