//! Deterministic, seeded fault injection for the serving stack.
//!
//! Overload and partial failure are the steady state of a long-running
//! deployment, so the chaos suite (`tests/serve_chaos.rs`) needs to
//! *reproduce* them on demand — the same seed must produce the same
//! storm on every run. Everything here is std-only and driven by a
//! [`SplitMix64`] stream:
//!
//! * [`FaultyStream`] wraps any `Read + Write` transport and injects
//!   **short reads** (a read delivers a single byte), **short writes**
//!   (a write accepts a single byte), **hard I/O errors** (a rotating
//!   set of connection-shaped [`std::io::ErrorKind`]s), and **delays**,
//!   each with an independent seeded probability. The *lossless* faults
//!   (short reads/writes, delays) re-frame the byte stream without
//!   dropping a byte — a correct peer must produce bitwise-identical
//!   results under them, which is exactly the invariant the chaos suite
//!   pins.
//! * [`ServerFaults`] is the server-side hook block:
//!   [`Server`](crate::server::Server) consults it once per parsed
//!   request to decide whether that request should **panic** inside the
//!   handler (proving the `catch_unwind` boundary and poison recovery),
//!   fail its **engine evaluation** (proving the typed-500 path), or
//!   **stall** inside evaluation (holding a session busy so admission
//!   control and per-session flood limits can be exercised
//!   deterministically).
//!
//! Nothing in this module is compiled out in release builds: a fault
//! plan is plain data, `None` by default, and costs one `Option` check
//! per request when absent.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A tiny, high-quality 64-bit PRNG (Steele et al.'s splitmix64):
/// one add + three xor-shift-multiplies per draw, full 2⁶⁴ period,
/// trivially seedable — the right tool for reproducible fault
/// schedules, and std-only.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire output sequence is a function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53-bit resolution).
    pub fn next_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit
    }

    /// One Bernoulli draw: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

/// Per-operation fault probabilities for a [`FaultyStream`].
///
/// The zero default injects nothing; [`FaultConfig::lossless`] is the
/// storm the bitwise-transparency invariant runs under, and
/// [`FaultConfig::lossy`] adds hard errors for the survival invariant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability a read is truncated to a single byte.
    pub short_read: f64,
    /// Probability a write accepts only a single byte.
    pub short_write: f64,
    /// Probability a read fails with an injected connection error.
    pub read_error: f64,
    /// Probability a write fails with an injected connection error.
    pub write_error: f64,
    /// Probability an operation stalls for [`FaultConfig::delay`] first.
    pub delay_chance: f64,
    /// The injected stall length.
    pub delay: Duration,
}

impl FaultConfig {
    /// Aggressive re-framing and stalls, but never a lost byte: short
    /// reads/writes at 30% and 1 ms delays at 5%. Any correct peer must
    /// behave bitwise-identically under this config.
    #[must_use]
    pub fn lossless() -> Self {
        Self {
            short_read: 0.3,
            short_write: 0.3,
            delay_chance: 0.05,
            delay: Duration::from_millis(1),
            ..Self::default()
        }
    }

    /// Everything in [`FaultConfig::lossless`] plus hard connection
    /// errors at 2% per operation — connections die mid-request; the
    /// server must shrug.
    #[must_use]
    pub fn lossy() -> Self {
        Self {
            read_error: 0.02,
            write_error: 0.02,
            ..Self::lossless()
        }
    }
}

/// The rotating set of connection-shaped error kinds [`FaultyStream`]
/// injects (picked by the seeded stream, so a schedule covers all of
/// them over time).
const INJECTED_KINDS: [io::ErrorKind; 3] = [
    io::ErrorKind::ConnectionReset,
    io::ErrorKind::ConnectionAborted,
    io::ErrorKind::BrokenPipe,
];

/// A `Read + Write` wrapper that injects seeded faults in front of the
/// inner transport. Deterministic: the same seed, config, and sequence
/// of operations produces the same faults.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    rng: SplitMix64,
    config: FaultConfig,
    injected_errors: u64,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` with the given fault schedule.
    #[must_use]
    pub fn new(inner: S, config: FaultConfig, seed: u64) -> Self {
        Self {
            inner,
            rng: SplitMix64::new(seed),
            config,
            injected_errors: 0,
        }
    }

    /// How many hard errors this wrapper has injected so far.
    #[must_use]
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn maybe_delay(&mut self) {
        if self.rng.chance(self.config.delay_chance) {
            std::thread::sleep(self.config.delay);
        }
    }

    fn injected_error(&mut self, op: &str) -> io::Error {
        self.injected_errors += 1;
        let kind = INJECTED_KINDS[(self.rng.next_u64() % INJECTED_KINDS.len() as u64) as usize];
        io::Error::new(kind, format!("injected {op} fault"))
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.maybe_delay();
        if self.rng.chance(self.config.read_error) {
            return Err(self.injected_error("read"));
        }
        if !buf.is_empty() && self.rng.chance(self.config.short_read) {
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.maybe_delay();
        if self.rng.chance(self.config.write_error) {
            return Err(self.injected_error("write"));
        }
        if !buf.is_empty() && self.rng.chance(self.config.short_write) {
            return self.inner.write(&buf[..1]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Per-operation fault probabilities for a [`FaultyJournal`].
///
/// The interesting journal failures are *partial*: a write that lands a
/// strict prefix of the record before the device errors (a torn
/// record), a write that lands nothing, an fsync that fails or stalls.
/// Each is seeded and independent, so a crash storm replays exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalFaultConfig {
    /// Probability a write accepts only a single byte (re-framing; the
    /// journal's `write_all` loop absorbs it losslessly).
    pub short_write: f64,
    /// Probability a write lands a seeded strict prefix of the buffer
    /// on the media and then fails — a torn record: bytes are on disk,
    /// but the writer sees an error.
    pub torn_write: f64,
    /// Probability a write fails with nothing landed.
    pub write_error: f64,
    /// Probability an fsync fails.
    pub sync_error: f64,
    /// A stall injected before every fsync (device latency).
    pub sync_delay: Option<Duration>,
}

/// A [`JournalFaultConfig`] plus the seed that schedules it — the unit
/// [`PersistConfig`](crate::persist::PersistConfig) carries.
#[derive(Debug, Clone, Copy)]
pub struct JournalFaultPlan {
    /// The per-operation probabilities.
    pub config: JournalFaultConfig,
    /// Seed for the fault schedule.
    pub seed: u64,
}

/// A [`JournalMedia`](crate::persist::JournalMedia) wrapper that
/// injects seeded journal faults — short writes, torn records, hard
/// write errors, failed or delayed fsyncs — in front of the real media.
#[derive(Debug)]
pub struct FaultyJournal<M> {
    inner: M,
    rng: SplitMix64,
    config: JournalFaultConfig,
}

impl<M> FaultyJournal<M> {
    /// Wraps `inner` with the given seeded fault schedule.
    #[must_use]
    pub fn new(inner: M, config: JournalFaultConfig, seed: u64) -> Self {
        Self {
            inner,
            rng: SplitMix64::new(seed),
            config,
        }
    }

    /// The wrapped media.
    pub fn get_ref(&self) -> &M {
        &self.inner
    }
}

impl<M: Write> Write for FaultyJournal<M> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.rng.chance(self.config.write_error) {
            return Err(io::Error::other("injected journal write fault"));
        }
        if buf.len() > 1 && self.rng.chance(self.config.torn_write) {
            // Land a strict prefix on the media, then report failure:
            // the on-disk journal now ends in a torn record.
            let torn = 1 + (self.rng.next_u64() % (buf.len() as u64 - 1)) as usize;
            self.inner.write_all(&buf[..torn])?;
            return Err(io::Error::other("injected torn journal write"));
        }
        if !buf.is_empty() && self.rng.chance(self.config.short_write) {
            return self.inner.write(&buf[..1]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<M: crate::persist::JournalMedia> crate::persist::JournalMedia for FaultyJournal<M> {
    fn sync(&mut self) -> io::Result<()> {
        if let Some(delay) = self.config.sync_delay {
            std::thread::sleep(delay);
        }
        if self.rng.chance(self.config.sync_error) {
            return Err(io::Error::other("injected journal fsync fault"));
        }
        self.inner.sync()
    }
}

/// What [`ServerFaults`] tells the server to do with one request.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultDirective {
    /// Panic inside the engine evaluation — for a power update that is
    /// while the per-session lock is held, so the `catch_unwind`
    /// boundary *and* poison recovery must both hold for the server to
    /// answer a typed 500 and stay healthy.
    pub panic: bool,
    /// Fail the engine evaluation with an injected error (typed 500).
    pub engine_error: bool,
    /// Stall inside the engine evaluation for this long (holds the
    /// session's serialization lock — the deterministic way to build a
    /// per-session update flood or a saturated pool in a test).
    pub engine_delay: Option<Duration>,
}

/// One scheduled fault: fires on the `ordinal`-th request the server
/// parses (1-based, across all connections).
#[derive(Debug, Clone, Copy)]
enum Planned {
    Panic(u64),
    EngineError(u64),
    EngineDelay(u64, Duration),
}

/// The server-side fault plan: a list of request ordinals that should
/// panic, fail, or stall, consulted once per parsed request.
///
/// Build one explicitly ([`ServerFaults::panic_on`] and friends) for
/// surgical tests, or seed a storm with [`ServerFaults::storm`]. The
/// plan is immutable after construction; only the request counter
/// mutates, so one `Arc<ServerFaults>` is shared by every worker.
#[derive(Debug, Default)]
pub struct ServerFaults {
    planned: Vec<Planned>,
    counter: AtomicU64,
}

impl ServerFaults {
    /// An empty plan (no faults; useful as a base for the builders).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic the `ordinal`-th parsed request (1-based).
    #[must_use]
    pub fn panic_on(mut self, ordinal: u64) -> Self {
        self.planned.push(Planned::Panic(ordinal));
        self
    }

    /// Fail the `ordinal`-th request's engine evaluation.
    #[must_use]
    pub fn engine_error_on(mut self, ordinal: u64) -> Self {
        self.planned.push(Planned::EngineError(ordinal));
        self
    }

    /// Stall the `ordinal`-th request inside its engine evaluation.
    #[must_use]
    pub fn engine_delay_on(mut self, ordinal: u64, delay: Duration) -> Self {
        self.planned.push(Planned::EngineDelay(ordinal, delay));
        self
    }

    /// A seeded storm: `panics` panic ordinals and `engine_errors`
    /// error ordinals drawn without replacement from `1..=within`.
    #[must_use]
    pub fn storm(seed: u64, panics: usize, engine_errors: usize, within: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut taken = Vec::new();
        let mut draw = |rng: &mut SplitMix64| loop {
            let ordinal = rng.next_u64() % within.max(1) + 1;
            if !taken.contains(&ordinal) {
                taken.push(ordinal);
                return ordinal;
            }
        };
        let within_usize = usize::try_from(within).unwrap_or(usize::MAX);
        let panics = panics.min(within_usize);
        let engine_errors = engine_errors.min(within_usize - panics);
        let mut plan = Self::new();
        for _ in 0..panics {
            plan = plan.panic_on(draw(&mut rng));
        }
        for _ in 0..engine_errors {
            plan = plan.engine_error_on(draw(&mut rng));
        }
        plan
    }

    /// Claims the next request ordinal and returns what (if anything)
    /// should go wrong with it. Called exactly once per parsed request.
    pub fn begin_request(&self) -> FaultDirective {
        let ordinal = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let mut directive = FaultDirective::default();
        for planned in &self.planned {
            match *planned {
                Planned::Panic(o) if o == ordinal => directive.panic = true,
                Planned::EngineError(o) if o == ordinal => directive.engine_error = true,
                Planned::EngineDelay(o, d) if o == ordinal => directive.engine_delay = Some(d),
                _ => {}
            }
        }
        directive
    }

    /// Requests the plan has seen so far.
    #[must_use]
    pub fn requests_seen(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_well_spread() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed, same stream");
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different seeds diverge");
        // Known-answer from the reference implementation (seed 1234567).
        let mut r = SplitMix64::new(1_234_567);
        assert_eq!(r.next_u64(), 6_457_827_717_110_365_317);
        // chance() respects the degenerate probabilities.
        let mut r = SplitMix64::new(7);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn lossless_faulty_stream_delivers_every_byte() {
        // Writes through a short-write-heavy wrapper, using write_all to
        // absorb the re-framing, must land byte-identically.
        let payload: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        let mut wrapped = FaultyStream::new(
            Vec::new(),
            FaultConfig {
                short_write: 0.8,
                ..FaultConfig::default()
            },
            9,
        );
        wrapped
            .write_all(&payload)
            .expect("lossless writes succeed");
        assert_eq!(wrapped.get_ref(), &payload);

        // Reads through a short-read-heavy wrapper reassemble the same
        // bytes.
        let mut reader = FaultyStream::new(
            std::io::Cursor::new(payload.clone()),
            FaultConfig {
                short_read: 0.8,
                ..FaultConfig::default()
            },
            10,
        );
        let mut got = Vec::new();
        reader
            .read_to_end(&mut got)
            .expect("lossless reads succeed");
        assert_eq!(got, payload);
        assert_eq!(reader.injected_errors(), 0);
    }

    #[test]
    fn injected_errors_are_seed_deterministic_and_typed() {
        let run = |seed: u64| -> Vec<Option<io::ErrorKind>> {
            let mut s = FaultyStream::new(
                std::io::Cursor::new(vec![0u8; 64]),
                FaultConfig {
                    read_error: 0.5,
                    ..FaultConfig::default()
                },
                seed,
            );
            (0..32)
                .map(|_| {
                    let mut b = [0u8; 4];
                    s.read(&mut b).err().map(|e| e.kind())
                })
                .collect()
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed, same fault schedule");
        assert!(
            a.iter().flatten().all(|k| INJECTED_KINDS.contains(k)),
            "only connection-shaped kinds are injected"
        );
        assert!(a.iter().any(Option::is_some), "p=0.5 over 32 ops fires");
    }

    #[test]
    fn faulty_journal_is_seeded_and_tears_strict_prefixes() {
        let cfg = JournalFaultConfig {
            torn_write: 0.6,
            ..JournalFaultConfig::default()
        };
        let run = |seed: u64| {
            let mut j = FaultyJournal::new(Vec::new(), cfg, seed);
            let outcomes: Vec<bool> = (0..16).map(|_| j.write(&[0xAB; 24]).is_ok()).collect();
            (outcomes, j.get_ref().clone())
        };
        let a = run(77);
        assert_eq!(a, run(77), "same seed, same storm");
        let (outcomes, media) = a;
        let failures = outcomes.iter().filter(|ok| !**ok).count();
        assert!(failures > 0, "p=0.6 over 16 writes fires");
        let full: usize = outcomes.iter().filter(|ok| **ok).count() * 24;
        assert!(media.len() > full, "torn writes landed strict prefixes");
        assert!(
            media.len() < full + failures * 24,
            "torn writes never landed the whole buffer"
        );
    }

    #[test]
    fn faulty_journal_injects_sync_faults() {
        use crate::persist::JournalMedia;
        let mut j = FaultyJournal::new(
            Vec::new(),
            JournalFaultConfig {
                sync_error: 1.0,
                ..JournalFaultConfig::default()
            },
            5,
        );
        j.write_all(b"ok").expect("writes unaffected");
        assert!(j.sync().is_err(), "sync fault fires");
        assert_eq!(j.get_ref(), b"ok");
    }

    #[test]
    fn server_fault_plan_fires_on_exact_ordinals() {
        let plan = ServerFaults::new()
            .panic_on(2)
            .engine_error_on(3)
            .engine_delay_on(4, Duration::from_millis(5));
        let d1 = plan.begin_request();
        assert!(!d1.panic && !d1.engine_error && d1.engine_delay.is_none());
        assert!(plan.begin_request().panic);
        assert!(plan.begin_request().engine_error);
        assert_eq!(
            plan.begin_request().engine_delay,
            Some(Duration::from_millis(5))
        );
        assert!(!plan.begin_request().panic);
        assert_eq!(plan.requests_seen(), 5);
    }

    #[test]
    fn storm_schedules_are_seeded_and_in_range() {
        let a = ServerFaults::storm(11, 3, 2, 100);
        let b = ServerFaults::storm(11, 3, 2, 100);
        let fire = |plan: &ServerFaults| -> Vec<(bool, bool)> {
            (0..100)
                .map(|_| {
                    let d = plan.begin_request();
                    (d.panic, d.engine_error)
                })
                .collect()
        };
        let fa = fire(&a);
        assert_eq!(fa, fire(&b), "same seed, same storm");
        assert_eq!(fa.iter().filter(|(p, _)| *p).count(), 3);
        assert_eq!(fa.iter().filter(|(_, e)| *e).count(), 2);
        assert_ne!(fa, fire(&ServerFaults::storm(12, 3, 2, 100)));
    }
}
