//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use ttsv_linalg::{solve_cg, BandedMatrix, CooBuilder, DenseMatrix, IterativeConfig, Tridiagonal};

/// Strategy: a well-conditioned SPD matrix built as `A = BᵀB + n·I` from a
/// random `B` with entries in [−1, 1].
fn spd_matrix(n: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = DenseMatrix::from_fn(n, n, |i, j| data[i * n + j]);
        let bt = b.transpose();
        let mut a = bt.matmul(&b).expect("square product");
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solution_satisfies_system((a, b) in spd_matrix(6).prop_flat_map(|a| (Just(a), rhs(6)))) {
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-8, "Ax={got} b={want}");
        }
    }

    #[test]
    fn lu_det_matches_transpose_det(a in spd_matrix(5)) {
        let d1 = a.lu().unwrap().det();
        let d2 = a.transpose().lu().unwrap().det();
        prop_assert!((d1 - d2).abs() <= 1e-8 * d1.abs().max(1.0));
        // SPD ⇒ positive determinant.
        prop_assert!(d1 > 0.0);
    }

    #[test]
    fn lu_inverse_roundtrips(a in spd_matrix(4)) {
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cg_matches_dense_lu((a, b) in spd_matrix(8).prop_flat_map(|a| (Just(a), rhs(8)))) {
        // Mirror the dense SPD matrix into CSR and compare solvers.
        let mut coo = CooBuilder::new(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                coo.add(i, j, a[(i, j)]);
            }
        }
        let csr = coo.to_csr();
        let x_cg = solve_cg(&csr, &b, &IterativeConfig::new(5000, 1e-12)).unwrap().solution;
        let x_lu = a.solve(&b).unwrap();
        for (cg, lu) in x_cg.iter().zip(&x_lu) {
            prop_assert!((cg - lu).abs() < 1e-6, "cg={cg} lu={lu}");
        }
    }

    #[test]
    fn tridiagonal_matches_dense(
        diag in prop::collection::vec(4.0..8.0f64, 6),
        off in prop::collection::vec(-1.5..1.5f64, 5),
        b in rhs(6),
    ) {
        let t = Tridiagonal::new(off.clone(), diag.clone(), off.clone());
        let dense = DenseMatrix::from_fn(6, 6, |i, j| {
            if i == j { diag[i] }
            else if j + 1 == i { off[j] }
            else if i + 1 == j { off[i] }
            else { 0.0 }
        });
        let x_tri = t.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_tri.iter().zip(&x_dense) {
            prop_assert!((a - d).abs() < 1e-9);
        }
    }

    #[test]
    fn banded_matches_dense(
        diag in prop::collection::vec(6.0..10.0f64, 10),
        off1 in prop::collection::vec(-1.5..1.5f64, 9),
        off2 in prop::collection::vec(-1.0..1.0f64, 8),
        b in rhs(10),
    ) {
        let mut banded = BandedMatrix::zeros(10, 2, 2);
        let mut dense = DenseMatrix::zeros(10, 10);
        for i in 0..10 {
            banded.set(i, i, diag[i]);
            dense[(i, i)] = diag[i];
        }
        for i in 0..9 {
            banded.set(i, i + 1, off1[i]);
            banded.set(i + 1, i, off1[i]);
            dense[(i, i + 1)] = off1[i];
            dense[(i + 1, i)] = off1[i];
        }
        for i in 0..8 {
            banded.set(i, i + 2, off2[i]);
            banded.set(i + 2, i, off2[i]);
            dense[(i, i + 2)] = off2[i];
            dense[(i + 2, i)] = off2[i];
        }
        let x_band = banded.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_band.iter().zip(&x_dense) {
            prop_assert!((a - d).abs() < 1e-8);
        }
    }

    #[test]
    fn csr_matvec_matches_dense(entries in prop::collection::vec((0usize..7, 0usize..7, -5.0..5.0f64), 1..40), x in rhs(7)) {
        let mut coo = CooBuilder::new(7, 7);
        let mut dense = DenseMatrix::zeros(7, 7);
        for (i, j, v) in entries {
            coo.add(i, j, v);
            dense[(i, j)] += v;
        }
        let csr = coo.to_csr();
        let y_sparse = csr.matvec(&x).unwrap();
        let y_dense = dense.matvec(&x).unwrap();
        for (s, d) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        cols in prop::collection::vec((-2.0..2.0f64, -2.0..2.0f64), 6),
        b in rhs(6),
    ) {
        // Residual of the LS solution must be orthogonal to the column space.
        let a = DenseMatrix::from_fn(6, 2, |i, j| if j == 0 { 1.0 } else { cols[i].0 + 0.1 * cols[i].1 });
        let qr = match a.qr() {
            Ok(qr) => qr,
            Err(_) => return Ok(()),
        };
        let x = match qr.solve_least_squares(&b) {
            Ok(x) => x,
            Err(_) => return Ok(()), // rank-deficient draw
        };
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        for j in 0..2 {
            let col: Vec<f64> = (0..6).map(|i| a[(i, j)]).collect();
            let d = ttsv_linalg::dot(&col, &r);
            prop_assert!(d.abs() < 1e-7, "residual not orthogonal: {d}");
        }
    }
}
