//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use ttsv_linalg::{
    solve_cg, solve_pcg, BandedMatrix, BlockTridiagonal, CooBuilder, CsrMatrix, DenseMatrix,
    IterativeConfig, MultigridConfig, MultigridPreconditioner, SsorPreconditioner, Tridiagonal,
};

/// A random finite-volume-style SPD system on an `nx × ny × nz` box:
/// 7-point stencil with harmonic-mean-like positive face conductances and
/// a Dirichlet anchor below the first layer (mirrors the Cartesian heat
/// solver's structure, including conductivity jumps).
fn random_box_matrix(dims: (usize, usize, usize), k: &[f64]) -> CsrMatrix {
    let (nx, ny, nz) = dims;
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| x + y * nx + z * nx * ny;
    let mut coo = CooBuilder::new(n, n);
    let face = |a: f64, b: f64| 2.0 * a * b / (a + b);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                if x + 1 < nx {
                    let j = idx(x + 1, y, z);
                    let g = face(k[i], k[j]);
                    coo.add(i, i, g);
                    coo.add(j, j, g);
                    coo.add(i, j, -g);
                    coo.add(j, i, -g);
                }
                if y + 1 < ny {
                    let j = idx(x, y + 1, z);
                    let g = face(k[i], k[j]);
                    coo.add(i, i, g);
                    coo.add(j, j, g);
                    coo.add(i, j, -g);
                    coo.add(j, i, -g);
                }
                if z + 1 < nz {
                    let j = idx(x, y, z + 1);
                    let g = face(k[i], k[j]);
                    coo.add(i, i, g);
                    coo.add(j, j, g);
                    coo.add(i, j, -g);
                    coo.add(j, i, -g);
                }
                if z == 0 {
                    coo.add(i, i, 2.0 * k[i]); // sink anchor
                }
            }
        }
    }
    coo.to_csr()
}

/// Strategy: box dimensions plus per-cell conductivities spanning a
/// 100 : 1 jump range (the solvers must agree across material contrast).
fn box_system() -> impl Strategy<Value = ((usize, usize, usize), Vec<f64>, Vec<f64>)> {
    (2usize..5, 2usize..5, 2usize..6).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        (
            Just((nx, ny, nz)),
            prop::collection::vec(0.1..10.0f64, n),
            prop::collection::vec(-5.0..5.0f64, n),
        )
    })
}

/// Strategy: a Model-B-shaped ladder — per-segment (bulk, fill, lateral)
/// conductances plus heat inputs and a substrate conductance.
#[allow(clippy::type_complexity)]
fn ladder_system() -> impl Strategy<Value = (Vec<(f64, f64, f64)>, Vec<f64>, f64)> {
    (2usize..41).prop_flat_map(|segs| {
        (
            prop::collection::vec((0.1..50.0f64, 0.1..50.0f64, 0.1..50.0f64), segs),
            prop::collection::vec(0.0..5.0f64, segs),
            0.1..10.0f64,
        )
    })
}

/// Strategy: a well-conditioned SPD matrix built as `A = BᵀB + n·I` from a
/// random `B` with entries in [−1, 1].
fn spd_matrix(n: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = DenseMatrix::from_fn(n, n, |i, j| data[i * n + j]);
        let bt = b.transpose();
        let mut a = bt.matmul(&b).expect("square product");
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solution_satisfies_system((a, b) in spd_matrix(6).prop_flat_map(|a| (Just(a), rhs(6)))) {
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-8, "Ax={got} b={want}");
        }
    }

    #[test]
    fn lu_det_matches_transpose_det(a in spd_matrix(5)) {
        let d1 = a.lu().unwrap().det();
        let d2 = a.transpose().lu().unwrap().det();
        prop_assert!((d1 - d2).abs() <= 1e-8 * d1.abs().max(1.0));
        // SPD ⇒ positive determinant.
        prop_assert!(d1 > 0.0);
    }

    #[test]
    fn lu_inverse_roundtrips(a in spd_matrix(4)) {
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cg_matches_dense_lu((a, b) in spd_matrix(8).prop_flat_map(|a| (Just(a), rhs(8)))) {
        // Mirror the dense SPD matrix into CSR and compare solvers.
        let mut coo = CooBuilder::new(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                coo.add(i, j, a[(i, j)]);
            }
        }
        let csr = coo.to_csr();
        let x_cg = solve_cg(&csr, &b, &IterativeConfig::new(5000, 1e-12)).unwrap().solution;
        let x_lu = a.solve(&b).unwrap();
        for (cg, lu) in x_cg.iter().zip(&x_lu) {
            prop_assert!((cg - lu).abs() < 1e-6, "cg={cg} lu={lu}");
        }
    }

    #[test]
    fn tridiagonal_matches_dense(
        diag in prop::collection::vec(4.0..8.0f64, 6),
        off in prop::collection::vec(-1.5..1.5f64, 5),
        b in rhs(6),
    ) {
        let t = Tridiagonal::new(off.clone(), diag.clone(), off.clone());
        let dense = DenseMatrix::from_fn(6, 6, |i, j| {
            if i == j { diag[i] }
            else if j + 1 == i { off[j] }
            else if i + 1 == j { off[i] }
            else { 0.0 }
        });
        let x_tri = t.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_tri.iter().zip(&x_dense) {
            prop_assert!((a - d).abs() < 1e-9);
        }
    }

    #[test]
    fn banded_matches_dense(
        diag in prop::collection::vec(6.0..10.0f64, 10),
        off1 in prop::collection::vec(-1.5..1.5f64, 9),
        off2 in prop::collection::vec(-1.0..1.0f64, 8),
        b in rhs(10),
    ) {
        let mut banded = BandedMatrix::zeros(10, 2, 2);
        let mut dense = DenseMatrix::zeros(10, 10);
        for i in 0..10 {
            banded.set(i, i, diag[i]);
            dense[(i, i)] = diag[i];
        }
        for i in 0..9 {
            banded.set(i, i + 1, off1[i]);
            banded.set(i + 1, i, off1[i]);
            dense[(i, i + 1)] = off1[i];
            dense[(i + 1, i)] = off1[i];
        }
        for i in 0..8 {
            banded.set(i, i + 2, off2[i]);
            banded.set(i + 2, i, off2[i]);
            dense[(i, i + 2)] = off2[i];
            dense[(i + 2, i)] = off2[i];
        }
        let x_band = banded.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_band.iter().zip(&x_dense) {
            prop_assert!((a - d).abs() < 1e-8);
        }
    }

    #[test]
    fn block_tridiag_and_banded_lu_agree_on_random_ladders(
        (segs, heats, g_sub) in ladder_system(),
    ) {
        // The Model B pattern: interleaved [T0, B1, V1, ...] for the
        // banded assembly, the dummy-padded block layout for the block
        // kernel. Both direct eliminations must agree to rounding.
        let n_seg = segs.len();
        let n = 1 + 2 * n_seg;
        let mut banded = BandedMatrix::zeros(n, 2, 2);
        let mut block = BlockTridiagonal::zeros(n_seg + 1);
        let mut rhs_banded = vec![0.0; n];
        let mut rhs_block = vec![0.0; 2 * (n_seg + 1)];
        banded.add(0, 0, g_sub);
        block.add(0, 0, g_sub);
        block.add(1, 1, 1.0);
        let couple_banded = |m: &mut BandedMatrix, i: usize, j: usize, g: f64| {
            m.add(i, i, g);
            m.add(j, j, g);
            if i != j {
                m.add(i, j, -g);
                m.add(j, i, -g);
            }
        };
        let couple_block = |m: &mut BlockTridiagonal, i: usize, j: usize, g: f64| {
            m.add(i, i, g);
            m.add(j, j, g);
            if i != j {
                m.add(i, j, -g);
                m.add(j, i, -g);
            }
        };
        for (s, &(gb, gf, gl)) in segs.iter().enumerate() {
            let (bulk_b, via_b) = (1 + 2 * s, 2 + 2 * s);
            let (bulk_k, via_k) = (2 * s + 2, 2 * s + 3);
            let (below_bulk_b, below_via_b) = if s == 0 { (0, 0) } else { (bulk_b - 2, via_b - 2) };
            let (below_bulk_k, below_via_k) = if s == 0 { (0, 0) } else { (bulk_k - 2, via_k - 2) };
            couple_banded(&mut banded, bulk_b, below_bulk_b, gb);
            couple_banded(&mut banded, via_b, below_via_b, gf);
            couple_banded(&mut banded, bulk_b, via_b, gl);
            couple_block(&mut block, bulk_k, below_bulk_k, gb);
            couple_block(&mut block, via_k, below_via_k, gf);
            couple_block(&mut block, bulk_k, via_k, gl);
            rhs_banded[bulk_b] = heats[s];
            rhs_block[bulk_k] = heats[s];
        }
        let x_banded = banded.solve(&rhs_banded).unwrap();
        let x_block = block.solve(&rhs_block).unwrap();
        let scale = x_banded.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        prop_assert!((x_banded[0] - x_block[0]).abs() <= 1e-9 * scale);
        for s in 0..n_seg {
            prop_assert!(
                (x_banded[1 + 2 * s] - x_block[2 * s + 2]).abs() <= 1e-9 * scale,
                "bulk {s}: {} vs {}", x_banded[1 + 2 * s], x_block[2 * s + 2]
            );
            prop_assert!(
                (x_banded[2 + 2 * s] - x_block[2 * s + 3]).abs() <= 1e-9 * scale,
                "via {s}: {} vs {}", x_banded[2 + 2 * s], x_block[2 * s + 3]
            );
        }
    }

    #[test]
    fn mg_pcg_and_ssor_pcg_and_plain_cg_agree_on_random_boxes(
        (dims, k, b) in box_system(),
    ) {
        let a = random_box_matrix(dims, &k);
        let cfg = IterativeConfig::new(50_000, 1e-11);
        let plain = solve_cg(&a, &b, &cfg).unwrap().solution;
        let ssor = solve_pcg(&a, &b, &SsorPreconditioner::new(&a, 1.5), &cfg)
            .unwrap()
            .solution;
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let mg_x = solve_pcg(&a, &b, &mg, &cfg).unwrap().solution;
        let scale = plain.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for i in 0..plain.len() {
            prop_assert!((plain[i] - ssor[i]).abs() <= 1e-6 * scale, "ssor differs at {i}");
            prop_assert!((plain[i] - mg_x[i]).abs() <= 1e-6 * scale, "multigrid differs at {i}");
        }
    }

    #[test]
    fn refreshed_hierarchy_matches_fresh_build_on_perturbed_boxes(
        (dims, k, b) in box_system(),
        scale in 0.2..5.0f64,
    ) {
        // Build the hierarchy on one coefficient field, then refresh it
        // onto a perturbed field with the same sparsity pattern: PCG under
        // the refreshed preconditioner must reach the same solution (to
        // tolerance) as under a freshly built one.
        let a1 = random_box_matrix(dims, &k);
        let k2: Vec<f64> = k
            .iter()
            .enumerate()
            .map(|(i, &v)| v * scale * (1.0 + 0.2 * ((i % 3) as f64)))
            .collect();
        let a2 = random_box_matrix(dims, &k2);
        prop_assert!(a1.same_pattern(&a2), "perturbation must keep the pattern");

        let cfg = IterativeConfig::new(50_000, 1e-11);
        let mut refreshed = MultigridPreconditioner::new(&a1, &MultigridConfig::default()).unwrap();
        refreshed.refresh(&a2).unwrap();
        let fresh = MultigridPreconditioner::new(&a2, &MultigridConfig::default()).unwrap();

        let x_refreshed = solve_pcg(&a2, &b, &refreshed, &cfg).unwrap().solution;
        let x_fresh = solve_pcg(&a2, &b, &fresh, &cfg).unwrap().solution;
        let scale_x = x_fresh.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for i in 0..x_fresh.len() {
            prop_assert!(
                (x_refreshed[i] - x_fresh[i]).abs() <= 1e-6 * scale_x,
                "refreshed hierarchy diverged at {i}: {} vs {}",
                x_refreshed[i],
                x_fresh[i]
            );
        }
    }

    #[test]
    fn refresh_is_bitwise_identical_to_a_fresh_build_on_perturbed_boxes(
        (dims, k, r) in box_system(),
        scale in 0.2..5.0f64,
    ) {
        // The flat contraction-list refresh re-runs every numeric kernel
        // in the same per-entry accumulation order as the scatter-based
        // build. Under a uniform conductivity scaling the build-time
        // pattern decisions (strength classification, aggregation) are
        // unchanged, so refreshing a hierarchy onto the scaled matrix must
        // reproduce a freshly built one bit for bit — V-cycle outputs
        // compared via `to_bits`, on both the serial and the threaded
        // sweep path.
        let a1 = random_box_matrix(dims, &k);
        let k2: Vec<f64> = k.iter().map(|&v| v * scale).collect();
        let a2 = random_box_matrix(dims, &k2);
        prop_assert!(a1.same_pattern(&a2));
        // Cover every numeric-refresh path: the plain-aggregation default
        // (single-stream sums), classic smoothed aggregation (pair lists
        // + prolongator refresh), and a truncated/capped smoothed config
        // (the rescale branch) — each serial and threaded.
        let presets = [
            MultigridConfig::default(),
            MultigridConfig::smoothed_aggregation(),
            MultigridConfig {
                prolongator_truncation: 0.15,
                prolongator_max_entries: 3,
                ..MultigridConfig::smoothed_aggregation()
            },
        ];
        for (preset, threshold) in presets
            .iter()
            .flat_map(|p| [usize::MAX, 1].map(|t| (*p, t)))
        {
            let cfg = MultigridConfig {
                parallel_threshold: threshold,
                ..preset
            };
            let fresh = MultigridPreconditioner::new(&a2, &cfg).unwrap();
            let mut refreshed = MultigridPreconditioner::new(&a1, &cfg).unwrap();
            refreshed.refresh(&a2).unwrap();
            let n = a2.rows();
            let mut z_fresh = vec![0.0; n];
            let mut z_refreshed = vec![0.0; n];
            ttsv_linalg::Preconditioner::apply(&fresh, &r, &mut z_fresh);
            ttsv_linalg::Preconditioner::apply(&refreshed, &r, &mut z_refreshed);
            for i in 0..n {
                prop_assert!(
                    z_fresh[i].to_bits() == z_refreshed[i].to_bits(),
                    "refresh diverged from fresh build at {i} ({cfg:?}): {} vs {}",
                    z_fresh[i],
                    z_refreshed[i]
                );
            }
        }
    }

    #[test]
    fn chebyshev_vcycle_reduces_energy_error_monotonically_on_random_boxes(
        (dims, k, x_star) in box_system(),
    ) {
        // The Chebyshev-smoothed V-cycle must also be an energy-norm
        // contraction (the guarantee CG preconditioning rests on).
        let a = random_box_matrix(dims, &k);
        let b = a.matvec(&x_star).unwrap();
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::chebyshev(2)).unwrap();
        let n = b.len();
        let energy = |x: &[f64]| {
            let e: Vec<f64> = x_star.iter().zip(x).map(|(s, v)| s - v).collect();
            ttsv_linalg::dot(&e, &a.matvec(&e).unwrap()).max(0.0).sqrt()
        };
        let mut x = vec![0.0; n];
        let mut prev = energy(&x);
        let floor = 1e-10 * prev.max(1e-30);
        for cycle in 0..8 {
            if prev <= floor {
                break; // already at rounding level
            }
            let ax = a.matvec(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            let mut dz = vec![0.0; n];
            ttsv_linalg::Preconditioner::apply(&mg, &r, &mut dz);
            for i in 0..n {
                x[i] += dz[i];
            }
            let now = energy(&x);
            prop_assert!(
                now < prev,
                "cycle {cycle}: Chebyshev energy error grew from {prev:.3e} to {now:.3e}"
            );
            prev = now;
        }
    }

    #[test]
    fn threaded_and_serial_vcycles_agree_on_random_boxes(
        (dims, k, r) in box_system(),
    ) {
        // Row-chunked threading must not change the V-cycle output beyond
        // reassociation-free floating point (the chunk arithmetic is
        // identical, so the agreement is in fact exact; assert 1e-12).
        let a = random_box_matrix(dims, &k);
        let n = a.rows();
        let serial_cfg = MultigridConfig {
            parallel_threshold: usize::MAX,
            ..MultigridConfig::default()
        };
        let threaded_cfg = MultigridConfig {
            parallel_threshold: 1,
            ..MultigridConfig::default()
        };
        let serial = MultigridPreconditioner::new(&a, &serial_cfg).unwrap();
        let threaded = MultigridPreconditioner::new(&a, &threaded_cfg).unwrap();
        let mut z_serial = vec![0.0; n];
        let mut z_threaded = vec![0.0; n];
        ttsv_linalg::Preconditioner::apply(&serial, &r, &mut z_serial);
        ttsv_linalg::Preconditioner::apply(&threaded, &r, &mut z_threaded);
        for i in 0..n {
            prop_assert!(
                (z_serial[i] - z_threaded[i]).abs() <= 1e-12 * z_serial[i].abs().max(1.0),
                "threaded V-cycle diverged at {i}: {} vs {}",
                z_serial[i],
                z_threaded[i]
            );
        }
    }

    #[test]
    fn vcycle_reduces_energy_error_monotonically_on_random_boxes(
        (dims, k, x_star) in box_system(),
    ) {
        // The V-cycle as a stationary iteration must contract the energy
        // norm ‖e‖_A every cycle until rounding-level convergence.
        let a = random_box_matrix(dims, &k);
        let b = a.matvec(&x_star).unwrap();
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let n = b.len();
        let energy = |x: &[f64]| {
            let e: Vec<f64> = x_star.iter().zip(x).map(|(s, v)| s - v).collect();
            ttsv_linalg::dot(&e, &a.matvec(&e).unwrap()).max(0.0).sqrt()
        };
        let mut x = vec![0.0; n];
        let mut prev = energy(&x);
        let floor = 1e-10 * prev.max(1e-30);
        for cycle in 0..8 {
            if prev <= floor {
                break; // already at rounding level
            }
            let ax = a.matvec(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            let mut dz = vec![0.0; n];
            ttsv_linalg::Preconditioner::apply(&mg, &r, &mut dz);
            for i in 0..n {
                x[i] += dz[i];
            }
            let now = energy(&x);
            prop_assert!(
                now < prev,
                "cycle {cycle}: energy error grew from {prev:.3e} to {now:.3e}"
            );
            prev = now;
        }
    }

    #[test]
    fn csr_matvec_matches_dense(entries in prop::collection::vec((0usize..7, 0usize..7, -5.0..5.0f64), 1..40), x in rhs(7)) {
        let mut coo = CooBuilder::new(7, 7);
        let mut dense = DenseMatrix::zeros(7, 7);
        for (i, j, v) in entries {
            coo.add(i, j, v);
            dense[(i, j)] += v;
        }
        let csr = coo.to_csr();
        let y_sparse = csr.matvec(&x).unwrap();
        let y_dense = dense.matvec(&x).unwrap();
        for (s, d) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        cols in prop::collection::vec((-2.0..2.0f64, -2.0..2.0f64), 6),
        b in rhs(6),
    ) {
        // Residual of the LS solution must be orthogonal to the column space.
        let a = DenseMatrix::from_fn(6, 2, |i, j| if j == 0 { 1.0 } else { cols[i].0 + 0.1 * cols[i].1 });
        let qr = match a.qr() {
            Ok(qr) => qr,
            Err(_) => return Ok(()),
        };
        let x = match qr.solve_least_squares(&b) {
            Ok(x) => x,
            Err(_) => return Ok(()), // rank-deficient draw
        };
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        for j in 0..2 {
            let col: Vec<f64> = (0..6).map(|i| a[(i, j)]).collect();
            let d = ttsv_linalg::dot(&col, &r);
            prop_assert!(d.abs() < 1e-7, "residual not orthogonal: {d}");
        }
    }
}
