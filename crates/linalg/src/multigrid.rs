//! Smoothed-aggregation multigrid for the structured finite-volume grids.
//!
//! The FEM reference solvers assemble symmetric positive-definite systems
//! on tensor-product grids — axisymmetric `(r, z)` and Cartesian
//! `(x, y, z)` — whose face conductances are wildly anisotropic (thin
//! device sheets, huge outer-ring areas, 400 : 1.4 conductivity jumps).
//! Coarsening therefore follows the *matrix*, not the index space:
//! aggregates are grown greedily along strong connections
//! (`|a_ij| ≥ θ·√(a_ii·a_jj)`), which on these grids automatically does
//! semi-coarsening along the stiff direction. The tentative
//! piecewise-constant prolongator is damped by one Jacobi sweep on the
//! strength-filtered operator (`P = (I − ω_P·D⁻¹·A_F)·P_tent`, smoothed
//! aggregation), restriction is the transpose, and every coarse operator
//! is the Galerkin product `Pᵀ·A·P` — so the whole hierarchy stays SPD.
//! Smoothing is weighted Jacobi or a degree-`d` [`ChebyshevSmoother`]
//! polynomial, applied identically before and after coarse correction so
//! one V-cycle stays a symmetric positive-definite operator: a valid
//! [`Preconditioner`] for [`solve_pcg`](crate::solve_pcg) and a convergent
//! standalone iteration (energy-norm contraction).
//!
//! # Setup amortization
//!
//! The expensive part of smoothed aggregation is the *pattern* work:
//! strength classification, aggregation, prolongator/Galerkin sparsity
//! discovery, and the transpose adjacency. All of it depends only on the
//! sparsity pattern plus the build-time strength classification, so it
//! lives in a reusable [`MultigridHierarchy`]. When the matrix values
//! change but the pattern does not (Picard re-linearization, parameter
//! sweeps over one mesh), [`MultigridHierarchy::refresh`] re-computes only
//! the numeric content — prolongator weights, Galerkin triple products on
//! the fixed sparsity, Jacobi diagonals, Chebyshev eigenvalue bounds, and
//! the coarsest dense factorization — without re-aggregating anything.
//! The triple products themselves run over per-level *flat contraction
//! lists* frozen at build time: every stored value of `T = A·P` and
//! `A_c = Pᵀ·T` carries the flat index pairs into its source value arrays,
//! so a refresh is a set of branch-free multiply-add sweeps (threaded past
//! [`MultigridConfig::parallel_threshold`]) instead of hashed scatter
//! accumulation — same bits, a fraction of the time.
//!
//! On the finest level the smoothing sweeps and residual computations are
//! row-chunked across scoped threads once the grid passes
//! [`MultigridConfig::parallel_threshold`]; every row is computed by the
//! same arithmetic regardless of the chunking, so threaded and serial
//! V-cycles produce identical results.

use std::cell::RefCell;

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::lu::LuDecomposition;
use crate::precond::Preconditioner;
use crate::sparse::CsrMatrix;
use crate::vector::norm2;

/// Which relaxation the V-cycle uses on every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgSmoother {
    /// Weighted Jacobi: `pre_smooth`/`post_smooth` sweeps damped by
    /// [`MultigridConfig::jacobi_weight`].
    Jacobi,
    /// Degree-`degree` Chebyshev polynomial smoothing targeting the upper
    /// quarter of the spectrum of `D⁻¹·A` (see [`ChebyshevSmoother`]);
    /// applied once before and once after coarse correction. Stronger than
    /// Jacobi per V-cycle on large 3-D boxes at `degree ≥ 2`.
    Chebyshev {
        /// Polynomial degree (number of matrix-vector products per
        /// application); must be at least 1.
        degree: usize,
    },
}

/// Hierarchy and smoothing knobs for [`MultigridPreconditioner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridConfig {
    /// Maximum hierarchy depth including the coarsest level.
    pub max_levels: usize,
    /// Stop coarsening once a level has at most this many unknowns; that
    /// level is factorized densely and solved exactly.
    pub coarsest_size: usize,
    /// Weighted-Jacobi sweeps before restriction (Jacobi smoother only).
    pub pre_smooth: usize,
    /// Weighted-Jacobi sweeps after prolongation (keep equal to
    /// `pre_smooth` so the V-cycle stays symmetric for CG).
    pub post_smooth: usize,
    /// Jacobi damping factor `ω ∈ (0, 1]`.
    pub jacobi_weight: f64,
    /// Prolongator damping factor `ω_P ∈ (0, 1]` for the smoothed
    /// aggregation (2/3 is the classical choice for stencils with
    /// `ρ(D⁻¹A) ≈ 2`).
    pub prolongator_weight: f64,
    /// Strength-of-connection threshold `θ ∈ [0, 1)`: `j` is a strong
    /// neighbour of `i` when `|a_ij| ≥ θ·max_{k≠i}|a_ik|`. Relative to the
    /// row maximum (not the diagonal), so every non-isolated node keeps at
    /// least one strong neighbour and coarsening can never stall.
    pub strength_threshold: f64,
    /// The relaxation scheme (default: [`MgSmoother::Jacobi`]).
    pub smoother: MgSmoother,
    /// Finest-level unknown count at which smoothing/residual sweeps start
    /// running on scoped worker threads. Each sweep spawns its own scoped
    /// threads, so threading only pays once per-sweep work dwarfs the
    /// spawn cost — measured break-even is ≈3·10⁴ unknowns on an 8-core
    /// box, hence the 2¹⁶ default. `usize::MAX` forces serial V-cycles;
    /// `1` forces threading (used by the determinism tests). The same
    /// threshold gates the flat Galerkin refresh sweeps (by pair count).
    pub parallel_threshold: usize,
    /// Smoothed-prolongator truncation threshold `τ ∈ [0, 1)`: after
    /// smoothing, row entries with `|p| < τ·max|p_row|` are dropped from
    /// the pattern (the `agg[i]` slot always stays) and the survivors are
    /// rescaled to preserve the row sum, so constants still interpolate
    /// exactly. Truncation thins `P` — and therefore both Galerkin
    /// products and every numeric refresh — at a small cost in PCG
    /// iterations. `0.0` disables it.
    pub prolongator_truncation: f64,
    /// Cap on smoothed-prolongator row width (`0` = uncapped): each row
    /// keeps its `agg[i]` slot plus the largest-magnitude entries up to
    /// the cap, then rescales to preserve the row sum. Bounds the
    /// Galerkin fill-in — and with it the numeric-refresh cost — on
    /// stencils whose smoothed rows grow wide. Magnitude *ties* at the
    /// cutoff all survive (dropping one of two equal entries would be an
    /// arbitrary choice), so a row of near-uniform weights can exceed the
    /// cap by its tie count — this is a fill-in bound in the typical
    /// case, not a hard guarantee.
    pub prolongator_max_entries: usize,
    /// How many fine levels get a *smoothed* prolongator
    /// (`P = (I − ω_P·D⁻¹·A_F)·P_tent`); deeper levels use the tentative
    /// piecewise-constant one. Smoothing below the finest level buys
    /// little convergence on these FVM stacks but inflates the coarse
    /// Galerkin operators (and therefore every numeric refresh) several
    /// fold — plain aggregation on coarse levels is the classical
    /// compromise (Notay's AGMG). `usize::MAX` smooths everywhere (the
    /// pre-PR-5 behavior); `0` is plain aggregation multigrid.
    pub smoothed_levels: usize,
}

impl Default for MultigridConfig {
    fn default() -> Self {
        Self {
            max_levels: 12,
            coarsest_size: 48,
            pre_smooth: 1,
            post_smooth: 1,
            jacobi_weight: 0.7,
            prolongator_weight: 2.0 / 3.0,
            strength_threshold: 0.25,
            smoother: MgSmoother::Jacobi,
            parallel_threshold: 65_536,
            prolongator_truncation: 0.0,
            prolongator_max_entries: 0,
            smoothed_levels: 0,
        }
    }
}

impl MultigridConfig {
    /// Classic smoothed aggregation: every level's prolongator is damped-
    /// Jacobi smoothed (the pre-PR-5 default). Roughly 2.5× fewer PCG
    /// iterations than the plain-aggregation default on the 32 k-cell
    /// box (26 vs 65), at several times the setup and numeric-refresh
    /// cost — pick it for solve-dominated workloads (the FEM reference
    /// solvers do) and keep the default for refresh-heavy amortized
    /// sweeps.
    #[must_use]
    pub fn smoothed_aggregation() -> Self {
        Self {
            smoothed_levels: usize::MAX,
            prolongator_truncation: 0.0,
            ..Self::default()
        }
    }

    /// The default configuration with Chebyshev smoothing of the given
    /// degree.
    ///
    /// Chebyshev smoothing stays **opt-in**: profiled on the 32 k-unknown
    /// Cartesian box (`mg_vcycle/*` in the committed bench JSON), a
    /// degree-3 Chebyshev V-cycle costs ≈ 2.4× a Jacobi V-cycle
    /// (3.3 ms vs 1.4 ms) while saving too few PCG iterations to pay for
    /// itself below ≈ [`CHEBYSHEV_BREAK_EVEN_UNKNOWNS`] unknowns — every
    /// grid the FEM reference currently assembles. Reach for it on boxes
    /// past that size (where its per-cycle smoothing factor wins) or when
    /// Jacobi damping needs tuning; otherwise keep the Jacobi default.
    #[must_use]
    pub fn chebyshev(degree: usize) -> Self {
        Self {
            smoother: MgSmoother::Chebyshev { degree },
            ..Self::default()
        }
    }
}

/// The measured break-even size for Chebyshev V-cycles: below ~10⁵
/// unknowns the extra matrix-vector products per cycle cost more than the
/// saved PCG iterations, so [`MgSmoother::Jacobi`] stays the default
/// everywhere and [`MultigridConfig::chebyshev`] is an explicit opt-in for
/// larger boxes (decision recorded in ROADMAP.md after profiling the
/// `mg_vcycle` benches).
pub const CHEBYSHEV_BREAK_EVEN_UNKNOWNS: usize = 100_000;

// ---------------------------------------------------------------------------
// Threaded row-chunk helpers
// ---------------------------------------------------------------------------

/// Worker count for a level of `n` unknowns under `threshold`.
fn thread_count(n: usize, threshold: usize) -> usize {
    if n < threshold.max(1) {
        return 1;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
        .min(n)
}

/// Splits `out` into `threads` contiguous chunks and runs
/// `op(first_row, chunk)` on scoped threads. Each row of `out` is written
/// by exactly the same arithmetic as in the serial case, so the result is
/// identical bit for bit regardless of `threads`.
fn par_rows<F: Fn(usize, &mut [f64]) + Sync>(out: &mut [f64], threads: usize, op: F) {
    if threads <= 1 || out.len() < 2 * threads {
        op(0, out);
        return;
    }
    let chunk = out.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, part) in out.chunks_mut(chunk).enumerate() {
            let op = &op;
            scope.spawn(move || op(ci * chunk, part));
        }
    });
}

/// `y = A·x`, row-chunked over `threads`.
fn matvec_threaded(a: &CsrMatrix, x: &[f64], y: &mut [f64], threads: usize) {
    par_rows(y, threads, |start, chunk| a.matvec_range(x, chunk, start));
}

/// `r -= A·d`, row-chunked over `threads` (fused residual update of the
/// Chebyshev recurrence — no extra matvec buffer needed).
fn residual_sub_threaded(a: &CsrMatrix, d: &[f64], r: &mut [f64], threads: usize) {
    let cols = a.col_indices();
    let vals = a.values();
    par_rows(r, threads, |start, chunk| {
        for (k, ri) in chunk.iter_mut().enumerate() {
            let (lo, hi) = a.row_range(start + k);
            let mut acc = 0.0;
            for e in lo..hi {
                acc += vals[e] * d[cols[e]];
            }
            *ri -= acc;
        }
    });
}

// ---------------------------------------------------------------------------
// Sparse setup kernels
// ---------------------------------------------------------------------------

/// A sparse operator stored by row (prolongators and intermediates); the
/// trimmed-down cousin of [`CsrMatrix`] used by the setup kernels.
#[derive(Debug, Clone, Default)]
struct RowMatrix {
    row_ptr: Vec<usize>,
    col: Vec<usize>,
    val: Vec<f64>,
    cols: usize,
}

impl RowMatrix {
    #[inline]
    fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col[lo..hi]
            .iter()
            .zip(&self.val[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// `rc = selfᵀ·r` (restriction when `self` is the prolongator).
    fn transpose_mul(&self, r: &[f64], rc: &mut [f64]) {
        rc.fill(0.0);
        for i in 0..r.len() {
            let ri = r[i];
            for (c, p) in self.row(i) {
                rc[c] += p * ri;
            }
        }
    }

    /// `z += self·zc` (prolongation).
    fn mul_add(&self, zc: &[f64], z: &mut [f64]) {
        for i in 0..z.len() {
            let mut acc = 0.0;
            for (c, p) in self.row(i) {
                acc += p * zc[c];
            }
            z[i] += acc;
        }
    }
}

/// Scatter accumulator for building sparse rows without sorting the whole
/// entry list: `mark` remembers which columns are live in the current row.
struct Scatter {
    dense: Vec<f64>,
    mark: Vec<u32>,
    stamp: u32,
    cols: Vec<usize>,
}

impl Scatter {
    fn new(n: usize) -> Self {
        Self {
            dense: vec![0.0; n],
            mark: vec![0; n],
            stamp: 0,
            cols: Vec::new(),
        }
    }

    #[inline]
    fn begin_row(&mut self) {
        self.stamp += 1;
        self.cols.clear();
    }

    #[inline]
    fn add(&mut self, col: usize, v: f64) {
        if self.mark[col] != self.stamp {
            self.mark[col] = self.stamp;
            self.dense[col] = v;
            self.cols.push(col);
        } else {
            self.dense[col] += v;
        }
    }

    /// Drains the current row into `(col, val)` pushes, columns sorted.
    fn flush(&mut self, col_out: &mut Vec<usize>, val_out: &mut Vec<f64>) {
        self.cols.sort_unstable();
        for &c in &self.cols {
            col_out.push(c);
            val_out.push(self.dense[c]);
        }
    }
}

/// Largest off-diagonal magnitude per row (the strength reference).
fn row_max_offdiag(a: &CsrMatrix) -> Vec<f64> {
    (0..a.rows())
        .map(|i| {
            a.row_entries(i)
                .filter(|&(j, _)| j != i)
                .fold(0.0f64, |m, (_, v)| m.max(v.abs()))
        })
        .collect()
}

/// Per-stored-entry strength classification: entry `e = (i, j)` is strong
/// when `j ≠ i` and `|a_ij| ≥ θ·max_{k≠i}|a_ik|`. Computed once at build
/// time and reused verbatim by every numeric refresh so the prolongator
/// pattern stays fixed.
fn strong_connections(a: &CsrMatrix, theta: f64) -> Vec<bool> {
    let row_max = row_max_offdiag(a);
    let mut strong = vec![false; a.values().len()];
    for i in 0..a.rows() {
        let (lo, hi) = a.row_range(i);
        for e in lo..hi {
            let j = a.col_indices()[e];
            let v = a.values()[e];
            strong[e] = j != i && row_max[i] > 0.0 && v.abs() >= theta * row_max[i];
        }
    }
    strong
}

/// Greedy strength-based aggregation (the classical smoothed-aggregation
/// three-pass scheme). Returns the aggregate id per unknown and the
/// aggregate count.
fn aggregate(a: &CsrMatrix, strong: &[bool]) -> (Vec<usize>, usize) {
    let n = a.rows();
    let entries = |i: usize| {
        let (lo, hi) = a.row_range(i);
        (lo..hi).map(move |e| (a.col_indices()[e], strong[e], a.values()[e]))
    };

    const UNASSIGNED: usize = usize::MAX;
    let mut agg = vec![UNASSIGNED; n];
    let mut count = 0;

    // Pass 1: a node with no aggregated strong neighbour seeds a new
    // aggregate containing its whole strong neighbourhood.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut blocked = false;
        for (j, s, _) in entries(i) {
            if s && agg[j] != UNASSIGNED {
                blocked = true;
                break;
            }
        }
        if blocked {
            continue;
        }
        agg[i] = count;
        for (j, s, _) in entries(i) {
            if s {
                agg[j] = count;
            }
        }
        count += 1;
    }

    // Pass 2: leftover nodes join the aggregate of their strongest
    // aggregated neighbour.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (j, s, v) in entries(i) {
            if s && agg[j] != UNASSIGNED {
                let w = v.abs();
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, agg[j]));
                }
            }
        }
        if let Some((_, id)) = best {
            agg[i] = id;
        }
    }

    // Pass 2b: nodes still alone (their strong neighbours were also
    // unaggregated) join their largest-magnitude assigned neighbour, strong
    // or not — this bounds the coarsening ratio away from 1.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (j, _, v) in entries(i) {
            if j != i && agg[j] != UNASSIGNED {
                let w = v.abs();
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, agg[j]));
                }
            }
        }
        if let Some((_, id)) = best {
            agg[i] = id;
        }
    }

    // Pass 3: whatever is left (isolated nodes) becomes singletons grown
    // over their still-unassigned strong neighbours.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        agg[i] = count;
        for (j, s, _) in entries(i) {
            if s && agg[j] == UNASSIGNED {
                agg[j] = count;
            }
        }
        count += 1;
    }

    (agg, count)
}

/// Builds the smoothed prolongator `P = (I − ω_P·D⁻¹·A_F)·P_tent`, where
/// `A_F` is the strength-filtered operator (weak off-diagonals lumped onto
/// the diagonal — the standard stabilization for anisotropic problems).
///
/// With `truncation > 0` the *pattern* is thinned afterwards: entries with
/// `|p| < τ·max|p_row|` are dropped (the `agg[i]` slot always survives).
/// The values left here are provisional — the caller canonicalizes them
/// through [`ProlongatorRefresh::refresh`], which also applies the
/// row-sum-preserving rescale, so build and refresh share one numeric
/// path.
#[allow(clippy::too_many_arguments)]
fn build_prolongator(
    a: &CsrMatrix,
    strong: &[bool],
    agg: &[usize],
    n_agg: usize,
    omega_p: f64,
    inv_diag: &[f64],
    truncation: f64,
    max_entries: usize,
) -> RowMatrix {
    let n = a.rows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0);
    let mut scatter = Scatter::new(n_agg);
    for i in 0..n {
        scatter.begin_row();
        // Filtered row: strong entries kept, weak ones lumped onto the
        // diagonal; then one damped Jacobi sweep applied to P_tent.
        let mut lumped_diag = 0.0;
        let (lo, hi) = a.row_range(i);
        for e in lo..hi {
            let (j, v) = (a.col_indices()[e], a.values()[e]);
            if strong[e] {
                scatter.add(agg[j], -omega_p * inv_diag[i] * v);
            } else {
                lumped_diag += v; // diagonal and weak off-diagonals
            }
        }
        scatter.add(agg[i], 1.0 - omega_p * inv_diag[i] * lumped_diag);
        let row_start = col.len();
        scatter.flush(&mut col, &mut val);
        if truncation > 0.0 || max_entries > 0 {
            let vmax = val[row_start..].iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let mut cutoff = truncation * vmax;
            if max_entries > 0 && col.len() - row_start > max_entries {
                // Cap the row width: raise the cutoff to the magnitude of
                // the `max_entries`-th largest entry (the `agg[i]` slot is
                // exempt below, so the effective width can be one more).
                let mut mags: Vec<f64> = val[row_start..].iter().map(|v| v.abs()).collect();
                let nth = mags.len() - max_entries;
                mags.select_nth_unstable_by(nth, f64::total_cmp);
                cutoff = cutoff.max(mags[nth]);
            }
            let mut keep = row_start;
            for k in row_start..col.len() {
                if col[k] == agg[i] || val[k].abs() >= cutoff {
                    col[keep] = col[k];
                    val[keep] = val[k];
                    keep += 1;
                }
            }
            col.truncate(keep);
            val.truncate(keep);
        }
        row_ptr.push(col.len());
    }
    RowMatrix {
        row_ptr,
        col,
        val,
        cols: n_agg,
    }
}

/// Flat refresh data for the smoothed prolongator, frozen at build time:
/// every stored `P` value knows the strong `A`-entry sources that feed it
/// (in row-traversal order), every fine row knows its weak/diagonal
/// sources (the lumped term) and which `P` slot is its `agg[i]` entry —
/// so a refresh is gather–multiply–add sweeps with no scatter row and no
/// per-entry strength branch.
#[derive(Debug, Clone, Default)]
struct ProlongatorRefresh {
    /// `ptr[k]..ptr[k + 1]` bounds P value `k`'s strong-source range.
    ptr: Vec<usize>,
    /// Flat indices into `a.values()`, per strong source.
    src: Vec<u32>,
    /// `lump_ptr[i]..lump_ptr[i + 1]` bounds row `i`'s weak sources
    /// (diagonal and weak off-diagonals, lumped).
    lump_ptr: Vec<usize>,
    /// Flat indices into `a.values()`, per weak source.
    lump_src: Vec<u32>,
    /// Per fine row: flat P index of the `agg[i]` (diagonal-slot) entry.
    diag_slot: Vec<u32>,
    /// Copy of the operator's row pointer (for the full-row sums the
    /// truncation rescale needs); empty when truncation is off.
    a_row_ptr: Vec<u32>,
}

impl ProlongatorRefresh {
    /// Freezes the source lists from the build-time strength/aggregation
    /// pattern. Strong connections whose destination slot was truncated
    /// away are simply absent from the lists; with `rescale` the refresh
    /// restores each row's untruncated sum afterwards.
    fn build(a: &CsrMatrix, strong: &[bool], agg: &[usize], p: &RowMatrix, rescale: bool) -> Self {
        let n = a.rows();
        let nnz_p = p.val.len();
        let strong_total = strong.iter().filter(|&&s| s).count();
        let mut ptr = vec![0usize; nnz_p + 1];
        let mut src = vec![0u32; strong_total];
        let mut lump_ptr = vec![0usize; n + 1];
        let mut lump_src = vec![0u32; strong.len() - strong_total];
        let mut pos = vec![usize::MAX; p.cols];
        let mut diag_slot = vec![0u32; n];
        let mut lump_cursor = 0;
        // Row-local two-pass (count, then place) — see
        // `build_t_contraction`. `pos` is un-stamped after each row so a
        // truncated destination reads as `usize::MAX` (skip) instead of a
        // stale slot.
        for i in 0..n {
            let (plo, phi) = (p.row_ptr[i], p.row_ptr[i + 1]);
            for k in plo..phi {
                pos[p.col[k]] = k;
            }
            diag_slot[i] = contraction_index(pos[agg[i]]);
            let (lo, hi) = a.row_range(i);
            for e in lo..hi {
                if strong[e] {
                    let dst = pos[agg[a.col_indices()[e]]];
                    if dst != usize::MAX {
                        ptr[dst + 1] += 1;
                    }
                }
            }
            for k in plo..phi {
                ptr[k + 1] += ptr[k];
            }
            for e in lo..hi {
                if strong[e] {
                    let dst = pos[agg[a.col_indices()[e]]];
                    if dst != usize::MAX {
                        src[ptr[dst]] = contraction_index(e);
                        ptr[dst] += 1;
                    }
                } else {
                    lump_src[lump_cursor] = contraction_index(e);
                    lump_cursor += 1;
                }
            }
            lump_ptr[i + 1] = lump_cursor;
            for k in plo..phi {
                pos[p.col[k]] = usize::MAX;
            }
        }
        for k in (1..=nnz_p).rev() {
            ptr[k] = ptr[k - 1];
        }
        ptr[0] = 0;
        src.truncate(ptr[nnz_p]);
        Self {
            ptr,
            src,
            lump_ptr,
            lump_src,
            diag_slot,
            a_row_ptr: if rescale {
                let mut rp: Vec<u32> = (0..n)
                    .map(|i| contraction_index(a.row_range(i).0))
                    .collect();
                rp.push(contraction_index(a.row_range(n - 1).1));
                rp
            } else {
                Vec::new()
            },
        }
    }

    /// Re-computes the prolongator values on the fixed pattern — the same
    /// per-slot accumulation order (and therefore the same bits) as the
    /// scatter-based [`build_prolongator`] numeric path, plus the
    /// truncation rescale when enabled. [`MultigridHierarchy::build`] runs
    /// this same function to canonicalize the built values, so refresh and
    /// build agree bit for bit.
    fn refresh(&self, a_vals: &[f64], inv_diag: &[f64], omega_p: f64, p: &mut RowMatrix) {
        for (i, &inv) in inv_diag.iter().enumerate() {
            let neg = -omega_p * inv;
            let (plo, phi) = (p.row_ptr[i], p.row_ptr[i + 1]);
            for k in plo..phi {
                let (lo, hi) = (self.ptr[k], self.ptr[k + 1]);
                let mut acc = 0.0;
                for &e in &self.src[lo..hi] {
                    acc += neg * a_vals[e as usize];
                }
                p.val[k] = acc;
            }
            let (llo, lhi) = (self.lump_ptr[i], self.lump_ptr[i + 1]);
            let mut lumped_diag = 0.0;
            for &e in &self.lump_src[llo..lhi] {
                lumped_diag += a_vals[e as usize];
            }
            p.val[self.diag_slot[i] as usize] += 1.0 - omega_p * inv * lumped_diag;
            if !self.a_row_ptr.is_empty() {
                // Restore the untruncated row sum: the full smoothed row
                // sums to `1 − ω_P·d_i·Σ_j a_ij` exactly (the tentative
                // row sums to one and filtering only moves mass to the
                // diagonal), so the target needs one sequential pass over
                // the operator row, not the dropped entries.
                let (alo, ahi) = (self.a_row_ptr[i] as usize, self.a_row_ptr[i + 1] as usize);
                let mut row_sum = 0.0;
                for v in &a_vals[alo..ahi] {
                    row_sum += v;
                }
                let target = 1.0 - omega_p * inv * row_sum;
                let mut kept = 0.0;
                for k in plo..phi {
                    kept += p.val[k];
                }
                if kept != 0.0 {
                    let scale = target / kept;
                    for k in plo..phi {
                        p.val[k] *= scale;
                    }
                }
            }
        }
    }
}

/// Builds `T = A·P` (pattern and values) row by row.
fn build_t(a: &CsrMatrix, p: &RowMatrix) -> RowMatrix {
    let n = a.rows();
    let mut t = RowMatrix {
        row_ptr: Vec::with_capacity(n + 1),
        col: Vec::new(),
        val: Vec::new(),
        cols: p.cols,
    };
    t.row_ptr.push(0);
    let mut scatter = Scatter::new(p.cols);
    for i in 0..n {
        scatter.begin_row();
        for (j, a_ij) in a.row_entries(i) {
            for (c, p_jc) in p.row(j) {
                scatter.add(c, a_ij * p_jc);
            }
        }
        scatter.flush(&mut t.col, &mut t.val);
        t.row_ptr.push(t.col.len());
    }
    t
}

/// A frozen contraction list for one sparse product: for every stored
/// value of the destination matrix, the flat indices of the source-value
/// pairs whose products accumulate into it, in exactly the order the
/// scatter-based build visits them. Numeric refresh of the Galerkin triple
/// product then needs no column hashing and no dense scatter row — each
/// output entry is an independent multiply-add reduction
/// `out[k] = Σ_q a_vals[src_a[q]] · b_vals[src_b[q]]`, so the sweep
/// row-chunks across scoped threads without changing a single bit.
#[derive(Debug, Clone, Default)]
struct ContractionList {
    /// `ptr[k]..ptr[k + 1]` bounds entry `k`'s pair range.
    ptr: Vec<usize>,
    /// Flat index into the left source's value array, per pair.
    src_a: Vec<u32>,
    /// Flat index into the right source's value array, per pair.
    src_b: Vec<u32>,
    /// Total pairs across the list.
    pair_count: usize,
}

impl ContractionList {
    /// Total source pairs (the sweep's work measure, used to decide
    /// whether threading pays).
    fn pairs(&self) -> usize {
        self.pair_count
    }

    /// Recomputes every destination value from the frozen pair lists.
    /// Contributions to one entry run in list order, so the output is
    /// identical bit for bit regardless of `threads`; entries with an
    /// empty pair range (the mirrored lower triangle of a symmetric
    /// product) come out as `0.0` and are filled by the caller's mirror
    /// pass. The pair slices iterate by `zip` so the index streams stay
    /// bounds-check-free — only the two value gathers are checked.
    fn contract(&self, a_vals: &[f64], b_vals: &[f64], out: &mut [f64], threads: usize) {
        let (ptr, src_a, src_b) = (&self.ptr, &self.src_a, &self.src_b);
        if src_b.is_empty() && !src_a.is_empty() {
            // The right factor is the tentative unit prolongator: every
            // product is `a·1.0 = a`, so only the left stream is stored
            // and the sweep is a plain gathered sum — same bits, half the
            // memory traffic.
            return par_rows(out, threads, |start, chunk| {
                for (k, o) in chunk.iter_mut().enumerate() {
                    let e = start + k;
                    let (lo, hi) = (ptr[e], ptr[e + 1]);
                    let mut acc = 0.0;
                    for &ia in &src_a[lo..hi] {
                        acc += a_vals[ia as usize];
                    }
                    *o = acc;
                }
            });
        }
        if src_a.is_empty() && !src_b.is_empty() {
            // Mirror case: the left factor is the unit prolongator.
            return par_rows(out, threads, |start, chunk| {
                for (k, o) in chunk.iter_mut().enumerate() {
                    let e = start + k;
                    let (lo, hi) = (ptr[e], ptr[e + 1]);
                    let mut acc = 0.0;
                    for &ib in &src_b[lo..hi] {
                        acc += b_vals[ib as usize];
                    }
                    *o = acc;
                }
            });
        }
        par_rows(out, threads, |start, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                let e = start + k;
                let (lo, hi) = (ptr[e], ptr[e + 1]);
                let mut acc = 0.0;
                for (&ia, &ib) in src_a[lo..hi].iter().zip(&src_b[lo..hi]) {
                    acc += a_vals[ia as usize] * b_vals[ib as usize];
                }
                *o = acc;
            }
        });
    }
}

/// Asserts the flat-index domain fits the `u32` contraction storage (a
/// level would need > 4·10⁹ stored values to overflow — far beyond
/// anything the dense-coarsest guard admits).
fn contraction_index(k: usize) -> u32 {
    u32::try_from(k).expect("contraction source index exceeds u32 — matrix is implausibly large")
}

/// Freezes the contraction list of `T = A·P` on its discovered pattern:
/// pair `(e, kp)` with `col(e) = j` contributes `a[e]·p[kp]` to
/// `T[i, p.col[kp]]`. The two-pass build (count, then place) keeps pairs
/// grouped by destination in traversal order. With `p_is_unit` (a
/// tentative prolongator, every value exactly `1.0`) the right stream is
/// dropped and the sweep degenerates to a gathered sum.
fn build_t_contraction(
    a: &CsrMatrix,
    p: &RowMatrix,
    t: &RowMatrix,
    p_is_unit: bool,
) -> ContractionList {
    let nnz = t.val.len();
    let total_pairs: usize = (0..a.rows())
        .map(|i| {
            let (lo, hi) = a.row_range(i);
            (lo..hi)
                .map(|e| {
                    let j = a.col_indices()[e];
                    p.row_ptr[j + 1] - p.row_ptr[j]
                })
                .sum::<usize>()
        })
        .sum();
    let mut ptr = vec![0usize; nnz + 1];
    let mut src_a = vec![0u32; total_pairs];
    let mut src_b = vec![0u32; if p_is_unit { 0 } else { total_pairs }];
    let mut pos = vec![usize::MAX; p.cols];
    // Row-local two-pass (count, then place): destinations are grouped per
    // row, so `ptr` grows in order and both passes hit cache-hot row data.
    for i in 0..a.rows() {
        let (tlo, thi) = (t.row_ptr[i], t.row_ptr[i + 1]);
        for k in tlo..thi {
            pos[t.col[k]] = k;
        }
        let (lo, hi) = a.row_range(i);
        for e in lo..hi {
            let j = a.col_indices()[e];
            for kp in p.row_ptr[j]..p.row_ptr[j + 1] {
                ptr[pos[p.col[kp]] + 1] += 1;
            }
        }
        for k in tlo..thi {
            ptr[k + 1] += ptr[k];
        }
        for e in lo..hi {
            let j = a.col_indices()[e];
            for kp in p.row_ptr[j]..p.row_ptr[j + 1] {
                let dst = pos[p.col[kp]];
                src_a[ptr[dst]] = contraction_index(e);
                if !p_is_unit {
                    src_b[ptr[dst]] = contraction_index(kp);
                }
                ptr[dst] += 1;
            }
        }
    }
    // The place pass advanced each `ptr[k]` to its range end; shift back.
    for k in (1..=nnz).rev() {
        ptr[k] = ptr[k - 1];
    }
    ptr[0] = 0;
    ContractionList {
        ptr,
        src_a,
        src_b,
        pair_count: total_pairs,
    }
}

/// Freezes the contraction list of `A_c = Pᵀ·T`: pair `(pt_idx[k], kt)`
/// over coarse row `c` contributes `p[pt_idx[k]]·t[kt]` to
/// `A_c[c, t.col[kt]]`, in the transpose-adjacency order the scatter
/// kernel walks.
///
/// The Galerkin operator is exactly symmetric (SPD `A`, restriction =
/// prolongation transpose), so only the upper triangle (`cj ≥ c`) gets
/// pair lists — roughly halving the sweep — and the returned
/// `(lower, upper)` mirror pairs copy the strictly-lower entries from
/// their transposes afterwards. [`MultigridHierarchy::build`] runs the
/// same contract-and-mirror path, so build and refresh stay bit-identical.
fn build_coarse_contraction(
    t: &RowMatrix,
    pt_ptr: &[usize],
    pt_row: &[usize],
    pt_idx: &[usize],
    coarse: &CsrMatrix,
    p_is_unit: bool,
) -> ContractionList {
    let nnz = coarse.values().len();
    let total_pairs: usize = (0..coarse.rows())
        .map(|c| {
            (pt_ptr[c]..pt_ptr[c + 1])
                .map(|k| {
                    let i = pt_row[k];
                    (t.row_ptr[i]..t.row_ptr[i + 1])
                        .filter(|&kt| t.col[kt] >= c)
                        .count()
                })
                .sum::<usize>()
        })
        .sum();
    let mut ptr = vec![0usize; nnz + 1];
    let mut src_a = vec![0u32; if p_is_unit { 0 } else { total_pairs }];
    let mut src_b = vec![0u32; total_pairs];
    let mut pos = vec![usize::MAX; coarse.cols()];
    // Row-local two-pass (count, then place) — see `build_t_contraction`.
    for c in 0..coarse.rows() {
        let (clo, chi) = coarse.row_range(c);
        for e in clo..chi {
            pos[coarse.col_indices()[e]] = e;
        }
        for k in pt_ptr[c]..pt_ptr[c + 1] {
            let i = pt_row[k];
            for kt in t.row_ptr[i]..t.row_ptr[i + 1] {
                if t.col[kt] >= c {
                    ptr[pos[t.col[kt]] + 1] += 1;
                }
            }
        }
        for e in clo..chi {
            ptr[e + 1] += ptr[e];
        }
        for k in pt_ptr[c]..pt_ptr[c + 1] {
            let i = pt_row[k];
            let p_src = contraction_index(pt_idx[k]);
            for kt in t.row_ptr[i]..t.row_ptr[i + 1] {
                let cj = t.col[kt];
                if cj >= c {
                    let dst = pos[cj];
                    if !p_is_unit {
                        src_a[ptr[dst]] = p_src;
                    }
                    src_b[ptr[dst]] = contraction_index(kt);
                    ptr[dst] += 1;
                }
            }
        }
    }
    for k in (1..=nnz).rev() {
        ptr[k] = ptr[k - 1];
    }
    ptr[0] = 0;
    ContractionList {
        ptr,
        src_a,
        src_b,
        pair_count: total_pairs,
    }
}

/// `(lower, upper)` flat-index pairs of the structurally symmetric
/// Galerkin pattern: every strictly-lower entry paired with its
/// transpose, so [`apply_mirror`] can copy the contracted upper triangle
/// down.
fn mirror_pairs(coarse: &CsrMatrix) -> Vec<(u32, u32)> {
    let mut mirror = Vec::new();
    for c in 0..coarse.rows() {
        let (clo, chi) = coarse.row_range(c);
        for e in clo..chi {
            let cj = coarse.col_indices()[e];
            if cj < c {
                // Locate the transpose entry (cj, c) — the pattern is
                // structurally symmetric, so it exists.
                let (mlo, mhi) = coarse.row_range(cj);
                let cols = &coarse.col_indices()[mlo..mhi];
                let off = cols
                    .binary_search(&c)
                    .expect("Galerkin pattern must be structurally symmetric");
                mirror.push((contraction_index(e), contraction_index(mlo + off)));
            }
        }
    }
    mirror
}

/// The tentative piecewise-constant prolongator: one unit entry per fine
/// row, in its aggregate's column. Used below
/// [`MultigridConfig::smoothed_levels`], where smoothing would inflate the
/// Galerkin operators without buying convergence.
fn build_tentative_prolongator(agg: &[usize], n_agg: usize) -> RowMatrix {
    RowMatrix {
        row_ptr: (0..=agg.len()).collect(),
        col: agg.to_vec(),
        val: vec![1.0; agg.len()],
        cols: n_agg,
    }
}

/// Copies every strictly-lower Galerkin entry from its transpose (the
/// upper-triangle value the contraction sweep just produced).
fn apply_mirror(mirror: &[(u32, u32)], vals: &mut [f64]) {
    for &(lower, upper) in mirror {
        vals[lower as usize] = vals[upper as usize];
    }
}

/// Flat indices of each row's diagonal entry, frozen at build time so a
/// refresh reads the Jacobi diagonal with one gather instead of a row
/// scan.
fn diagonal_indices(a: &CsrMatrix) -> Vec<u32> {
    (0..a.rows())
        .map(|i| {
            let (lo, hi) = a.row_range(i);
            let cols = &a.col_indices()[lo..hi];
            let off = cols
                .binary_search(&i)
                .expect("multigrid operators store their diagonal");
            contraction_index(lo + off)
        })
        .collect()
}

/// Refreshes `inv_diag` in place through the frozen diagonal indices —
/// the same `1.0 / d` per row as [`jacobi_inverse_diagonal`], minus the
/// row scans and allocations.
fn refresh_inverse_diagonal(
    a_vals: &[f64],
    diag_idx: &[u32],
    inv_diag: &mut [f64],
) -> Result<(), LinalgError> {
    for (inv, &e) in inv_diag.iter_mut().zip(diag_idx) {
        let d = a_vals[e as usize];
        if d == 0.0 {
            return Err(LinalgError::InvalidInput {
                reason: "multigrid smoothing requires a nonzero diagonal".to_string(),
            });
        }
        *inv = 1.0 / d;
    }
    Ok(())
}

/// Transpose adjacency of `P`: for every coarse column `c`, the fine rows
/// that reference it and the index of the corresponding stored value —
/// so refreshed `P` values are read through the same adjacency.
fn transpose_adjacency(p: &RowMatrix, n_rows: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let nc = p.cols;
    let mut pt_ptr = vec![0usize; nc + 1];
    for &c in &p.col {
        pt_ptr[c + 1] += 1;
    }
    for c in 0..nc {
        pt_ptr[c + 1] += pt_ptr[c];
    }
    let mut pt_row = vec![0usize; p.col.len()];
    let mut pt_idx = vec![0usize; p.col.len()];
    let mut cursor = pt_ptr.clone();
    for i in 0..n_rows {
        for k in p.row_ptr[i]..p.row_ptr[i + 1] {
            let c = p.col[k];
            pt_row[cursor[c]] = i;
            pt_idx[cursor[c]] = k;
            cursor[c] += 1;
        }
    }
    (pt_ptr, pt_row, pt_idx)
}

/// Builds the Galerkin coarse operator `A_c = Pᵀ·T` (pattern and values).
fn build_coarse(
    p: &RowMatrix,
    t: &RowMatrix,
    pt_ptr: &[usize],
    pt_row: &[usize],
    pt_idx: &[usize],
) -> CsrMatrix {
    let nc = p.cols;
    let mut row_ptr = Vec::with_capacity(nc + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0);
    let mut scatter = Scatter::new(nc);
    for c in 0..nc {
        scatter.begin_row();
        for k in pt_ptr[c]..pt_ptr[c + 1] {
            let (i, p_ic) = (pt_row[k], p.val[pt_idx[k]]);
            for (cj, t_icj) in t.row(i) {
                scatter.add(cj, p_ic * t_icj);
            }
        }
        scatter.flush(&mut col, &mut val);
        row_ptr.push(col.len());
    }
    CsrMatrix::from_parts(nc, nc, row_ptr, col, val)
}

fn jacobi_inverse_diagonal(a: &CsrMatrix) -> Result<Vec<f64>, LinalgError> {
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return Err(LinalgError::InvalidInput {
            reason: "multigrid smoothing requires a nonzero diagonal".to_string(),
        });
    }
    Ok(diag.iter().map(|d| 1.0 / d).collect())
}

// ---------------------------------------------------------------------------
// Chebyshev smoother
// ---------------------------------------------------------------------------

/// Fraction of the spectrum the Chebyshev polynomial targets:
/// `[λ_max/4, λ_max]` — the classical smoothing band (errors below the
/// band are what the coarse grid handles).
const CHEBYSHEV_SPECTRUM_FRACTION: f64 = 4.0;
/// Safety margin on the power-iteration eigenvalue estimate.
const CHEBYSHEV_EIG_SAFETY: f64 = 1.1;
/// Power-iteration steps for the eigenvalue bound.
const POWER_ITERATIONS: usize = 12;

/// A degree-`d` Chebyshev polynomial smoother for SPD systems,
/// diagonally preconditioned: one application updates
/// `z ← z + p_d(D⁻¹A)·D⁻¹·(rhs − A·z)` where `p_d` is the Chebyshev
/// polynomial minimizing the error amplification over
/// `[λ_max/4, λ_max]` of `D⁻¹A`. The eigenvalue bound comes from a few
/// deterministic power iterations at construction.
///
/// Used as the V-cycle relaxation via
/// [`MgSmoother::Chebyshev`]; unlike Jacobi sweeps it needs no damping
/// tuning and its smoothing factor improves with degree, which pays off on
/// large 3-D Cartesian boxes. Applying the same polynomial before and
/// after coarse correction keeps the V-cycle symmetric positive-definite.
///
/// It also implements [`Preconditioner`] stand-alone (each application
/// solves from a zero guess), which is how the ablation benches and the
/// property tests exercise it directly:
///
/// ```
/// use ttsv_linalg::{solve_pcg, ChebyshevSmoother, CooBuilder, IterativeConfig};
///
/// // 1-D Poisson on 64 cells.
/// let n = 64;
/// let mut coo = CooBuilder::new(n, n);
/// for i in 0..n {
///     coo.add(i, i, 2.0);
///     if i + 1 < n {
///         coo.add(i, i + 1, -1.0);
///         coo.add(i + 1, i, -1.0);
///     }
/// }
/// let a = coo.to_csr();
/// let cheb = ChebyshevSmoother::new(&a, 3).unwrap();
/// assert!(cheb.lambda_max() > 0.0);
/// let report = solve_pcg(&a, &vec![1.0; n], &cheb, &IterativeConfig::default()).unwrap();
/// assert!(a.residual_norm(&report.solution, &vec![1.0; n]).unwrap() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct ChebyshevSmoother {
    inv_diag: Vec<f64>,
    lambda_max: f64,
    degree: usize,
    /// Kept only for stand-alone [`Preconditioner`] use; the multigrid
    /// levels own their operators and build with
    /// [`ChebyshevSmoother::for_operator`] instead (no duplicate matrix).
    matrix: Option<CsrMatrix>,
}

impl ChebyshevSmoother {
    /// Builds the smoother for the SPD matrix `a`: computes `D⁻¹` and
    /// bounds `λ_max(D⁻¹A)` by a few deterministic power iterations
    /// (plus a 10 % safety margin). Keeps a copy of `a` so the
    /// smoother can be applied stand-alone as a [`Preconditioner`].
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if `a` is not square, has a zero
    /// diagonal entry, or `degree` is zero.
    pub fn new(a: &CsrMatrix, degree: usize) -> Result<Self, LinalgError> {
        let mut smoother = Self::for_operator(a, degree)?;
        smoother.matrix = Some(a.clone());
        Ok(smoother)
    }

    /// Like [`ChebyshevSmoother::new`] but without retaining the matrix —
    /// the caller supplies the operator at each application (the multigrid
    /// hierarchy path).
    fn for_operator(a: &CsrMatrix, degree: usize) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "Chebyshev smoother needs a square matrix, got {}×{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        if degree == 0 {
            return Err(LinalgError::InvalidInput {
                reason: "Chebyshev degree must be at least 1".to_string(),
            });
        }
        let inv_diag = jacobi_inverse_diagonal(a)?;
        let lambda_max = estimate_lambda_max(a, &inv_diag);
        Ok(Self {
            inv_diag,
            lambda_max,
            degree,
            matrix: None,
        })
    }

    /// The upper eigenvalue bound of `D⁻¹A` the polynomial is built for
    /// (power-iteration estimate × 1.1).
    #[must_use]
    pub fn lambda_max(&self) -> f64 {
        self.lambda_max
    }

    /// The polynomial degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Numeric refresh after the matrix values changed on a fixed pattern.
    fn refresh(&mut self, a: &CsrMatrix) -> Result<(), LinalgError> {
        self.inv_diag = jacobi_inverse_diagonal(a)?;
        self.lambda_max = estimate_lambda_max(a, &self.inv_diag);
        Ok(())
    }

    /// One smoother application: `z` is updated toward `A⁻¹·rhs` using the
    /// degree-`d` recurrence. `r` and `d` are caller-provided scratch of
    /// length `n`; with `zero_init` the incoming `z` is treated as zero
    /// (skipping one matvec).
    #[allow(clippy::too_many_arguments)]
    fn smooth(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        z: &mut [f64],
        r: &mut [f64],
        d: &mut [f64],
        zero_init: bool,
        threads: usize,
    ) {
        let hi = self.lambda_max;
        let lo = hi / CHEBYSHEV_SPECTRUM_FRACTION;
        let theta = 0.5 * (hi + lo);
        let delta = 0.5 * (hi - lo);
        let sigma = theta / delta;
        let mut rho = 1.0 / sigma;
        let inv_diag = &self.inv_diag;

        if zero_init {
            z.fill(0.0);
            r.copy_from_slice(rhs);
        } else {
            matvec_threaded(a, z, r, threads);
            par_rows(r, threads, |start, chunk| {
                for (k, ri) in chunk.iter_mut().enumerate() {
                    *ri = rhs[start + k] - *ri;
                }
            });
        }
        {
            let r = &*r;
            par_rows(d, threads, |start, chunk| {
                for (k, di) in chunk.iter_mut().enumerate() {
                    let i = start + k;
                    *di = inv_diag[i] * r[i] / theta;
                }
            });
        }
        for step in 0..self.degree {
            {
                let d = &*d;
                par_rows(z, threads, |start, chunk| {
                    for (k, zi) in chunk.iter_mut().enumerate() {
                        *zi += d[start + k];
                    }
                });
            }
            if step + 1 == self.degree {
                break;
            }
            residual_sub_threaded(a, d, r, threads);
            let rho_next = 1.0 / (2.0 * sigma - rho);
            let c_old = rho_next * rho;
            let c_new = 2.0 * rho_next / delta;
            {
                let r = &*r;
                par_rows(d, threads, |start, chunk| {
                    for (k, di) in chunk.iter_mut().enumerate() {
                        let i = start + k;
                        *di = c_old * *di + c_new * inv_diag[i] * r[i];
                    }
                });
            }
            rho = rho_next;
        }
    }
}

impl Preconditioner for ChebyshevSmoother {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.inv_diag.len();
        assert_eq!(r.len(), n, "Chebyshev: wrong residual length");
        assert_eq!(z.len(), n, "Chebyshev: wrong output length");
        // Stand-alone application allocates its scratch; the multigrid
        // V-cycle path reuses per-level buffers instead.
        let a = self
            .matrix
            .as_ref()
            .expect("stand-alone Chebyshev preconditioner keeps its matrix");
        let mut res = vec![0.0; n];
        let mut dir = vec![0.0; n];
        self.smooth(a, r, z, &mut res, &mut dir, true, 1);
    }
}

/// Power iteration for `λ_max(D⁻¹A)` with a deterministic start vector.
fn estimate_lambda_max(a: &CsrMatrix, inv_diag: &[f64]) -> f64 {
    let n = a.rows();
    // Deterministic pseudo-random positive start (Knuth multiplicative
    // hash) — no RNG dependency, reproducible across runs and platforms.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 0.25 + ((i.wrapping_mul(2_654_435_761)) & 0xffff) as f64 / 65_536.0)
        .collect();
    let mut w = vec![0.0; n];
    let nv = norm2(&v);
    if nv == 0.0 {
        return 1.0;
    }
    for x in &mut v {
        *x /= nv;
    }
    let mut lambda = 1.0f64;
    for _ in 0..POWER_ITERATIONS {
        a.matvec_into(&v, &mut w);
        for i in 0..n {
            w[i] *= inv_diag[i];
        }
        let norm = norm2(&w);
        if !(norm.is_finite() && norm > 0.0) {
            break;
        }
        lambda = norm;
        for i in 0..n {
            v[i] = w[i] / norm;
        }
    }
    lambda * CHEBYSHEV_EIG_SAFETY
}

// ---------------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------------

/// One fine level of the hierarchy: its operator, smoother data, the
/// build-time aggregation/strength pattern, and the fixed-sparsity
/// intermediates (`P`, `T = A·P`, and the flat contraction lists of both
/// Galerkin products) that make numeric refreshes cheap.
#[derive(Debug, Clone)]
struct Level {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    /// Strength classification per stored entry of `a`, frozen at build
    /// time (feeds the lazily built prolongator-refresh lists).
    strong: Vec<bool>,
    /// Aggregate id per unknown, frozen at build time.
    agg: Vec<usize>,
    /// Whether this level's prolongator is smoothed (tentative levels
    /// have constant unit values and skip the prolongator refresh).
    smoothed: bool,
    /// Flat prolongator-refresh lists; `None` until the first refresh
    /// needs them (or eagerly when truncation makes the built values
    /// depend on the refresh kernel's rescale).
    p_refresh: Option<ProlongatorRefresh>,
    p: RowMatrix,
    t: RowMatrix,
    /// Flat contraction list of `T = A·P` (pairs into `a.values`/`p.val`),
    /// frozen at build time so refresh is a branch-free FMA sweep.
    t_list: ContractionList,
    /// Flat contraction list of `A_c = Pᵀ·T` (pairs into `p.val`/`t.val`),
    /// upper triangle only.
    coarse_list: ContractionList,
    /// `(lower, upper)` flat-index pairs mirroring the Galerkin upper
    /// triangle onto the strictly-lower entries.
    coarse_mirror: Vec<(u32, u32)>,
    /// Flat index of each row's diagonal entry in `a`.
    diag_idx: Vec<u32>,
    /// Chebyshev data when the config selects polynomial smoothing.
    cheby: Option<ChebyshevSmoother>,
}

/// Per-level work vectors, reused across V-cycles.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Right-hand side per level (`rhs[0]` is a copy of the input residual).
    rhs: Vec<Vec<f64>>,
    /// Correction per level (`z[levels]` is the coarsest solution).
    z: Vec<Vec<f64>>,
    /// Residual scratch per fine level.
    res: Vec<Vec<f64>>,
    /// Chebyshev direction scratch per fine level.
    dir: Vec<Vec<f64>>,
}

impl Scratch {
    fn for_levels(levels: &[Level], coarsest: usize) -> Self {
        let mut scratch = Scratch::default();
        for level in levels {
            scratch.rhs.push(vec![0.0; level.a.rows()]);
            scratch.z.push(vec![0.0; level.a.rows()]);
            scratch.res.push(vec![0.0; level.a.rows()]);
            scratch.dir.push(vec![0.0; level.a.rows()]);
        }
        scratch.rhs.push(vec![0.0; coarsest]); // coarsest right-hand side
        scratch.z.push(vec![0.0; coarsest]); // coarsest solution
        scratch
    }
}

/// The reusable setup of a smoothed-aggregation multigrid V-cycle:
/// aggregates, smoothed prolongators, Galerkin coarse operators, smoother
/// data, and the coarsest dense factorization, keyed to one sparsity
/// pattern.
///
/// Build once per pattern with [`MultigridHierarchy::build`]; when the
/// matrix values change on the same pattern (Picard re-linearization, a
/// parameter sweep over one mesh), call [`MultigridHierarchy::refresh`] —
/// it re-computes only numeric content (prolongator weights, Galerkin
/// triple products on the fixed sparsity, diagonals, eigenvalue bounds,
/// coarsest LU) and skips aggregation entirely.
///
/// The hierarchy is plain data (`Send + Sync`); wrap it in a
/// [`MultigridPreconditioner`] to apply V-cycles:
///
/// ```
/// use ttsv_linalg::{solve_pcg, CooBuilder, IterativeConfig};
/// use ttsv_linalg::{MultigridConfig, MultigridHierarchy, MultigridPreconditioner};
///
/// // 1-D Poisson on 96 cells, then a second operator with the same
/// // pattern but scaled coefficients (a "next sweep point").
/// let assemble = |k: f64| {
///     let n = 96;
///     let mut coo = CooBuilder::new(n, n);
///     for i in 0..n {
///         coo.add(i, i, 2.0 * k);
///         if i + 1 < n {
///             coo.add(i, i + 1, -k);
///             coo.add(i + 1, i, -k);
///         }
///     }
///     coo.to_csr()
/// };
/// let a1 = assemble(1.0);
/// let hierarchy = MultigridHierarchy::build(&a1, &MultigridConfig::default()).unwrap();
/// let mut mg = MultigridPreconditioner::from_hierarchy(hierarchy);
/// let b = vec![1.0; 96];
/// let x1 = solve_pcg(&a1, &b, &mg, &IterativeConfig::default()).unwrap();
///
/// // Same pattern, new values: numeric refresh instead of a rebuild.
/// let a2 = assemble(3.5);
/// assert!(mg.hierarchy().pattern_matches(&a2));
/// mg.refresh(&a2).unwrap();
/// let x2 = solve_pcg(&a2, &b, &mg, &IterativeConfig::default()).unwrap();
/// assert!(a2.residual_norm(&x2.solution, &b).unwrap() < 1e-7);
/// # let _ = x1;
/// ```
#[derive(Debug, Clone)]
pub struct MultigridHierarchy {
    levels: Vec<Level>,
    /// The coarsest Galerkin operator (kept for numeric refreshes).
    coarse_a: CsrMatrix,
    /// Dense factorization of the coarsest operator.
    coarse: LuDecomposition,
    config: MultigridConfig,
    /// Resolved worker count for finest-level sweeps.
    threads: usize,
}

impl MultigridHierarchy {
    /// Builds the full hierarchy (pattern + numeric content) for the SPD
    /// matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidInput`] if `a` is not square, a level has a
    ///   zero diagonal entry, or the matrix has too few strong connections
    ///   for aggregation to coarsen it (use a point preconditioner there).
    /// * [`LinalgError::Singular`] if the coarsest operator cannot be
    ///   factorized.
    pub fn build(a: &CsrMatrix, config: &MultigridConfig) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "multigrid needs a square matrix, got {}×{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        assert!(
            config.jacobi_weight > 0.0 && config.jacobi_weight <= 1.0,
            "Jacobi weight must be in (0, 1], got {}",
            config.jacobi_weight
        );
        assert!(
            (0.0..1.0).contains(&config.strength_threshold),
            "strength threshold must be in [0, 1), got {}",
            config.strength_threshold
        );
        assert!(
            (0.0..1.0).contains(&config.prolongator_truncation),
            "prolongator truncation must be in [0, 1), got {}",
            config.prolongator_truncation
        );
        assert!(config.max_levels >= 1, "need at least one level");
        assert!(
            config.pre_smooth == config.post_smooth,
            "pre_smooth ({}) must equal post_smooth ({}): unequal sweeps make the V-cycle \
             nonsymmetric, which silently invalidates CG",
            config.pre_smooth,
            config.post_smooth
        );
        if let MgSmoother::Chebyshev { degree } = config.smoother {
            if degree == 0 {
                return Err(LinalgError::InvalidInput {
                    reason: "Chebyshev degree must be at least 1".to_string(),
                });
            }
        }

        let threads = thread_count(a.rows(), config.parallel_threshold);
        let mut levels = Vec::new();
        let mut mat = a.clone();
        while mat.rows() > config.coarsest_size && levels.len() + 1 < config.max_levels {
            let strong = strong_connections(&mat, config.strength_threshold);
            let (agg, n_agg) = aggregate(&mat, &strong);
            if n_agg >= mat.rows() {
                break; // no reduction left
            }
            let inv_diag = jacobi_inverse_diagonal(&mat)?;
            let smoothed = levels.len() < config.smoothed_levels;
            let truncated = smoothed
                && (config.prolongator_truncation > 0.0 || config.prolongator_max_entries > 0);
            let mut p = if smoothed {
                build_prolongator(
                    &mat,
                    &strong,
                    &agg,
                    n_agg,
                    config.prolongator_weight,
                    &inv_diag,
                    config.prolongator_truncation,
                    config.prolongator_max_entries,
                )
            } else {
                build_tentative_prolongator(&agg, n_agg)
            };
            // Truncation rescales through the refresh kernel, so the
            // built values must come from that same kernel; without it
            // the scatter values already match the flat refresh bit for
            // bit, and the refresh lists are built lazily on first use.
            let p_refresh = truncated.then(|| {
                let pr = ProlongatorRefresh::build(&mat, &strong, &agg, &p, true);
                pr.refresh(mat.values(), &inv_diag, config.prolongator_weight, &mut p);
                pr
            });
            let t = build_t(&mat, &p);
            let (pt_ptr, pt_row, pt_idx) = transpose_adjacency(&p, mat.rows());
            let mut coarse_mat = build_coarse(&p, &t, &pt_ptr, &pt_row, &pt_idx);
            // The numeric refresh only computes the upper Galerkin
            // triangle and mirrors it down; mirror the built values the
            // same way so both paths agree bit for bit.
            let coarse_mirror = mirror_pairs(&coarse_mat);
            apply_mirror(&coarse_mirror, coarse_mat.values_mut());
            let diag_idx = diagonal_indices(&mat);
            let cheby = match config.smoother {
                MgSmoother::Jacobi => None,
                MgSmoother::Chebyshev { degree } => {
                    Some(ChebyshevSmoother::for_operator(&mat, degree)?)
                }
            };
            levels.push(Level {
                a: mat,
                inv_diag,
                strong,
                agg,
                smoothed,
                p_refresh,
                p,
                t,
                t_list: ContractionList::default(),
                coarse_list: ContractionList::default(),
                coarse_mirror,
                diag_idx,
                cheby,
            });
            mat = coarse_mat;
        }

        // Guard the dense coarsest factorization: if coarsening stalled far
        // above the target size (a matrix with no usable connections, e.g.
        // near-diagonal), O(n²) dense memory would be pathological — tell
        // the caller to pick a point preconditioner instead.
        if mat.rows() > config.coarsest_size.max(1) * 8 {
            let cause = if levels.len() + 1 >= config.max_levels {
                format!(
                    "the max_levels cap ({}) stopped coarsening — raise it",
                    config.max_levels
                )
            } else {
                "the matrix has too few strong connections for multigrid — use a Jacobi/SSOR \
                 preconditioner"
                    .to_string()
            };
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "coarsening stopped at {} unknowns (target ≤ {}): {cause}",
                    mat.rows(),
                    config.coarsest_size
                ),
            });
        }
        let coarse_dense = DenseMatrix::from_fn(mat.rows(), mat.rows(), |i, j| mat.get(i, j));
        let coarse = coarse_dense.lu()?;

        Ok(Self {
            levels,
            coarse_a: mat,
            coarse,
            config: *config,
            threads,
        })
    }

    /// Numeric-only refresh: re-computes prolongator weights, Galerkin
    /// coarse values, smoother diagonals/eigenvalue bounds, and the
    /// coarsest factorization for a matrix with the *same sparsity
    /// pattern* as the one the hierarchy was built from. Aggregation,
    /// strength classification, and every sparsity pattern are reused
    /// unchanged — for identical input values the refreshed hierarchy is
    /// bit-for-bit the built one.
    ///
    /// The Galerkin triple products run over flat contraction lists frozen
    /// at build time (every output value knows the flat source-index pairs
    /// that feed it), so the hot sweeps are branch-free multiply-add
    /// reductions with no column hashing or dense scatter rows; once a
    /// level's pair count passes [`MultigridConfig::parallel_threshold`]
    /// they row-chunk across scoped threads. Both moves leave each output
    /// entry's accumulation order untouched, so the refreshed values are
    /// identical bit for bit to the scatter-based ones.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidInput`] if the pattern differs (use
    ///   [`MultigridHierarchy::pattern_matches`] to decide between refresh
    ///   and rebuild) or a diagonal entry became zero.
    /// * [`LinalgError::Singular`] if the refreshed coarsest operator
    ///   cannot be factorized.
    pub fn refresh(&mut self, a: &CsrMatrix) -> Result<(), LinalgError> {
        if !self.pattern_matches(a) {
            return Err(LinalgError::InvalidInput {
                reason: "multigrid refresh requires the sparsity pattern the hierarchy was \
                         built from (rebuild instead)"
                    .to_string(),
            });
        }
        let threshold = self.config.parallel_threshold;

        if let Some(first) = self.levels.first_mut() {
            first.a.values_mut().copy_from_slice(a.values());
        } else {
            self.coarse_a.values_mut().copy_from_slice(a.values());
        }
        for l in 0..self.levels.len() {
            let (head, tail) = self.levels.split_at_mut(l + 1);
            let level = &mut head[l];
            let next_a = match tail.first_mut() {
                Some(next) => &mut next.a,
                None => &mut self.coarse_a,
            };
            refresh_inverse_diagonal(level.a.values(), &level.diag_idx, &mut level.inv_diag)?;
            if level.smoothed && level.p_refresh.is_none() {
                // First refresh on this level: freeze the flat source
                // lists (build defers them — rebuild-only callers never
                // pay for refresh machinery).
                level.p_refresh = Some(ProlongatorRefresh::build(
                    &level.a,
                    &level.strong,
                    &level.agg,
                    &level.p,
                    false,
                ));
            }
            if level.t_list.ptr.is_empty() {
                level.t_list = build_t_contraction(&level.a, &level.p, &level.t, !level.smoothed);
                let (pt_ptr, pt_row, pt_idx) = transpose_adjacency(&level.p, level.a.rows());
                level.coarse_list = build_coarse_contraction(
                    &level.t,
                    &pt_ptr,
                    &pt_row,
                    &pt_idx,
                    next_a,
                    !level.smoothed,
                );
            }
            if let Some(p_refresh) = &level.p_refresh {
                p_refresh.refresh(
                    level.a.values(),
                    &level.inv_diag,
                    self.config.prolongator_weight,
                    &mut level.p,
                );
            }
            level.t_list.contract(
                level.a.values(),
                &level.p.val,
                &mut level.t.val,
                thread_count(level.t_list.pairs(), threshold),
            );
            level.coarse_list.contract(
                &level.p.val,
                &level.t.val,
                next_a.values_mut(),
                thread_count(level.coarse_list.pairs(), threshold),
            );
            apply_mirror(&level.coarse_mirror, next_a.values_mut());
            if let Some(cheby) = level.cheby.as_mut() {
                cheby.refresh(&level.a)?;
            }
        }
        let mat = &self.coarse_a;
        let coarse_dense = DenseMatrix::from_fn(mat.rows(), mat.rows(), |i, j| mat.get(i, j));
        self.coarse = coarse_dense.lu()?;
        Ok(())
    }

    /// `true` when `a` has exactly the sparsity pattern this hierarchy was
    /// built from — the precondition for [`MultigridHierarchy::refresh`].
    #[must_use]
    pub fn pattern_matches(&self, a: &CsrMatrix) -> bool {
        match self.levels.first() {
            Some(level) => level.a.same_pattern(a),
            None => self.coarse_a.same_pattern(a),
        }
    }

    /// The configuration the hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &MultigridConfig {
        &self.config
    }

    /// Number of levels in the hierarchy (1 = the matrix was small enough
    /// to factorize directly).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len() + 1
    }

    /// Unknown count of the coarsest (directly factorized) level.
    #[must_use]
    pub fn coarsest_unknowns(&self) -> usize {
        self.coarse.dim()
    }

    /// Unknown count of the finest level.
    #[must_use]
    pub fn finest_unknowns(&self) -> usize {
        match self.levels.first() {
            Some(level) => level.a.rows(),
            None => self.coarse.dim(),
        }
    }

    /// One damped-Jacobi sweep `z ← z + ω·D⁻¹·(rhs − A·z)`, with the first
    /// sweep from a zero guess collapsing to `z = ω·D⁻¹·rhs`.
    #[allow(clippy::too_many_arguments)]
    fn jacobi_smooth(
        level: &Level,
        weight: f64,
        rhs: &[f64],
        z: &mut [f64],
        res: &mut [f64],
        sweeps: usize,
        zero_init: bool,
        threads: usize,
    ) {
        let inv_diag = &level.inv_diag;
        let mut first = zero_init;
        for _ in 0..sweeps {
            if first {
                par_rows(z, threads, |start, chunk| {
                    for (k, zi) in chunk.iter_mut().enumerate() {
                        let i = start + k;
                        *zi = weight * inv_diag[i] * rhs[i];
                    }
                });
                first = false;
            } else {
                matvec_threaded(&level.a, z, res, threads);
                let res = &*res;
                par_rows(z, threads, |start, chunk| {
                    for (k, zi) in chunk.iter_mut().enumerate() {
                        let i = start + k;
                        *zi += weight * inv_diag[i] * (rhs[i] - res[i]);
                    }
                });
            }
        }
        if zero_init && sweeps == 0 {
            z.fill(0.0);
        }
    }

    /// Relaxation dispatch for one level.
    #[allow(clippy::too_many_arguments)]
    fn smooth_level(
        &self,
        l: usize,
        rhs: &[f64],
        z: &mut [f64],
        res: &mut [f64],
        dir: &mut [f64],
        zero_init: bool,
    ) {
        let level = &self.levels[l];
        let threads = if l == 0 { self.threads } else { 1 };
        match level.cheby.as_ref() {
            None => Self::jacobi_smooth(
                level,
                self.config.jacobi_weight,
                rhs,
                z,
                res,
                if zero_init {
                    self.config.pre_smooth
                } else {
                    self.config.post_smooth
                },
                zero_init,
                threads,
            ),
            Some(cheby) => cheby.smooth(&level.a, rhs, z, res, dir, zero_init, threads),
        }
    }

    /// One V-cycle applied to the residual `r`, writing the correction
    /// into `z`, with all work vectors supplied by `scratch`.
    fn v_cycle(&self, r: &[f64], z: &mut [f64], scratch: &mut Scratch) {
        let n = self.finest_unknowns();
        assert_eq!(r.len(), n, "multigrid: wrong residual length");
        assert_eq!(z.len(), n, "multigrid: wrong output length");
        let depth = self.levels.len();

        if depth == 0 {
            let x = self.coarse.solve(r).expect("coarse factorization is valid");
            z.copy_from_slice(&x);
            return;
        }

        // Downward sweep: pre-smooth from zero, restrict the residual.
        scratch.rhs[0].copy_from_slice(r);
        for l in 0..depth {
            let level = &self.levels[l];
            let threads = if l == 0 { self.threads } else { 1 };
            let (rhs_fine, rhs_coarse) = {
                let (head, tail) = scratch.rhs.split_at_mut(l + 1);
                (std::mem::take(&mut head[l]), &mut tail[0])
            };
            {
                let (z_l, res_l, dir_l) =
                    (&mut scratch.z[l], &mut scratch.res[l], &mut scratch.dir[l]);
                self.smooth_level(l, &rhs_fine, z_l, res_l, dir_l, true);
                matvec_threaded(&level.a, z_l, res_l, threads);
                let rhs_ref = &rhs_fine;
                par_rows(res_l, threads, |start, chunk| {
                    for (k, ri) in chunk.iter_mut().enumerate() {
                        *ri = rhs_ref[start + k] - *ri;
                    }
                });
                level.p.transpose_mul(res_l, rhs_coarse);
            }
            scratch.rhs[l] = rhs_fine;
        }
        let x = self
            .coarse
            .solve(&scratch.rhs[depth])
            .expect("coarse factorization is valid");
        scratch.z[depth].copy_from_slice(&x);

        // Upward sweep: prolong the coarse correction, post-smooth.
        for l in (0..depth).rev() {
            let level = &self.levels[l];
            let (z_head, z_tail) = scratch.z.split_at_mut(l + 1);
            let z_l = &mut z_head[l];
            level.p.mul_add(&z_tail[0], z_l);
            let rhs_l = std::mem::take(&mut scratch.rhs[l]);
            self.smooth_level(
                l,
                &rhs_l,
                z_l,
                &mut scratch.res[l],
                &mut scratch.dir[l],
                false,
            );
            scratch.rhs[l] = rhs_l;
        }
        z.copy_from_slice(&scratch.z[0]);
    }
}

// ---------------------------------------------------------------------------
// Preconditioner wrapper
// ---------------------------------------------------------------------------

/// A V-cycle of smoothed-aggregation multigrid, applied as a
/// preconditioner.
///
/// Build once per assembled matrix, then hand to
/// [`solve_pcg`](crate::solve_pcg) /
/// [`solve_pcg_into`](crate::solve_pcg_into):
///
/// ```
/// use ttsv_linalg::{solve_pcg, CooBuilder, IterativeConfig};
/// use ttsv_linalg::{MultigridConfig, MultigridPreconditioner};
///
/// // 1-D Poisson on 64 cells.
/// let n = 64;
/// let mut coo = CooBuilder::new(n, n);
/// for i in 0..n {
///     coo.add(i, i, 2.0);
///     if i + 1 < n {
///         coo.add(i, i + 1, -1.0);
///         coo.add(i + 1, i, -1.0);
///     }
/// }
/// let a = coo.to_csr();
/// let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
/// let report = solve_pcg(&a, &vec![1.0; n], &mg, &IterativeConfig::default()).unwrap();
/// assert!(a.residual_norm(&report.solution, &vec![1.0; n]).unwrap() < 1e-7);
/// ```
///
/// The setup lives in a [`MultigridHierarchy`], reusable across matrices
/// of identical sparsity via [`MultigridPreconditioner::refresh`] (or
/// recoverable with [`MultigridPreconditioner::into_hierarchy`] to park in
/// a cache between solves).
///
/// Not `Sync`: the per-level scratch is interior-mutable so
/// [`Preconditioner::apply`] can stay allocation-free. Build one instance
/// per solving thread, or move the hierarchy between threads (it is
/// `Send + Sync`) and wrap it locally.
#[derive(Debug)]
pub struct MultigridPreconditioner {
    hierarchy: MultigridHierarchy,
    scratch: RefCell<Scratch>,
}

impl MultigridPreconditioner {
    /// Builds the hierarchy for the SPD matrix `a` and wraps it.
    ///
    /// # Errors
    ///
    /// See [`MultigridHierarchy::build`].
    pub fn new(a: &CsrMatrix, config: &MultigridConfig) -> Result<Self, LinalgError> {
        Ok(Self::from_hierarchy(MultigridHierarchy::build(a, config)?))
    }

    /// Wraps an existing hierarchy (typically taken from a cache).
    #[must_use]
    pub fn from_hierarchy(hierarchy: MultigridHierarchy) -> Self {
        let scratch = Scratch::for_levels(&hierarchy.levels, hierarchy.coarse_a.rows());
        Self {
            hierarchy,
            scratch: RefCell::new(scratch),
        }
    }

    /// Numeric-only refresh for a matrix with the same sparsity pattern —
    /// see [`MultigridHierarchy::refresh`].
    ///
    /// # Errors
    ///
    /// See [`MultigridHierarchy::refresh`].
    pub fn refresh(&mut self, a: &CsrMatrix) -> Result<(), LinalgError> {
        self.hierarchy.refresh(a)
    }

    /// The wrapped hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &MultigridHierarchy {
        &self.hierarchy
    }

    /// Unwraps into the reusable hierarchy (to park in a cache).
    #[must_use]
    pub fn into_hierarchy(self) -> MultigridHierarchy {
        self.hierarchy
    }

    /// Number of levels in the hierarchy (1 = the matrix was small enough
    /// to factorize directly).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.hierarchy.level_count()
    }

    /// Unknown count of the coarsest (directly factorized) level.
    #[must_use]
    pub fn coarsest_unknowns(&self) -> usize {
        self.hierarchy.coarsest_unknowns()
    }
}

impl Preconditioner for MultigridPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let mut scratch = self.scratch.borrow_mut();
        self.hierarchy.v_cycle(r, z, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{solve_cg, solve_pcg, IterativeConfig};
    use crate::sparse::CooBuilder;
    use crate::vector::{dot, norm2, sub};

    /// 2-D Poisson on an `nx × ny` grid with Dirichlet coupling on one
    /// edge and a vertical-coupling anisotropy `ay`.
    fn poisson2d(nx: usize, ny: usize, ay: f64) -> CsrMatrix {
        poisson2d_scaled(nx, ny, ay, 1.0)
    }

    /// Like [`poisson2d`] but with every conductance scaled by a smooth
    /// per-cell factor — same sparsity pattern, different values.
    fn poisson2d_scaled(nx: usize, ny: usize, ay: f64, amp: f64) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooBuilder::new(n, n);
        let idx = |i: usize, j: usize| i + j * nx;
        let cell = |i: usize, j: usize| amp * (1.0 + 0.3 * ((i + 2 * j) % 5) as f64);
        for j in 0..ny {
            for i in 0..nx {
                let me = idx(i, j);
                let mut diag = 0.0;
                if j == 0 {
                    diag += 2.0 * ay * cell(i, j); // sink below the first row
                }
                for (ni, nj, g) in [
                    (i.wrapping_sub(1), j, 1.0),
                    (i + 1, j, 1.0),
                    (i, j.wrapping_sub(1), ay),
                    (i, j + 1, ay),
                ] {
                    if ni < nx && nj < ny {
                        let gv = g * 0.5 * (cell(i, j) + cell(ni, nj));
                        coo.add(me, idx(ni, nj), -gv);
                        diag += gv;
                    }
                }
                coo.add(me, me, diag);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn hierarchy_coarsens() {
        let a = poisson2d(16, 16, 1.0);
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        assert!(mg.level_count() >= 2, "16×16 should build a real hierarchy");
        assert!(mg.coarsest_unknowns() <= 48);
    }

    #[test]
    fn tiny_problem_degenerates_to_direct_solve() {
        let a = poisson2d(3, 3, 1.0);
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        assert_eq!(mg.level_count(), 1);
        // An exact preconditioner makes PCG converge immediately.
        let b = vec![1.0; 9];
        let report = solve_pcg(&a, &b, &mg, &IterativeConfig::default()).unwrap();
        assert!(report.iterations <= 1, "took {}", report.iterations);
    }

    #[test]
    fn mg_pcg_matches_plain_cg() {
        let a = poisson2d(12, 20, 1.0);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let cfg = IterativeConfig::new(10_000, 1e-11);
        let plain = solve_cg(&a, &b, &cfg).unwrap();
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let pre = solve_pcg(&a, &b, &mg, &cfg).unwrap();
        for (x, y) in plain.solution.iter().zip(&pre.solution) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
        assert!(
            pre.iterations < plain.iterations,
            "multigrid {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn anisotropy_is_handled() {
        // 100:1 anisotropy — the regime where point-smoothed full
        // coarsening stalls; strength-based aggregation must keep the
        // iteration count modest. The smoothed-aggregation preset carries
        // the tight bound; the plain-aggregation default trades
        // iterations for cheap setup/refresh but must stay within ~2× of
        // it.
        let a = poisson2d(24, 24, 100.0);
        let b = vec![1.0; a.rows()];
        let cfg = IterativeConfig::new(10_000, 1e-11);
        let sa =
            MultigridPreconditioner::new(&a, &MultigridConfig::smoothed_aggregation()).unwrap();
        let report = solve_pcg(&a, &b, &sa, &cfg).unwrap();
        assert!(
            report.iterations <= 30,
            "anisotropic SA-MG-PCG took {} iterations",
            report.iterations
        );
        let plain = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let report = solve_pcg(&a, &b, &plain, &cfg).unwrap();
        assert!(
            report.iterations <= 55,
            "anisotropic plain-aggregation MG-PCG took {} iterations",
            report.iterations
        );
    }

    #[test]
    fn vcycle_is_symmetric() {
        // ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ is required for CG — for the Jacobi and
        // the Chebyshev smoother alike.
        for config in [MultigridConfig::default(), MultigridConfig::chebyshev(3)] {
            let a = poisson2d(10, 10, 5.0);
            let mg = MultigridPreconditioner::new(&a, &config).unwrap();
            let n = a.rows();
            let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91).cos()).collect();
            let mut mu = vec![0.0; n];
            let mut mv = vec![0.0; n];
            mg.apply(&u, &mut mu);
            mg.apply(&v, &mut mv);
            let lhs = dot(&mu, &v);
            let rhs = dot(&u, &mv);
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "asymmetric V-cycle ({config:?}): {lhs} vs {rhs}"
            );
            // And positive: ⟨M⁻¹u, u⟩ > 0.
            assert!(dot(&mu, &u) > 0.0);
        }
    }

    #[test]
    fn stationary_vcycle_iteration_reduces_error_monotonically() {
        // The symmetric V-cycle is a contraction in the energy norm
        // ‖e‖_A = √(eᵀ·A·e) — the norm in which multigrid convergence is
        // guaranteed (the plain 2-norm of the residual may transiently grow
        // from a rough start). Track the error against a known solution.
        let a = poisson2d(16, 24, 10.0);
        let n = a.rows();
        let x_star: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 11) as f64).collect();
        let b = a.matvec(&x_star).unwrap();
        let energy = |x: &[f64]| {
            let e = sub(&x_star, x);
            dot(&e, &a.matvec(&e).unwrap()).sqrt()
        };
        // Both presets must contract the energy norm every cycle; the
        // smoothed-aggregation hierarchy must also make 12 cycles a real
        // solve (the plain-aggregation default converges more slowly by
        // design and only carries the monotonicity requirement).
        for (config, residual_bound) in [
            (MultigridConfig::smoothed_aggregation(), Some(1e-3)),
            (MultigridConfig::default(), None),
        ] {
            let mg = MultigridPreconditioner::new(&a, &config).unwrap();
            let mut x = vec![0.0; n];
            let mut prev = energy(&x);
            for cycle in 0..12 {
                let r = sub(&b, &a.matvec(&x).unwrap());
                let mut dz = vec![0.0; n];
                mg.apply(&r, &mut dz);
                for i in 0..n {
                    x[i] += dz[i];
                }
                let now = energy(&x);
                assert!(
                    now < prev,
                    "cycle {cycle}: energy error grew from {prev:.3e} to {now:.3e}"
                );
                prev = now;
            }
            if let Some(bound) = residual_bound {
                assert!(
                    norm2(&sub(&b, &a.matvec(&x).unwrap())) < bound * norm2(&b),
                    "12 SA cycles should reduce ‖r‖ a lot"
                );
            }
        }
    }

    #[test]
    fn refresh_with_identical_values_reproduces_the_build_exactly() {
        // Refresh re-runs the numeric kernels in the same accumulation
        // order as the build, so feeding back the very same matrix must
        // leave the V-cycle output bit-for-bit unchanged — on the
        // plain-aggregation default, classic smoothed aggregation, and a
        // truncated/capped smoothed config alike.
        for config in [
            MultigridConfig::default(),
            MultigridConfig::smoothed_aggregation(),
            MultigridConfig {
                prolongator_truncation: 0.15,
                prolongator_max_entries: 3,
                ..MultigridConfig::smoothed_aggregation()
            },
        ] {
            let a = poisson2d(14, 18, 8.0);
            let n = a.rows();
            let fresh = MultigridPreconditioner::new(&a, &config).unwrap();
            let mut refreshed = MultigridPreconditioner::new(&a, &config).unwrap();
            refreshed.refresh(&a).unwrap();
            let r: Vec<f64> = (0..n).map(|i| ((i * 29) % 13) as f64 - 6.0).collect();
            let mut z1 = vec![0.0; n];
            let mut z2 = vec![0.0; n];
            fresh.apply(&r, &mut z1);
            refreshed.apply(&r, &mut z2);
            assert_eq!(z1, z2, "identical-value refresh must be exact ({config:?})");
        }
    }

    #[test]
    fn refresh_tracks_perturbed_coefficients() {
        // Build on one coefficient field, refresh onto a strongly scaled
        // one: the refreshed hierarchy must still precondition the new
        // operator well (same solution, few iterations).
        let a1 = poisson2d_scaled(16, 16, 10.0, 1.0);
        let a2 = poisson2d_scaled(16, 16, 10.0, 7.5);
        assert!(a1.same_pattern(&a2));
        let cfg = IterativeConfig::new(10_000, 1e-11);
        let b = vec![1.0; a1.rows()];

        let mut mg = MultigridPreconditioner::new(&a1, &MultigridConfig::default()).unwrap();
        mg.refresh(&a2).unwrap();
        let refreshed = solve_pcg(&a2, &b, &mg, &cfg).unwrap();
        let fresh_pre = MultigridPreconditioner::new(&a2, &MultigridConfig::default()).unwrap();
        let fresh = solve_pcg(&a2, &b, &fresh_pre, &cfg).unwrap();

        let scale = fresh.solution.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for (x, y) in refreshed.solution.iter().zip(&fresh.solution) {
            assert!((x - y).abs() <= 1e-7 * scale, "{x} vs {y}");
        }
        // The refreshed hierarchy must stay a real preconditioner, not
        // degrade to something Jacobi-like.
        assert!(
            refreshed.iterations <= fresh.iterations + 5,
            "refreshed {} vs fresh {}",
            refreshed.iterations,
            fresh.iterations
        );
    }

    #[test]
    fn refresh_rejects_pattern_mismatch() {
        let a = poisson2d(12, 12, 1.0);
        let other = poisson2d(12, 13, 1.0);
        let mut mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        assert!(!mg.hierarchy().pattern_matches(&other));
        let err = mg.refresh(&other).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn chebyshev_vcycle_preconditions_at_least_as_well_as_jacobi() {
        let a = poisson2d(24, 32, 50.0);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let cfg = IterativeConfig::new(10_000, 1e-11);
        let jacobi = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let cheby = MultigridPreconditioner::new(&a, &MultigridConfig::chebyshev(3)).unwrap();
        let r1 = solve_pcg(&a, &b, &jacobi, &cfg).unwrap();
        let r2 = solve_pcg(&a, &b, &cheby, &cfg).unwrap();
        assert!(
            r2.iterations <= r1.iterations,
            "chebyshev {} vs jacobi {} iterations",
            r2.iterations,
            r1.iterations
        );
        let scale = r1.solution.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for (x, y) in r1.solution.iter().zip(&r2.solution) {
            assert!((x - y).abs() <= 1e-6 * scale);
        }
    }

    #[test]
    fn threaded_and_serial_vcycles_agree() {
        for base in [MultigridConfig::default(), MultigridConfig::chebyshev(2)] {
            let serial_cfg = MultigridConfig {
                parallel_threshold: usize::MAX,
                ..base
            };
            let threaded_cfg = MultigridConfig {
                parallel_threshold: 1,
                ..base
            };
            let a = poisson2d(20, 30, 25.0);
            let n = a.rows();
            let serial = MultigridPreconditioner::new(&a, &serial_cfg).unwrap();
            let threaded = MultigridPreconditioner::new(&a, &threaded_cfg).unwrap();
            let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() * 3.0).collect();
            let mut z_serial = vec![0.0; n];
            let mut z_threaded = vec![0.0; n];
            serial.apply(&r, &mut z_serial);
            threaded.apply(&r, &mut z_threaded);
            for (s, t) in z_serial.iter().zip(&z_threaded) {
                assert!(
                    (s - t).abs() <= 1e-12 * s.abs().max(1.0),
                    "threaded V-cycle diverged from serial: {s} vs {t} ({base:?})"
                );
            }
        }
    }

    #[test]
    fn chebyshev_rejects_zero_degree() {
        let a = poisson2d(4, 4, 1.0);
        assert!(matches!(
            ChebyshevSmoother::new(&a, 0),
            Err(LinalgError::InvalidInput { .. })
        ));
        // The hierarchy build surfaces the same error instead of panicking.
        assert!(matches!(
            MultigridPreconditioner::new(&a, &MultigridConfig::chebyshev(0)),
            Err(LinalgError::InvalidInput { .. })
        ));
    }

    #[test]
    fn uncoarsenable_matrix_rejected_instead_of_dense_factorized() {
        // A large diagonal matrix has no connections to aggregate along;
        // the setup must refuse (it would otherwise build an O(n²) dense
        // factorization of the whole thing).
        let n = 2000;
        let mut coo = CooBuilder::new(n, n);
        for i in 0..n {
            coo.add(i, i, 2.0 + (i % 5) as f64);
        }
        let err =
            MultigridPreconditioner::new(&coo.to_csr(), &MultigridConfig::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn non_square_rejected() {
        let mut coo = CooBuilder::new(3, 2);
        coo.add(0, 0, 1.0);
        let err =
            MultigridPreconditioner::new(&coo.to_csr(), &MultigridConfig::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }
}
