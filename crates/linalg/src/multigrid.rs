//! Smoothed-aggregation multigrid for the structured finite-volume grids.
//!
//! The FEM reference solvers assemble symmetric positive-definite systems
//! on tensor-product grids — axisymmetric `(r, z)` and Cartesian
//! `(x, y, z)` — whose face conductances are wildly anisotropic (thin
//! device sheets, huge outer-ring areas, 400 : 1.4 conductivity jumps).
//! Coarsening therefore follows the *matrix*, not the index space:
//! aggregates are grown greedily along strong connections
//! (`|a_ij| ≥ θ·√(a_ii·a_jj)`), which on these grids automatically does
//! semi-coarsening along the stiff direction. The tentative
//! piecewise-constant prolongator is damped by one Jacobi sweep on the
//! strength-filtered operator (`P = (I − ω_P·D⁻¹·A_F)·P_tent`, smoothed
//! aggregation), restriction is the transpose, and every coarse operator
//! is the Galerkin product `Pᵀ·A·P` — so the whole hierarchy stays SPD.
//! Smoothing is weighted Jacobi with equal pre- and post-sweeps, making
//! one V-cycle a symmetric positive-definite operator: a valid
//! [`Preconditioner`] for [`solve_pcg`](crate::solve_pcg) and a convergent
//! standalone iteration (energy-norm contraction).
//!
//! The hierarchy (aggregates, prolongators, Galerkin operators,
//! coarsest-level dense LU, and all per-level scratch) is built once per
//! matrix in [`MultigridPreconditioner::new`] with scatter-based sparse
//! kernels and reused across every V-cycle, so the PCG inner loop stays
//! allocation-free.

use std::cell::RefCell;

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::lu::LuDecomposition;
use crate::precond::Preconditioner;
use crate::sparse::CsrMatrix;

/// Hierarchy and smoothing knobs for [`MultigridPreconditioner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridConfig {
    /// Maximum hierarchy depth including the coarsest level.
    pub max_levels: usize,
    /// Stop coarsening once a level has at most this many unknowns; that
    /// level is factorized densely and solved exactly.
    pub coarsest_size: usize,
    /// Weighted-Jacobi sweeps before restriction.
    pub pre_smooth: usize,
    /// Weighted-Jacobi sweeps after prolongation (keep equal to
    /// `pre_smooth` so the V-cycle stays symmetric for CG).
    pub post_smooth: usize,
    /// Jacobi damping factor `ω ∈ (0, 1]`.
    pub jacobi_weight: f64,
    /// Prolongator damping factor `ω_P ∈ (0, 1]` for the smoothed
    /// aggregation (2/3 is the classical choice for stencils with
    /// `ρ(D⁻¹A) ≈ 2`).
    pub prolongator_weight: f64,
    /// Strength-of-connection threshold `θ ∈ [0, 1)`: `j` is a strong
    /// neighbour of `i` when `|a_ij| ≥ θ·max_{k≠i}|a_ik|`. Relative to the
    /// row maximum (not the diagonal), so every non-isolated node keeps at
    /// least one strong neighbour and coarsening can never stall.
    pub strength_threshold: f64,
}

impl Default for MultigridConfig {
    fn default() -> Self {
        Self {
            max_levels: 12,
            coarsest_size: 48,
            pre_smooth: 1,
            post_smooth: 1,
            jacobi_weight: 0.7,
            prolongator_weight: 2.0 / 3.0,
            strength_threshold: 0.25,
        }
    }
}

/// A sparse operator stored by row (prolongators and intermediates); the
/// trimmed-down cousin of [`CsrMatrix`] used by the setup kernels.
#[derive(Debug, Clone, Default)]
struct RowMatrix {
    row_ptr: Vec<usize>,
    col: Vec<usize>,
    val: Vec<f64>,
    cols: usize,
}

impl RowMatrix {
    #[inline]
    fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col[lo..hi]
            .iter()
            .zip(&self.val[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// `rc = selfᵀ·r` (restriction when `self` is the prolongator).
    fn transpose_mul(&self, r: &[f64], rc: &mut [f64]) {
        rc.fill(0.0);
        for i in 0..r.len() {
            let ri = r[i];
            for (c, p) in self.row(i) {
                rc[c] += p * ri;
            }
        }
    }

    /// `z += self·zc` (prolongation).
    fn mul_add(&self, zc: &[f64], z: &mut [f64]) {
        for i in 0..z.len() {
            let mut acc = 0.0;
            for (c, p) in self.row(i) {
                acc += p * zc[c];
            }
            z[i] += acc;
        }
    }
}

/// Scatter accumulator for building sparse rows without sorting the whole
/// entry list: `mark` remembers which columns are live in the current row.
struct Scatter {
    dense: Vec<f64>,
    mark: Vec<u32>,
    stamp: u32,
    cols: Vec<usize>,
}

impl Scatter {
    fn new(n: usize) -> Self {
        Self {
            dense: vec![0.0; n],
            mark: vec![0; n],
            stamp: 0,
            cols: Vec::new(),
        }
    }

    #[inline]
    fn begin_row(&mut self) {
        self.stamp += 1;
        self.cols.clear();
    }

    #[inline]
    fn add(&mut self, col: usize, v: f64) {
        if self.mark[col] != self.stamp {
            self.mark[col] = self.stamp;
            self.dense[col] = v;
            self.cols.push(col);
        } else {
            self.dense[col] += v;
        }
    }

    /// Drains the current row into `(col, val)` pushes, columns sorted.
    fn flush(&mut self, col_out: &mut Vec<usize>, val_out: &mut Vec<f64>) {
        self.cols.sort_unstable();
        for &c in &self.cols {
            col_out.push(c);
            val_out.push(self.dense[c]);
        }
    }
}

/// Greedy strength-based aggregation (the classical smoothed-aggregation
/// three-pass scheme). Returns the aggregate id per unknown and the
/// aggregate count.
fn aggregate(a: &CsrMatrix, theta: f64) -> (Vec<usize>, usize) {
    let n = a.rows();
    let row_max = row_max_offdiag(a);
    let is_strong = |i: usize, j: usize, v: f64| -> bool {
        j != i && row_max[i] > 0.0 && v.abs() >= theta * row_max[i]
    };

    const UNASSIGNED: usize = usize::MAX;
    let mut agg = vec![UNASSIGNED; n];
    let mut count = 0;

    // Pass 1: a node with no aggregated strong neighbour seeds a new
    // aggregate containing its whole strong neighbourhood.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut blocked = false;
        for (j, v) in a.row_entries(i) {
            if is_strong(i, j, v) && agg[j] != UNASSIGNED {
                blocked = true;
                break;
            }
        }
        if blocked {
            continue;
        }
        agg[i] = count;
        for (j, v) in a.row_entries(i) {
            if is_strong(i, j, v) {
                agg[j] = count;
            }
        }
        count += 1;
    }

    // Pass 2: leftover nodes join the aggregate of their strongest
    // aggregated neighbour.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (j, v) in a.row_entries(i) {
            if is_strong(i, j, v) && agg[j] != UNASSIGNED {
                let w = v.abs();
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, agg[j]));
                }
            }
        }
        if let Some((_, id)) = best {
            agg[i] = id;
        }
    }

    // Pass 2b: nodes still alone (their strong neighbours were also
    // unaggregated) join their largest-magnitude assigned neighbour, strong
    // or not — this bounds the coarsening ratio away from 1.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (j, v) in a.row_entries(i) {
            if j != i && agg[j] != UNASSIGNED {
                let w = v.abs();
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, agg[j]));
                }
            }
        }
        if let Some((_, id)) = best {
            agg[i] = id;
        }
    }

    // Pass 3: whatever is left (isolated nodes) becomes singletons grown
    // over their still-unassigned strong neighbours.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        agg[i] = count;
        for (j, v) in a.row_entries(i) {
            if is_strong(i, j, v) && agg[j] == UNASSIGNED {
                agg[j] = count;
            }
        }
        count += 1;
    }

    (agg, count)
}

/// Largest off-diagonal magnitude per row (the strength reference).
fn row_max_offdiag(a: &CsrMatrix) -> Vec<f64> {
    (0..a.rows())
        .map(|i| {
            a.row_entries(i)
                .filter(|&(j, _)| j != i)
                .fold(0.0f64, |m, (_, v)| m.max(v.abs()))
        })
        .collect()
}

/// Builds the smoothed prolongator `P = (I − ω_P·D⁻¹·A_F)·P_tent`, where
/// `A_F` is the strength-filtered operator (weak off-diagonals lumped onto
/// the diagonal — the standard stabilization for anisotropic problems).
fn smoothed_prolongator(
    a: &CsrMatrix,
    agg: &[usize],
    n_agg: usize,
    theta: f64,
    omega_p: f64,
    inv_diag: &[f64],
) -> RowMatrix {
    let n = a.rows();
    let diag = a.diagonal();
    let row_max = row_max_offdiag(a);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0);
    let mut scatter = Scatter::new(n_agg);
    for i in 0..n {
        scatter.begin_row();
        // Filtered row: strong entries kept, weak ones lumped onto the
        // diagonal; then one damped Jacobi sweep applied to P_tent.
        let mut lumped_diag = diag[i];
        for (j, v) in a.row_entries(i) {
            if j == i {
                continue;
            }
            if row_max[i] > 0.0 && v.abs() >= theta * row_max[i] {
                scatter.add(agg[j], -omega_p * inv_diag[i] * v);
            } else {
                lumped_diag += v;
            }
        }
        scatter.add(agg[i], 1.0 - omega_p * inv_diag[i] * lumped_diag);
        scatter.flush(&mut col, &mut val);
        row_ptr.push(col.len());
    }
    RowMatrix {
        row_ptr,
        col,
        val,
        cols: n_agg,
    }
}

/// Galerkin triple product `Pᵀ·A·P` via two scatter passes (`T = A·P`,
/// then rows of `Pᵀ·T` gathered through the transpose adjacency of `P`).
fn galerkin(a: &CsrMatrix, p: &RowMatrix) -> CsrMatrix {
    let n = a.rows();
    let nc = p.cols;

    // T = A·P, row by row.
    let mut t = RowMatrix {
        row_ptr: Vec::with_capacity(n + 1),
        col: Vec::new(),
        val: Vec::new(),
        cols: nc,
    };
    t.row_ptr.push(0);
    let mut scatter = Scatter::new(nc);
    for i in 0..n {
        scatter.begin_row();
        for (j, a_ij) in a.row_entries(i) {
            for (c, p_jc) in p.row(j) {
                scatter.add(c, a_ij * p_jc);
            }
        }
        scatter.flush(&mut t.col, &mut t.val);
        t.row_ptr.push(t.col.len());
    }

    // Transpose adjacency of P: fine rows grouped by coarse column.
    let mut pt_ptr = vec![0usize; nc + 1];
    for &c in &p.col {
        pt_ptr[c + 1] += 1;
    }
    for c in 0..nc {
        pt_ptr[c + 1] += pt_ptr[c];
    }
    let mut pt_row = vec![0usize; p.col.len()];
    let mut pt_val = vec![0.0; p.col.len()];
    let mut cursor = pt_ptr.clone();
    for i in 0..n {
        for (c, v) in p.row(i) {
            let k = cursor[c];
            pt_row[k] = i;
            pt_val[k] = v;
            cursor[c] += 1;
        }
    }

    // A_c rows: (Pᵀ·T) row `c` accumulates `p_ic · T[i, :]`.
    let mut row_ptr = Vec::with_capacity(nc + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0);
    for c in 0..nc {
        scatter.begin_row();
        for k in pt_ptr[c]..pt_ptr[c + 1] {
            let (i, p_ic) = (pt_row[k], pt_val[k]);
            for (cj, t_icj) in t.row(i) {
                scatter.add(cj, p_ic * t_icj);
            }
        }
        scatter.flush(&mut col, &mut val);
        row_ptr.push(col.len());
    }
    CsrMatrix::from_parts(nc, nc, row_ptr, col, val)
}

/// One fine level of the hierarchy: its operator, Jacobi diagonal, and the
/// smoothed prolongator into the next-coarser level.
#[derive(Debug, Clone)]
struct Level {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    p: RowMatrix,
}

/// Per-level work vectors, reused across V-cycles.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Right-hand side per level (`rhs[0]` is a copy of the input residual).
    rhs: Vec<Vec<f64>>,
    /// Correction per level (`z[levels]` is the coarsest solution).
    z: Vec<Vec<f64>>,
    /// Residual scratch per fine level.
    res: Vec<Vec<f64>>,
}

/// A V-cycle of smoothed-aggregation multigrid, applied as a
/// preconditioner.
///
/// Build once per assembled matrix, then hand to
/// [`solve_pcg`](crate::solve_pcg) /
/// [`solve_pcg_into`](crate::solve_pcg_into):
///
/// ```
/// use ttsv_linalg::{solve_pcg, CooBuilder, IterativeConfig};
/// use ttsv_linalg::{MultigridConfig, MultigridPreconditioner};
///
/// // 1-D Poisson on 64 cells.
/// let n = 64;
/// let mut coo = CooBuilder::new(n, n);
/// for i in 0..n {
///     coo.add(i, i, 2.0);
///     if i + 1 < n {
///         coo.add(i, i + 1, -1.0);
///         coo.add(i + 1, i, -1.0);
///     }
/// }
/// let a = coo.to_csr();
/// let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
/// let report = solve_pcg(&a, &vec![1.0; n], &mg, &IterativeConfig::default()).unwrap();
/// assert!(a.residual_norm(&report.solution, &vec![1.0; n]).unwrap() < 1e-7);
/// ```
///
/// Not `Sync`: the per-level scratch is interior-mutable so
/// [`Preconditioner::apply`] can stay allocation-free. Build one instance
/// per solving thread (construction is cheap relative to a solve).
#[derive(Debug)]
pub struct MultigridPreconditioner {
    levels: Vec<Level>,
    /// Dense factorization of the coarsest operator.
    coarse: LuDecomposition,
    scratch: RefCell<Scratch>,
    pre_smooth: usize,
    post_smooth: usize,
    weight: f64,
}

impl MultigridPreconditioner {
    /// Builds the hierarchy for the SPD matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidInput`] if `a` is not square, a level has a
    ///   zero diagonal entry, or the matrix has too few strong connections
    ///   for aggregation to coarsen it (use a point preconditioner there).
    /// * [`LinalgError::Singular`] if the coarsest operator cannot be
    ///   factorized.
    pub fn new(a: &CsrMatrix, config: &MultigridConfig) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "multigrid needs a square matrix, got {}×{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        assert!(
            config.jacobi_weight > 0.0 && config.jacobi_weight <= 1.0,
            "Jacobi weight must be in (0, 1], got {}",
            config.jacobi_weight
        );
        assert!(
            (0.0..1.0).contains(&config.strength_threshold),
            "strength threshold must be in [0, 1), got {}",
            config.strength_threshold
        );
        assert!(config.max_levels >= 1, "need at least one level");
        assert!(
            config.pre_smooth == config.post_smooth,
            "pre_smooth ({}) must equal post_smooth ({}): unequal sweeps make the V-cycle \
             nonsymmetric, which silently invalidates CG",
            config.pre_smooth,
            config.post_smooth
        );

        let mut levels = Vec::new();
        let mut mat = a.clone();
        while mat.rows() > config.coarsest_size && levels.len() + 1 < config.max_levels {
            let (agg, n_agg) = aggregate(&mat, config.strength_threshold);
            if n_agg >= mat.rows() {
                break; // no reduction left
            }
            let inv_diag = jacobi_inverse_diagonal(&mat)?;
            let p = smoothed_prolongator(
                &mat,
                &agg,
                n_agg,
                config.strength_threshold,
                config.prolongator_weight,
                &inv_diag,
            );
            let coarse_mat = galerkin(&mat, &p);
            levels.push(Level {
                a: mat,
                inv_diag,
                p,
            });
            mat = coarse_mat;
        }

        // Guard the dense coarsest factorization: if coarsening stalled far
        // above the target size (a matrix with no usable connections, e.g.
        // near-diagonal), O(n²) dense memory would be pathological — tell
        // the caller to pick a point preconditioner instead.
        if mat.rows() > config.coarsest_size.max(1) * 8 {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "aggregation stalled at {} unknowns (target ≤ {}): the matrix has too few \
                     strong connections for multigrid — use a Jacobi/SSOR preconditioner",
                    mat.rows(),
                    config.coarsest_size
                ),
            });
        }
        let coarse_dense = DenseMatrix::from_fn(mat.rows(), mat.rows(), |i, j| mat.get(i, j));
        let coarse = coarse_dense.lu()?;

        let mut scratch = Scratch::default();
        for level in &levels {
            scratch.rhs.push(vec![0.0; level.a.rows()]);
            scratch.z.push(vec![0.0; level.a.rows()]);
            scratch.res.push(vec![0.0; level.a.rows()]);
        }
        scratch.rhs.push(vec![0.0; mat.rows()]); // coarsest right-hand side
        scratch.z.push(vec![0.0; mat.rows()]); // coarsest solution

        Ok(Self {
            levels,
            coarse,
            scratch: RefCell::new(scratch),
            pre_smooth: config.pre_smooth,
            post_smooth: config.post_smooth,
            weight: config.jacobi_weight,
        })
    }

    /// Number of levels in the hierarchy (1 = the matrix was small enough
    /// to factorize directly).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len() + 1
    }

    /// Unknown count of the coarsest (directly factorized) level.
    #[must_use]
    pub fn coarsest_unknowns(&self) -> usize {
        self.coarse.dim()
    }

    /// One damped-Jacobi sweep `z ← z + ω·D⁻¹·(rhs − A·z)`, with the first
    /// sweep from a zero guess collapsing to `z = ω·D⁻¹·rhs`.
    fn smooth(
        level: &Level,
        weight: f64,
        rhs: &[f64],
        z: &mut [f64],
        res: &mut [f64],
        sweeps: usize,
        zero_init: bool,
    ) {
        let n = rhs.len();
        let mut first = zero_init;
        for _ in 0..sweeps {
            if first {
                for i in 0..n {
                    z[i] = weight * level.inv_diag[i] * rhs[i];
                }
                first = false;
            } else {
                level.a.matvec_into(z, res);
                for i in 0..n {
                    z[i] += weight * level.inv_diag[i] * (rhs[i] - res[i]);
                }
            }
        }
        if zero_init && sweeps == 0 {
            z.fill(0.0);
        }
    }
}

fn jacobi_inverse_diagonal(a: &CsrMatrix) -> Result<Vec<f64>, LinalgError> {
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return Err(LinalgError::InvalidInput {
            reason: "multigrid smoothing requires a nonzero diagonal".to_string(),
        });
    }
    Ok(diag.iter().map(|d| 1.0 / d).collect())
}

impl Preconditioner for MultigridPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = if self.levels.is_empty() {
            self.coarse.dim()
        } else {
            self.levels[0].a.rows()
        };
        assert_eq!(r.len(), n, "multigrid: wrong residual length");
        assert_eq!(z.len(), n, "multigrid: wrong output length");

        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        let depth = self.levels.len();

        if depth == 0 {
            let x = self.coarse.solve(r).expect("coarse factorization is valid");
            z.copy_from_slice(&x);
            return;
        }

        // Downward sweep: pre-smooth from zero, restrict the residual.
        scratch.rhs[0].copy_from_slice(r);
        for l in 0..depth {
            let level = &self.levels[l];
            let (rhs_fine, rhs_coarse) = {
                let (head, tail) = scratch.rhs.split_at_mut(l + 1);
                (&head[l], &mut tail[0])
            };
            let (z_l, res_l) = (&mut scratch.z[l], &mut scratch.res[l]);
            Self::smooth(
                level,
                self.weight,
                rhs_fine,
                z_l,
                res_l,
                self.pre_smooth,
                true,
            );
            level.a.matvec_into(z_l, res_l);
            for i in 0..level.a.rows() {
                res_l[i] = rhs_fine[i] - res_l[i];
            }
            level.p.transpose_mul(res_l, rhs_coarse);
        }
        let x = self
            .coarse
            .solve(&scratch.rhs[depth])
            .expect("coarse factorization is valid");
        scratch.z[depth].copy_from_slice(&x);

        // Upward sweep: prolong the coarse correction, post-smooth.
        for l in (0..depth).rev() {
            let level = &self.levels[l];
            let (z_head, z_tail) = scratch.z.split_at_mut(l + 1);
            let z_l = &mut z_head[l];
            level.p.mul_add(&z_tail[0], z_l);
            Self::smooth(
                level,
                self.weight,
                &scratch.rhs[l],
                z_l,
                &mut scratch.res[l],
                self.post_smooth,
                false,
            );
        }
        z.copy_from_slice(&scratch.z[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{solve_cg, solve_pcg, IterativeConfig};
    use crate::sparse::CooBuilder;
    use crate::vector::{dot, norm2, sub};

    /// 2-D Poisson on an `nx × ny` grid with Dirichlet coupling on one
    /// edge and a vertical-coupling anisotropy `ay`.
    fn poisson2d(nx: usize, ny: usize, ay: f64) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooBuilder::new(n, n);
        let idx = |i: usize, j: usize| i + j * nx;
        for j in 0..ny {
            for i in 0..nx {
                let me = idx(i, j);
                let mut diag = 0.0;
                if j == 0 {
                    diag += 2.0 * ay; // sink below the first row
                }
                for (ni, nj, g) in [
                    (i.wrapping_sub(1), j, 1.0),
                    (i + 1, j, 1.0),
                    (i, j.wrapping_sub(1), ay),
                    (i, j + 1, ay),
                ] {
                    if ni < nx && nj < ny {
                        coo.add(me, idx(ni, nj), -g);
                        diag += g;
                    }
                }
                coo.add(me, me, diag);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn hierarchy_coarsens() {
        let a = poisson2d(16, 16, 1.0);
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        assert!(mg.level_count() >= 2, "16×16 should build a real hierarchy");
        assert!(mg.coarsest_unknowns() <= 48);
    }

    #[test]
    fn tiny_problem_degenerates_to_direct_solve() {
        let a = poisson2d(3, 3, 1.0);
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        assert_eq!(mg.level_count(), 1);
        // An exact preconditioner makes PCG converge immediately.
        let b = vec![1.0; 9];
        let report = solve_pcg(&a, &b, &mg, &IterativeConfig::default()).unwrap();
        assert!(report.iterations <= 1, "took {}", report.iterations);
    }

    #[test]
    fn mg_pcg_matches_plain_cg() {
        let a = poisson2d(12, 20, 1.0);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let cfg = IterativeConfig::new(10_000, 1e-11);
        let plain = solve_cg(&a, &b, &cfg).unwrap();
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let pre = solve_pcg(&a, &b, &mg, &cfg).unwrap();
        for (x, y) in plain.solution.iter().zip(&pre.solution) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
        assert!(
            pre.iterations < plain.iterations,
            "multigrid {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn anisotropy_is_handled() {
        // 100:1 anisotropy — the regime where point-smoothed full
        // coarsening stalls; strength-based aggregation must keep the
        // iteration count modest.
        let a = poisson2d(24, 24, 100.0);
        let b = vec![1.0; a.rows()];
        let cfg = IterativeConfig::new(10_000, 1e-11);
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let report = solve_pcg(&a, &b, &mg, &cfg).unwrap();
        assert!(
            report.iterations <= 30,
            "anisotropic MG-PCG took {} iterations",
            report.iterations
        );
    }

    #[test]
    fn vcycle_is_symmetric() {
        // ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ is required for CG.
        let a = poisson2d(10, 10, 5.0);
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let n = a.rows();
        let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91).cos()).collect();
        let mut mu = vec![0.0; n];
        let mut mv = vec![0.0; n];
        mg.apply(&u, &mut mu);
        mg.apply(&v, &mut mv);
        let lhs = dot(&mu, &v);
        let rhs = dot(&u, &mv);
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "asymmetric V-cycle: {lhs} vs {rhs}"
        );
        // And positive: ⟨M⁻¹u, u⟩ > 0.
        assert!(dot(&mu, &u) > 0.0);
    }

    #[test]
    fn stationary_vcycle_iteration_reduces_error_monotonically() {
        // The symmetric V-cycle is a contraction in the energy norm
        // ‖e‖_A = √(eᵀ·A·e) — the norm in which multigrid convergence is
        // guaranteed (the plain 2-norm of the residual may transiently grow
        // from a rough start). Track the error against a known solution.
        let a = poisson2d(16, 24, 10.0);
        let n = a.rows();
        let x_star: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 11) as f64).collect();
        let b = a.matvec(&x_star).unwrap();
        let mg = MultigridPreconditioner::new(&a, &MultigridConfig::default()).unwrap();
        let energy = |x: &[f64]| {
            let e = sub(&x_star, x);
            dot(&e, &a.matvec(&e).unwrap()).sqrt()
        };
        let mut x = vec![0.0; n];
        let mut prev = energy(&x);
        for cycle in 0..12 {
            let r = sub(&b, &a.matvec(&x).unwrap());
            let mut dz = vec![0.0; n];
            mg.apply(&r, &mut dz);
            for i in 0..n {
                x[i] += dz[i];
            }
            let now = energy(&x);
            assert!(
                now < prev,
                "cycle {cycle}: energy error grew from {prev:.3e} to {now:.3e}"
            );
            prev = now;
        }
        assert!(
            norm2(&sub(&b, &a.matvec(&x).unwrap())) < 1e-3 * norm2(&b),
            "12 cycles should reduce ‖r‖ a lot"
        );
    }

    #[test]
    fn uncoarsenable_matrix_rejected_instead_of_dense_factorized() {
        // A large diagonal matrix has no connections to aggregate along;
        // the setup must refuse (it would otherwise build an O(n²) dense
        // factorization of the whole thing).
        let n = 2000;
        let mut coo = CooBuilder::new(n, n);
        for i in 0..n {
            coo.add(i, i, 2.0 + (i % 5) as f64);
        }
        let err =
            MultigridPreconditioner::new(&coo.to_csr(), &MultigridConfig::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn non_square_rejected() {
        let mut coo = CooBuilder::new(3, 2);
        coo.add(0, 0, 1.0);
        let err =
            MultigridPreconditioner::new(&coo.to_csr(), &MultigridConfig::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }
}
