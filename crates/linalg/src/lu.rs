//! LU factorization with partial pivoting.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// Pivot magnitudes below this (relative to the matrix scale) are treated as
/// singular.
const SINGULARITY_RTOL: f64 = 1e-13;

/// An LU factorization `P·A = L·U` of a square matrix with partial
/// (row) pivoting.
///
/// ```
/// use ttsv_linalg::DenseMatrix;
/// let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = a.lu().unwrap();
/// let x = lu.solve(&[2.0, 2.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 / −1.0), used by `det`.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidInput`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is numerically zero.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidInput {
                reason: format!("LU needs a square matrix, got {}×{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for col in 0..n {
            // Find the pivot row.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= SINGULARITY_RTOL * scale {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                perm_sign = -perm_sign;
            }
            // Eliminate below the pivot.
            let pivot = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor; // store L
                for j in (col + 1)..n {
                    let u = lu[(col, j)];
                    lu[(r, j)] -= factor * u;
                }
            }
        }

        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "LU solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation, then forward-substitute L, then back-substitute U.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves for multiple right-hand sides, returning one solution per RHS.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any RHS has the wrong
    /// length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, LinalgError> {
        rhs.iter().map(|b| self.solve(b)).collect()
    }

    /// Determinant of the original matrix (product of U's diagonal with the
    /// permutation sign).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix (column-by-column solve).
    ///
    /// # Errors
    ///
    /// Never fails for a successfully constructed factorization; the
    /// `Result` mirrors [`LuDecomposition::solve`].
    pub fn inverse(&self) -> Result<DenseMatrix, LinalgError> {
        let n = self.dim();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_3x3() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        // Known solution: x = 2, y = 3, z = -1.
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.lu() {
            Err(LinalgError::Singular { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::InvalidInput { .. })));
    }

    #[test]
    fn det_matches_cofactor_expansion() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-12);
        // Permutation sign: swapping rows flips the sign.
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((b.lu().unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = DenseMatrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = a.lu().unwrap();
        let rhs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let xs = lu.solve_many(&rhs).unwrap();
        assert_eq!(xs[0], lu.solve(&[1.0, 0.0]).unwrap());
        assert_eq!(xs[1], lu.solve(&[0.0, 1.0]).unwrap());
    }

    #[test]
    fn rhs_length_validated() {
        let a = DenseMatrix::identity(3);
        assert!(matches!(
            a.lu().unwrap().solve(&[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
