//! Banded matrices with in-band LU (no pivoting).
//!
//! Model B's π-segment ladder produces a symmetric positive-definite matrix
//! whose half-bandwidth is 2 when nodes are numbered bulk/TSV interleaved
//! bottom-up; a banded factorization solves it in `O(n·b²)`.

use crate::error::LinalgError;

/// A square banded matrix with lower half-bandwidth `kl` and upper
/// half-bandwidth `ku`, stored row-compact: entry `(i, j)` with
/// `|i − j| ≤ band` lives at `data[i][j − i + kl]`.
///
/// Factorization is LU *without pivoting*: appropriate for the diagonally
/// dominant / SPD matrices produced by resistive ladders and finite-volume
/// stencils (no fill outside the band, no row swaps).
///
/// ```
/// use ttsv_linalg::BandedMatrix;
/// let mut m = BandedMatrix::zeros(3, 1, 1);
/// for i in 0..3 { m.set(i, i, 2.0); }
/// m.set(0, 1, -1.0); m.set(1, 0, -1.0);
/// m.set(1, 2, -1.0); m.set(2, 1, -1.0);
/// let x = m.solve(&[1.0, 0.0, 1.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    /// Row-compact storage, `n` rows × `kl + ku + 1` columns.
    data: Vec<f64>,
}

impl BandedMatrix {
    /// Creates an `n × n` zero matrix with the given half-bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        assert!(n > 0, "banded matrix dimension must be nonzero");
        Self {
            n,
            kl,
            ku,
            data: vec![0.0; n * (kl + ku + 1)],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Lower half-bandwidth.
    #[must_use]
    pub fn lower_bandwidth(&self) -> usize {
        self.kl
    }

    /// Upper half-bandwidth.
    #[must_use]
    pub fn upper_bandwidth(&self) -> usize {
        self.ku
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> Option<usize> {
        if i >= self.n || j >= self.n {
            return None;
        }
        let width = self.kl + self.ku + 1;
        let d = j as isize - i as isize;
        if d < -(self.kl as isize) || d > self.ku as isize {
            return None;
        }
        Some(i * width + (d + self.kl as isize) as usize)
    }

    /// Reads entry `(i, j)`; zero outside the band.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of bounds");
        self.offset(i, j).map_or(0.0, |o| self.data[o])
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds or outside the band.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let o = self.offset(i, j).unwrap_or_else(|| {
            panic!(
                "entry ({i}, {j}) outside band (kl={}, ku={}) of {}×{} matrix",
                self.kl, self.ku, self.n, self.n
            )
        });
        self.data[o] = value;
    }

    /// Adds `value` to entry `(i, j)` (stencil assembly helper).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds or outside the band.
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        let o = self.offset(i, j).unwrap_or_else(|| {
            panic!(
                "entry ({i}, {j}) outside band (kl={}, ku={}) of {}×{} matrix",
                self.kl, self.ku, self.n, self.n
            )
        });
        self.data[o] += value;
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded matvec",
                expected: self.n,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let jlo = i.saturating_sub(self.kl);
            let jhi = (i + self.ku).min(self.n - 1);
            let mut acc = 0.0;
            for j in jlo..=jhi {
                acc += self.get(i, j) * x[j];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Factorizes in place (LU, no pivoting) and solves `A·x = b`.
    ///
    /// Prefer [`BandedMatrix::factorize`] + repeated
    /// [`BandedLu::solve`](crate::banded::BandedLu::solve) when solving many
    /// right-hand sides.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    /// * [`LinalgError::Singular`] on a numerically zero pivot.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.clone().factorize()?.solve(b)
    }

    /// Consumes the matrix and produces an in-band LU factorization.
    ///
    /// The elimination runs on the flat row-compact storage directly
    /// (entry `(i, j)` lives at `i·w + (j − i + kl)` with
    /// `w = kl + ku + 1`), with no per-entry offset validation — this is
    /// the hot loop of the direct finite-volume solver.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] on a numerically zero pivot.
    pub fn factorize(mut self) -> Result<BandedLu, LinalgError> {
        let n = self.n;
        let (kl, ku) = (self.kl, self.ku);
        let w = kl + ku + 1;
        let scale = self
            .data
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let tiny = 1e-13 * scale;
        for k in 0..n {
            // Rows ≤ k stay read-only; rows > k receive the updates.
            let (head, tail) = self.data.split_at_mut((k + 1) * w);
            let row_k = &head[k * w..];
            let pivot = row_k[kl];
            if pivot.abs() <= tiny {
                return Err(LinalgError::Singular { pivot: k });
            }
            let inv_pivot = 1.0 / pivot;
            let ihi = (k + kl).min(n - 1);
            let jhi = (k + ku).min(n - 1);
            // Row k's update entries for columns k+1..=jhi are contiguous
            // starting at kl + 1; in row i the same columns start at
            // kl + k − i + 1. Expressing the rank-1 update as a pair of
            // slice zips lets the elimination auto-vectorize.
            let len = jhi - k;
            let src = &row_k[kl + 1..=kl + len];
            for (idx, row_i) in tail.chunks_exact_mut(w).take(ihi - k).enumerate() {
                // Column k in row i = k + 1 + idx sits at kl + k − i =
                // kl − 1 − idx; both index ranges are in-band by
                // construction (j ≤ k + ku, i ≤ k + kl).
                let ck = kl - 1 - idx;
                let factor = row_i[ck] * inv_pivot;
                row_i[ck] = factor;
                if factor != 0.0 {
                    let dst = &mut row_i[ck + 1..=ck + len];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d -= factor * s;
                    }
                }
            }
        }
        Ok(BandedLu { lu: self })
    }
}

/// The in-band LU factorization of a [`BandedMatrix`] (no pivoting).
#[derive(Debug, Clone)]
pub struct BandedLu {
    lu: BandedMatrix,
}

impl BandedLu {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.n
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "banded solve",
                expected: n,
                actual: b.len(),
            });
        }
        let (kl, ku) = (self.lu.kl, self.lu.ku);
        let w = kl + ku + 1;
        let data = &self.lu.data;
        let mut x = b.to_vec();
        // Forward substitution with unit-lower L (flat indexing; entry
        // `(i, j)` lives at `i·w + (j − i + kl)`; the in-band entries of a
        // row are contiguous, so both sweeps reduce to slice dot products).
        for i in 0..n {
            let jlo = i.saturating_sub(kl);
            let row = &data[i * w..(i + 1) * w];
            let dot: f64 = row[kl + jlo - i..kl]
                .iter()
                .zip(&x[jlo..i])
                .map(|(l, xj)| l * xj)
                .sum();
            x[i] -= dot;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let jhi = (i + ku).min(n - 1);
            let row = &data[i * w..(i + 1) * w];
            let dot: f64 = row[kl + 1..=kl + jhi - i]
                .iter()
                .zip(&x[i + 1..=jhi])
                .map(|(u, xj)| u * xj)
                .sum();
            x[i] = (x[i] - dot) / row[kl];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn banded_to_dense(b: &BandedMatrix) -> DenseMatrix {
        DenseMatrix::from_fn(b.dim(), b.dim(), |i, j| {
            if (i as isize - j as isize).unsigned_abs()
                <= b.lower_bandwidth().max(b.upper_bandwidth())
            {
                b.get(i, j)
            } else {
                0.0
            }
        })
    }

    fn ladder(n: usize) -> BandedMatrix {
        let mut m = BandedMatrix::zeros(n, 1, 1);
        for i in 0..n {
            m.set(i, i, 2.0);
            if i + 1 < n {
                m.set(i, i + 1, -1.0);
                m.set(i + 1, i, -1.0);
            }
        }
        m
    }

    #[test]
    fn out_of_band_reads_are_zero() {
        let m = ladder(5);
        assert_eq!(m.get(0, 4), 0.0);
        assert_eq!(m.get(4, 0), 0.0);
        assert_eq!(m.get(2, 2), 2.0);
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn out_of_band_writes_panic() {
        let mut m = ladder(5);
        m.set(0, 3, 1.0);
    }

    #[test]
    fn banded_solve_matches_dense_lu() {
        let m = ladder(12);
        let dense = banded_to_dense(&m);
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin() + 1.5).collect();
        let x_band = m.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_band.iter().zip(&x_dense) {
            assert!((a - d).abs() < 1e-10, "banded {a} vs dense {d}");
        }
    }

    #[test]
    fn wider_band_solve_matches_dense() {
        // Pentadiagonal SPD matrix.
        let n = 20;
        let mut m = BandedMatrix::zeros(n, 2, 2);
        for i in 0..n {
            m.set(i, i, 6.0);
            if i + 1 < n {
                m.set(i, i + 1, -2.0);
                m.set(i + 1, i, -2.0);
            }
            if i + 2 < n {
                m.set(i, i + 2, -1.0);
                m.set(i + 2, i, -1.0);
            }
        }
        let dense = banded_to_dense(&m);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let x_band = m.solve(&b).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_band.iter().zip(&x_dense) {
            assert!((a - d).abs() < 1e-10);
        }
    }

    #[test]
    fn factorize_once_solve_many() {
        let lu = ladder(8).factorize().unwrap();
        let b1 = vec![1.0; 8];
        let b2: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let m = ladder(8);
        let r1 = m.matvec(&lu.solve(&b1).unwrap()).unwrap();
        let r2 = m.matvec(&lu.solve(&b2).unwrap()).unwrap();
        for (got, want) in r1.iter().zip(&b1) {
            assert!((got - want).abs() < 1e-10);
        }
        for (got, want) in r2.iter().zip(&b2) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_banded_detected() {
        let mut m = BandedMatrix::zeros(2, 1, 1);
        m.set(0, 0, 1.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 1.0);
        assert!(matches!(
            m.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
