//! Derivative-free optimization: Nelder–Mead simplex and golden-section
//! line search.
//!
//! Used by the calibration pipeline to fit the paper's `k₁`/`k₂`
//! coefficients against the FEM reference (DESIGN.md §3).

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tolerance: f64,
    /// Terminate when the simplex's maximum edge length falls below this.
    pub x_tolerance: f64,
    /// Initial simplex edge length relative to each coordinate (absolute for
    /// zero coordinates).
    pub initial_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self {
            max_evaluations: 2000,
            f_tolerance: 1e-12,
            x_tolerance: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a [`nelder_mead`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Objective evaluations consumed.
    pub evaluations: usize,
    /// Whether a tolerance (rather than the evaluation budget) stopped the
    /// search.
    pub converged: bool,
}

/// Minimizes `f` from `x0` with the Nelder–Mead downhill-simplex method
/// (standard coefficients: reflection 1, expansion 2, contraction ½,
/// shrink ½).
///
/// Robust for the low-dimensional, noisy objectives produced by comparing a
/// compact model against FEM sweeps; makes no smoothness assumptions.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    config: &NelderMeadConfig,
) -> NelderMeadResult {
    assert!(!x0.is_empty(), "nelder_mead needs at least one dimension");
    let n = x0.len();
    let mut evaluations = 0;
    let mut eval = |x: &[f64], count: &mut usize| {
        *count += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY // treat NaN objectives as "worst possible"
        } else {
            v
        }
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut p = x0.to_vec();
        let step = if p[i] != 0.0 {
            config.initial_step * p[i].abs()
        } else {
            config.initial_step
        };
        p[i] += step;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex.iter().map(|p| eval(p, &mut evaluations)).collect();

    let mut converged = false;
    while evaluations < config.max_evaluations {
        // Order: best first.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence checks.
        let f_spread = values[worst] - values[best];
        let x_spread = simplex
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if f_spread.abs() <= config.f_tolerance || x_spread <= config.x_tolerance {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (idx, p) in simplex.iter().enumerate() {
            if idx != worst {
                for (c, v) in centroid.iter_mut().zip(p) {
                    *c += v / n as f64;
                }
            }
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &simplex[worst], -1.0);
        let f_reflected = eval(&reflected, &mut evaluations);
        if f_reflected < values[best] {
            // Expansion.
            let expanded = lerp(&centroid, &simplex[worst], -2.0);
            let f_expanded = eval(&expanded, &mut evaluations);
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction (outside if the reflection improved on the worst,
            // inside otherwise).
            let (towards, f_towards) = if f_reflected < values[worst] {
                (lerp(&centroid, &reflected, 0.5), f_reflected)
            } else {
                (lerp(&centroid, &simplex[worst], 0.5), values[worst])
            };
            let f_contracted = eval(&towards, &mut evaluations);
            if f_contracted < f_towards {
                simplex[worst] = towards;
                values[worst] = f_contracted;
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[best].clone();
                for idx in 0..=n {
                    if idx != best {
                        simplex[idx] = lerp(&best_point, &simplex[idx], 0.5);
                        values[idx] = eval(&simplex[idx], &mut evaluations);
                    }
                }
            }
        }
    }

    let (best_idx, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("simplex is nonempty");
    NelderMeadResult {
        x: simplex[best_idx].clone(),
        f: values[best_idx],
        evaluations,
        converged,
    }
}

/// Result of a [`golden_section`] search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenSectionResult {
    /// Location of the minimum.
    pub x: f64,
    /// Objective value at `x`.
    pub f: f64,
    /// Objective evaluations consumed.
    pub evaluations: usize,
}

/// Minimizes a unimodal 1-D function on `[lo, hi]` by golden-section search,
/// stopping when the bracket is narrower than `x_tolerance`.
///
/// # Panics
///
/// Panics if `lo >= hi` or `x_tolerance <= 0`.
pub fn golden_section(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    x_tolerance: f64,
) -> GoldenSectionResult {
    assert!(lo < hi, "golden_section needs lo < hi, got [{lo}, {hi}]");
    assert!(x_tolerance > 0.0, "x_tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_9; // (√5 − 1)/2

    let mut a = lo;
    let mut b = hi;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    let mut evaluations = 2;

    while (b - a) > x_tolerance {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
        evaluations += 1;
    }

    let x = 0.5 * (a + b);
    let fx = f(x);
    GoldenSectionResult {
        x,
        f: fx,
        evaluations: evaluations + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_minimizes_quadratic_bowl() {
        let result = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadConfig::default(),
        );
        assert!(result.converged);
        assert!((result.x[0] - 3.0).abs() < 1e-4, "x0 = {}", result.x[0]);
        assert!((result.x[1] + 1.0).abs() < 1e-4, "x1 = {}", result.x[1]);
        assert!(result.f < 1e-8);
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        // The classic banana valley: needs the full simplex machinery.
        let result = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            &NelderMeadConfig {
                max_evaluations: 5000,
                ..Default::default()
            },
        );
        assert!((result.x[0] - 1.0).abs() < 1e-3, "x = {:?}", result.x);
        assert!((result.x[1] - 1.0).abs() < 1e-3, "x = {:?}", result.x);
    }

    #[test]
    fn nelder_mead_respects_evaluation_budget() {
        let mut count = 0usize;
        let result = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[10.0],
            &NelderMeadConfig {
                max_evaluations: 20,
                f_tolerance: 0.0,
                x_tolerance: 0.0,
                ..Default::default()
            },
        );
        // Budget may be exceeded by at most one shrink round (n evals).
        assert!(count <= 22, "spent {count} evaluations");
        assert!(!result.converged);
    }

    #[test]
    fn nelder_mead_survives_nan_regions() {
        // Objective undefined (NaN) for x < 0; minimum at x = 1.
        let result = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[2.0],
            &NelderMeadConfig::default(),
        );
        assert!((result.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let result = golden_section(|x| (x - 2.5).powi(2) + 1.0, 0.0, 10.0, 1e-8);
        assert!((result.x - 2.5).abs() < 1e-6);
        assert!((result.f - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_handles_boundary_minimum() {
        let result = golden_section(|x| x, 1.0, 2.0, 1e-8);
        assert!((result.x - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn golden_section_rejects_empty_interval() {
        let _ = golden_section(|x| x, 1.0, 1.0, 1e-8);
    }
}
