//! Block-tridiagonal systems with 2×2 blocks (block Thomas algorithm).
//!
//! Model B's π-segment ladder couples each segment's bulk and via nodes to
//! their neighbours one segment below, so with the interleaved numbering
//! `[T₀, dummy, B₁, V₁, B₂, V₂, …]` the KCL matrix is block tridiagonal
//! with 2×2 blocks. The dedicated factorization below does one 2×2 inverse
//! and two 2×2 multiplies per block — a flat `O(n)` pass with none of the
//! per-entry offset arithmetic of the generic banded LU, which is why it
//! replaced [`BandedMatrix`](crate::BandedMatrix) as Model B's default
//! solver.
//!
//! No pivoting is performed (none is needed for the symmetric
//! positive-definite ladders this is built for); a numerically singular
//! pivot block is reported as [`LinalgError::Singular`].

use crate::error::LinalgError;

/// A 2×2 matrix stored row-major: `[a00, a01, a10, a11]`.
type Block = [f64; 4];

#[inline]
fn block_mul(a: &Block, b: &Block) -> Block {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

#[inline]
fn block_inv(a: &Block) -> Option<Block> {
    let det = a[0] * a[3] - a[1] * a[2];
    if det == 0.0 {
        return None;
    }
    let inv = 1.0 / det;
    Some([a[3] * inv, -a[1] * inv, -a[2] * inv, a[0] * inv])
}

/// A square block-tridiagonal matrix of `2×2` blocks.
///
/// Entries are addressed by *global* row/column indices (`dim() = 2 ×`
/// block count); writes outside the three block diagonals panic, mirroring
/// [`BandedMatrix`](crate::BandedMatrix).
///
/// ```
/// use ttsv_linalg::BlockTridiagonal;
///
/// // The 4×4 ladder  [2 -1; -1 2] ⊗ blocks.
/// let mut m = BlockTridiagonal::zeros(2);
/// for i in 0..4 { m.add(i, i, 2.0); }
/// for i in 0..3 { m.add(i, i + 1, -1.0); m.add(i + 1, i, -1.0); }
/// let x = m.solve(&[1.0, 0.0, 0.0, 1.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTridiagonal {
    nb: usize,
    /// Diagonal blocks `D₀ … D_{nb−1}`.
    diag: Vec<Block>,
    /// Sub-diagonal blocks: `lower[i]` couples block `i + 1` to block `i`.
    lower: Vec<Block>,
    /// Super-diagonal blocks: `upper[i]` couples block `i` to block `i + 1`.
    upper: Vec<Block>,
}

impl BlockTridiagonal {
    /// Creates a zero matrix of `n_blocks` 2×2 blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero.
    #[must_use]
    pub fn zeros(n_blocks: usize) -> Self {
        assert!(n_blocks > 0, "block-tridiagonal matrix needs blocks");
        Self {
            nb: n_blocks,
            diag: vec![[0.0; 4]; n_blocks],
            lower: vec![[0.0; 4]; n_blocks.saturating_sub(1)],
            upper: vec![[0.0; 4]; n_blocks.saturating_sub(1)],
        }
    }

    /// Builds the matrix from pre-assembled row-major 2×2 blocks —
    /// `lower[i]` couples block `i + 1` to block `i`, `upper[i]` the
    /// reverse. The fastest assembly path: callers that know their stencil
    /// (Model B's ladder) fill the arrays directly instead of paying the
    /// per-entry [`BlockTridiagonal::add`] bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty or the off-diagonal lengths are not
    /// exactly `diag.len() − 1`.
    #[must_use]
    pub fn from_blocks(diag: Vec<[f64; 4]>, lower: Vec<[f64; 4]>, upper: Vec<[f64; 4]>) -> Self {
        assert!(!diag.is_empty(), "block-tridiagonal matrix needs blocks");
        assert_eq!(lower.len(), diag.len() - 1, "lower block count mismatch");
        assert_eq!(upper.len(), diag.len() - 1, "upper block count mismatch");
        Self {
            nb: diag.len(),
            diag,
            lower,
            upper,
        }
    }

    /// Matrix dimension (`2 ×` block count).
    #[must_use]
    pub fn dim(&self) -> usize {
        2 * self.nb
    }

    /// Number of 2×2 blocks along the diagonal.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.nb
    }

    #[inline]
    fn slot(&self, i: usize, j: usize) -> Option<(&Block, usize)> {
        let (bi, bj) = (i / 2, j / 2);
        let e = (i % 2) * 2 + (j % 2);
        match bj as isize - bi as isize {
            0 => Some((&self.diag[bi], e)),
            1 => Some((&self.upper[bi], e)),
            -1 => Some((&self.lower[bj], e)),
            _ => None,
        }
    }

    /// Reads entry `(i, j)`; zero outside the block band.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.dim() && j < self.dim(),
            "index ({i}, {j}) out of bounds"
        );
        self.slot(i, j).map_or(0.0, |(b, e)| b[e])
    }

    /// Adds `value` to global entry `(i, j)` (stencil-assembly helper).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds or outside the block band.
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.dim() && j < self.dim(),
            "index ({i}, {j}) out of bounds"
        );
        let (bi, bj) = (i / 2, j / 2);
        let e = (i % 2) * 2 + (j % 2);
        let block = match bj as isize - bi as isize {
            0 => &mut self.diag[bi],
            1 => &mut self.upper[bi],
            -1 => &mut self.lower[bj],
            _ => panic!(
                "entry ({i}, {j}) outside the block-tridiagonal band of a {n}×{n} matrix",
                n = 2 * self.nb
            ),
        };
        block[e] += value;
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal matvec",
                expected: self.dim(),
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.dim()];
        for b in 0..self.nb {
            let (x0, x1) = (x[2 * b], x[2 * b + 1]);
            let d = &self.diag[b];
            y[2 * b] += d[0] * x0 + d[1] * x1;
            y[2 * b + 1] += d[2] * x0 + d[3] * x1;
            if b + 1 < self.nb {
                let (u, l) = (&self.upper[b], &self.lower[b]);
                let (c0, c1) = (x[2 * b + 2], x[2 * b + 3]);
                y[2 * b] += u[0] * c0 + u[1] * c1;
                y[2 * b + 1] += u[2] * c0 + u[3] * c1;
                y[2 * b + 2] += l[0] * x0 + l[1] * x1;
                y[2 * b + 3] += l[2] * x0 + l[3] * x1;
            }
        }
        Ok(y)
    }

    /// Factorizes and solves `A·x = b` in one call.
    ///
    /// Prefer [`BlockTridiagonal::factorize`] + repeated
    /// [`BlockTridiagonalLu::solve`] when solving many right-hand sides.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    /// * [`LinalgError::Singular`] on a numerically singular pivot block.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.clone().factorize()?.solve(b)
    }

    /// Consumes the matrix and produces its block-LU factorization
    /// (block Thomas algorithm, no pivoting).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] on a numerically singular pivot
    /// block; the reported pivot is the block's first global row.
    pub fn factorize(mut self) -> Result<BlockTridiagonalLu, LinalgError> {
        let nb = self.nb;
        // SPD-oriented scale reference: the largest diagonal magnitude
        // (cheap, and for the resistive ladders the diagonal always
        // carries the row's dominant entry).
        let scale = self
            .diag
            .iter()
            .flatten()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let tiny = 1e-26 * scale * scale;
        let singular = |block: usize| LinalgError::Singular { pivot: 2 * block };

        // In-place elimination: `diag[b]` is overwritten by the inverted
        // pivot block, `lower[b−1]` by the elimination factor
        // `Lᵇ = lower[b−1]·inv(pivot_{b−1})`; `upper` is read-only.
        let mut pivot = self.diag[0];
        for b in 0..nb {
            if b > 0 {
                // Resistive-ladder off-diagonal blocks are themselves
                // diagonal (bulk couples to bulk, via to via), so the
                // specialised 4-multiply products cover almost every block;
                // the generic 2×2 product handles the rest.
                let l = &self.lower[b - 1];
                let inv: &Block = &self.diag[b - 1];
                let lf = if l[1] == 0.0 && l[2] == 0.0 {
                    [l[0] * inv[0], l[0] * inv[1], l[3] * inv[2], l[3] * inv[3]]
                } else {
                    block_mul(l, inv)
                };
                let u = &self.upper[b - 1];
                let lu = if u[1] == 0.0 && u[2] == 0.0 {
                    [lf[0] * u[0], lf[1] * u[3], lf[2] * u[0], lf[3] * u[3]]
                } else {
                    block_mul(&lf, u)
                };
                pivot = self.diag[b];
                for e in 0..4 {
                    pivot[e] -= lu[e];
                }
                self.lower[b - 1] = lf;
            }
            let det = pivot[0] * pivot[3] - pivot[1] * pivot[2];
            if det.abs() <= tiny {
                return Err(singular(b));
            }
            self.diag[b] = block_inv(&pivot).ok_or_else(|| singular(b))?;
        }

        Ok(BlockTridiagonalLu {
            nb,
            inv_pivot: self.diag,
            lower_fact: self.lower,
            upper: self.upper,
        })
    }
}

/// The block-LU factorization of a [`BlockTridiagonal`] matrix.
#[derive(Debug, Clone)]
pub struct BlockTridiagonalLu {
    nb: usize,
    /// Inverted pivot blocks `(D'_b)⁻¹`.
    inv_pivot: Vec<Block>,
    /// `L_b · (D'_{b−1})⁻¹` factors, one per sub-diagonal block.
    lower_fact: Vec<Block>,
    /// The original super-diagonal blocks.
    upper: Vec<Block>,
}

impl BlockTridiagonalLu {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        2 * self.nb
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves four right-hand sides with a single pass over the factors:
    /// each factor block is loaded once and applied to four independent
    /// elimination chains, which both amortizes the memory traffic and
    /// gives the core four dependency chains to overlap — the
    /// multi-right-hand-side shape the chip engine's factor-once batches
    /// produce. Every lane runs exactly the arithmetic of
    /// [`BlockTridiagonalLu::solve_in_place`], so lane results are
    /// bit-identical to four separate solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any lane's length
    /// mismatches.
    pub fn solve_in_place_x4(&self, xs: [&mut [f64]; 4]) -> Result<(), LinalgError> {
        for x in &xs {
            if x.len() != self.dim() {
                return Err(LinalgError::DimensionMismatch {
                    operation: "block-tridiagonal multi-RHS solve",
                    expected: self.dim(),
                    actual: x.len(),
                });
            }
        }
        let [x0, x1, x2, x3] = xs;
        let n = self.dim();
        let mut z = vec![0.0; 4 * n];
        for i in 0..n {
            z[4 * i] = x0[i];
            z[4 * i + 1] = x1[i];
            z[4 * i + 2] = x2[i];
            z[4 * i + 3] = x3[i];
        }
        self.solve_interleaved_x4(&mut z)?;
        for i in 0..n {
            x0[i] = z[4 * i];
            x1[i] = z[4 * i + 1];
            x2[i] = z[4 * i + 2];
            x3[i] = z[4 * i + 3];
        }
        Ok(())
    }

    /// The lane-interleaved core of
    /// [`BlockTridiagonalLu::solve_in_place_x4`]: `z` holds four
    /// right-hand sides with global unknown `i` of lane `l` at slot
    /// `4·i + l`, so every per-lane operation runs over four contiguous
    /// values — a vectorizable stride-1 micro-kernel with no marshalling.
    /// Callers that can assemble and read results in this layout (Model
    /// B's batched ladder solves) skip the transposes entirely.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] unless
    /// `z.len() == 4 · dim()`.
    pub fn solve_interleaved_x4(&self, z: &mut [f64]) -> Result<(), LinalgError> {
        if z.len() != 4 * self.dim() {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal interleaved multi-RHS solve",
                expected: 4 * self.dim(),
                actual: z.len(),
            });
        }
        // Forward: y_b = b_b − Lᵇ·y_{b−1}, four lanes per factor load.
        for b in 1..self.nb {
            let lf = &self.lower_fact[b - 1];
            let (prev, cur) = z.split_at_mut(4 * (2 * b));
            let p = &prev[4 * (2 * b - 2)..];
            for l in 0..4 {
                let (p0, p1) = (p[l], p[4 + l]);
                cur[l] -= lf[0] * p0 + lf[1] * p1;
                cur[4 + l] -= lf[2] * p0 + lf[3] * p1;
            }
        }
        // Backward: x_b = (D'_b)⁻¹ · (y_b − U_b·x_{b+1}).
        for b in (0..self.nb).rev() {
            let inv = &self.inv_pivot[b];
            if b + 1 < self.nb {
                let u = &self.upper[b];
                let (cur, next) = z[4 * (2 * b)..].split_at_mut(8);
                for l in 0..4 {
                    let (c0, c1) = (next[l], next[4 + l]);
                    let t0 = cur[l] - (u[0] * c0 + u[1] * c1);
                    let t1 = cur[4 + l] - (u[2] * c0 + u[3] * c1);
                    cur[l] = inv[0] * t0 + inv[1] * t1;
                    cur[4 + l] = inv[2] * t0 + inv[3] * t1;
                }
            } else {
                let cur = &mut z[4 * (2 * b)..4 * (2 * b) + 8];
                for l in 0..4 {
                    let (t0, t1) = (cur[l], cur[4 + l]);
                    cur[l] = inv[0] * t0 + inv[1] * t1;
                    cur[4 + l] = inv[2] * t0 + inv[3] * t1;
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with `x` holding `b` on entry and the solution on
    /// exit (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-tridiagonal solve",
                expected: self.dim(),
                actual: x.len(),
            });
        }
        // Forward: y_b = b_b − Lᵇ·y_{b−1}.
        for b in 1..self.nb {
            let lf = &self.lower_fact[b - 1];
            let (p0, p1) = (x[2 * b - 2], x[2 * b - 1]);
            x[2 * b] -= lf[0] * p0 + lf[1] * p1;
            x[2 * b + 1] -= lf[2] * p0 + lf[3] * p1;
        }
        // Backward: x_b = (D'_b)⁻¹ · (y_b − U_b·x_{b+1}).
        for b in (0..self.nb).rev() {
            let (mut t0, mut t1) = (x[2 * b], x[2 * b + 1]);
            if b + 1 < self.nb {
                let u = &self.upper[b];
                let (c0, c1) = (x[2 * b + 2], x[2 * b + 3]);
                t0 -= u[0] * c0 + u[1] * c1;
                t1 -= u[2] * c0 + u[3] * c1;
            }
            let inv = &self.inv_pivot[b];
            x[2 * b] = inv[0] * t0 + inv[1] * t1;
            x[2 * b + 1] = inv[2] * t0 + inv[3] * t1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::BandedMatrix;

    /// Mirrors a block-tridiagonal matrix into the generic banded storage.
    fn to_banded(m: &BlockTridiagonal) -> BandedMatrix {
        let n = m.dim();
        let mut banded = BandedMatrix::zeros(n, 3, 3);
        for i in 0..n {
            for j in i.saturating_sub(3)..(i + 4).min(n) {
                let v = m.get(i, j);
                if v != 0.0 {
                    banded.set(i, j, v);
                }
            }
        }
        banded
    }

    /// An SPD ladder in the Model B pattern: interleaved bulk/via chains
    /// with lateral coupling and a grounded first block.
    fn ladder(n_blocks: usize) -> BlockTridiagonal {
        let mut m = BlockTridiagonal::zeros(n_blocks);
        let couple = |m: &mut BlockTridiagonal, i: usize, j: usize, g: f64| {
            m.add(i, i, g);
            m.add(j, j, g);
            m.add(i, j, -g);
            m.add(j, i, -g);
        };
        m.add(0, 0, 2.5); // ground anchor
        m.add(1, 1, 1.0); // decoupled dummy
        for b in 1..n_blocks {
            let (bulk, via) = (2 * b, 2 * b + 1);
            let (pb, pv) = if b == 1 {
                (0, 0)
            } else {
                (2 * b - 2, 2 * b - 1)
            };
            couple(&mut m, bulk, pb, 1.0 + b as f64 * 0.25);
            couple(&mut m, via, pv, 3.0 / b as f64);
            couple(&mut m, bulk, via, 0.125 * b as f64);
        }
        m
    }

    #[test]
    fn solve_matches_generic_banded_lu() {
        let m = ladder(9);
        let banded = to_banded(&m);
        let b: Vec<f64> = (0..m.dim()).map(|i| ((i * 5) % 7) as f64 - 3.0).collect();
        let x_block = m.solve(&b).unwrap();
        let x_band = banded.solve(&b).unwrap();
        for (a, g) in x_block.iter().zip(&x_band) {
            assert!((a - g).abs() < 1e-10, "block {a} vs banded {g}");
        }
    }

    #[test]
    fn factorize_once_solve_many() {
        let m = ladder(6);
        let lu = m.clone().factorize().unwrap();
        for seed in 0..3 {
            let b: Vec<f64> = (0..m.dim()).map(|i| ((i + seed) as f64).cos()).collect();
            let x = lu.solve(&b).unwrap();
            let ax = m.matvec(&x).unwrap();
            for (got, want) in ax.iter().zip(&b) {
                assert!((got - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn four_lane_solve_is_bitwise_identical_to_four_single_solves() {
        let m = ladder(23);
        let lu = m.factorize().unwrap();
        let n = lu.dim();
        let mut lanes: Vec<Vec<f64>> = (0..4)
            .map(|l| {
                (0..n)
                    .map(|i| ((i * 3 + l * 7) as f64).sin() * 2.0)
                    .collect()
            })
            .collect();
        let singles: Vec<Vec<f64>> = lanes.iter().map(|b| lu.solve(b).unwrap()).collect();
        let [a, b, c, d] = &mut lanes[..] else {
            unreachable!()
        };
        lu.solve_in_place_x4([a, b, c, d]).unwrap();
        for (lane, single) in lanes.iter().zip(&singles) {
            for (x, y) in lane.iter().zip(single) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn solve_in_place_avoids_allocation_and_matches_solve() {
        let m = ladder(5);
        let b: Vec<f64> = (0..m.dim()).map(|i| i as f64 * 0.5 - 2.0).collect();
        let lu = m.factorize().unwrap();
        let x = lu.solve(&b).unwrap();
        let mut y = b.clone();
        lu.solve_in_place(&mut y).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn out_of_band_reads_are_zero_and_writes_panic() {
        let m = ladder(4);
        assert_eq!(m.get(0, 7), 0.0);
        assert_eq!(m.get(7, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the block-tridiagonal band")]
    fn far_off_diagonal_write_panics() {
        let mut m = BlockTridiagonal::zeros(3);
        m.add(0, 4, 1.0);
    }

    #[test]
    fn singular_pivot_block_detected() {
        let mut m = BlockTridiagonal::zeros(2);
        // First block is all-zero → singular at global row 0.
        m.add(2, 2, 1.0);
        m.add(3, 3, 1.0);
        match m.solve(&[1.0; 4]) {
            Err(LinalgError::Singular { pivot }) => assert_eq!(pivot, 0),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn rhs_length_mismatch_rejected() {
        let m = ladder(3);
        assert!(matches!(
            m.solve(&[1.0; 5]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
