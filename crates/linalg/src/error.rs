//! Error type shared by the linear-algebra routines.

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A factorization hit a zero (or numerically negligible) pivot.
    Singular {
        /// Index of the offending pivot row/column.
        pivot: usize,
    },
    /// Operand shapes are incompatible.
    DimensionMismatch {
        /// What was being attempted, e.g. `"matvec"`.
        operation: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm when the budget ran out.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// The input matrix violates a structural requirement (e.g. a CG solve
    /// on a matrix that is not symmetric positive-definite).
    InvalidInput {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::DimensionMismatch {
                operation,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {operation}: expected {expected}, got {actual}"
            ),
            LinalgError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e} > tolerance {tolerance:.3e})"
            ),
            LinalgError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot 3");

        let e = LinalgError::NotConverged {
            iterations: 100,
            residual: 1e-3,
            tolerance: 1e-9,
        };
        assert!(e.to_string().contains("100 iterations"));

        let e = LinalgError::DimensionMismatch {
            operation: "matvec",
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("matvec"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(LinalgError::Singular { pivot: 0 });
    }
}
