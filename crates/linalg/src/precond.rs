//! Preconditioners for the conjugate-gradient solver.

use crate::sparse::CsrMatrix;

/// A preconditioner: an approximation `M ≈ A` whose inverse is cheap to
/// apply. [`solve_pcg`](crate::solve_pcg) calls [`Preconditioner::apply`]
/// once per iteration with the current residual.
pub trait Preconditioner {
    /// Computes `z = M⁻¹ r`, writing into `z`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `r.len() != z.len()` or the length does
    /// not match the matrix the preconditioner was built from.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The trivial preconditioner `M = I` (turns PCG into plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner: `M = diag(A)`.
///
/// Cheap and effective for the strongly diagonally dominant matrices that
/// finite-volume heat stencils produce.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the diagonal of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or has a zero diagonal entry.
    #[must_use]
    pub fn new(a: &CsrMatrix) -> Self {
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0),
            "Jacobi preconditioner requires a nonzero diagonal"
        );
        Self {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
        }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(
            r.len(),
            self.inv_diag.len(),
            "Jacobi: wrong residual length"
        );
        assert_eq!(z.len(), self.inv_diag.len(), "Jacobi: wrong output length");
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }
}

/// Symmetric SOR preconditioner
/// `M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + Lᵀ) · ω/(2−ω)`
/// applied via one forward and one backward triangular sweep.
///
/// Noticeably fewer CG iterations than Jacobi on the FEM systems at the cost
/// of two triangular solves per iteration. Requires a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SsorPreconditioner {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl SsorPreconditioner {
    /// Builds the preconditioner with relaxation factor `omega ∈ (0, 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `(0, 2)`, if `a` is not square, or if a
    /// diagonal entry is zero.
    #[must_use]
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SSOR relaxation factor must be in (0, 2), got {omega}"
        );
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0),
            "SSOR preconditioner requires a nonzero diagonal"
        );
        Self {
            a: a.clone(),
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
            omega,
        }
    }
}

impl Preconditioner for SsorPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.inv_diag.len();
        assert_eq!(r.len(), n, "SSOR: wrong residual length");
        assert_eq!(z.len(), n, "SSOR: wrong output length");
        let w = self.omega;

        // M⁻¹ = ω(2−ω) · (D + ωU)⁻¹ · D · (D + ωL)⁻¹
        // Forward sweep: y = (D + ωL)⁻¹ r.
        for i in 0..n {
            let mut sum = r[i];
            for (j, v) in self.a.row_entries(i) {
                if j < i {
                    sum -= w * v * z[j];
                }
            }
            z[i] = sum * self.inv_diag[i];
        }
        // Middle scaling: z ← ω(2−ω) · D · y.
        for i in 0..n {
            z[i] *= w * (2.0 - w) / self.inv_diag[i];
        }
        // Backward sweep: z ← (D + ωU)⁻¹ z.
        for i in (0..n).rev() {
            let mut sum = z[i];
            for (j, v) in self.a.row_entries(i) {
                if j > i {
                    sum -= w * v * z[j];
                }
            }
            z[i] = sum * self.inv_diag[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooBuilder;

    fn spd_ladder(n: usize) -> CsrMatrix {
        let mut coo = CooBuilder::new(n, n);
        for i in 0..n {
            coo.add(i, i, 4.0);
            if i + 1 < n {
                coo.add(i, i + 1, -1.0);
                coo.add(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn identity_copies_residual() {
        let mut z = vec![0.0; 3];
        IdentityPreconditioner.apply(&[1.0, -2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = spd_ladder(3);
        let p = JacobiPreconditioner::new(&a);
        let mut z = vec![0.0; 3];
        p.apply(&[4.0, 8.0, -4.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, -1.0]);
    }

    #[test]
    fn ssor_apply_is_symmetric_positive() {
        // A valid CG preconditioner application must itself be an SPD
        // operator: check symmetry ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ and positivity on a
        // few vectors.
        let a = spd_ladder(6);
        let p = SsorPreconditioner::new(&a, 1.2);
        let u: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7).sin()).collect();
        let v: Vec<f64> = (0..6).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut mu = vec![0.0; 6];
        let mut mv = vec![0.0; 6];
        p.apply(&u, &mut mu);
        p.apply(&v, &mut mv);
        let lhs = crate::vector::dot(&mu, &v);
        let rhs = crate::vector::dot(&u, &mv);
        assert!((lhs - rhs).abs() < 1e-10, "asymmetric: {lhs} vs {rhs}");
        let mut muu = vec![0.0; 6];
        p.apply(&u, &mut muu);
        assert!(crate::vector::dot(&muu, &u) > 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 2)")]
    fn ssor_rejects_bad_omega() {
        let a = spd_ladder(2);
        let _ = SsorPreconditioner::new(&a, 2.5);
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn jacobi_rejects_zero_diagonal() {
        let mut coo = CooBuilder::new(2, 2);
        coo.add(0, 1, 1.0);
        coo.add(1, 0, 1.0);
        let _ = JacobiPreconditioner::new(&coo.to_csr());
    }
}
