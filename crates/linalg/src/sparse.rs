//! Sparse matrices: COO assembly and CSR storage.

use crate::error::LinalgError;

/// Coordinate-format builder for assembling sparse matrices entry by entry.
///
/// Duplicate `(row, col)` contributions are summed when converting to CSR —
/// exactly what finite-volume/KCL stencil assembly wants.
///
/// ```
/// use ttsv_linalg::CooBuilder;
/// let mut coo = CooBuilder::new(2, 2);
/// coo.add(0, 0, 1.0);
/// coo.add(0, 0, 1.0); // accumulates
/// coo.add(1, 1, 3.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 0), 2.0);
/// assert_eq!(csr.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with space reserved for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        let mut b = Self::new(rows, cols);
        b.entries.reserve(capacity);
        b
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds `value` at `(row, col)`; contributions to the same position
    /// accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "entry ({row}, {col}) out of bounds for {}×{} matrix",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Finalizes into compressed sparse row format (duplicates summed,
    /// columns sorted within each row, explicit zeros from cancellation
    /// retained).
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());

        row_ptr.push(0);
        let mut current_row = 0;
        for (r, c, v) in entries {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            // Merge duplicates: the previous stored entry is a duplicate iff
            // it belongs to this row (past the row start) and shares `c`.
            let row_start = *row_ptr.last().expect("row_ptr is never empty");
            if col_idx.len() > row_start && *col_idx.last().expect("nonempty") == c {
                *values.last_mut().expect("nonempty") += v;
            } else {
                col_idx.push(c);
                values.push(v);
            }
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        debug_assert_eq!(row_ptr.len(), self.rows + 1);

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from raw parts (used by kernels that build
    /// rows in order, skipping the COO sort). Columns must be sorted and
    /// unique within each row.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(*row_ptr.last().expect("nonempty"), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert!((0..rows).all(|i| {
            col_idx[row_ptr[i]..row_ptr[i + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
                && col_idx[row_ptr[i]..row_ptr[i + 1]]
                    .iter()
                    .all(|&c| c < cols)
        }));
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The identity matrix as CSR.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut coo = CooBuilder::new(n, n);
        for i in 0..n {
            coo.add(i, i, 1.0);
        }
        coo.to_csr()
    }

    /// Reads entry `(i, j)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row index out of bounds");
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "csr matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix-vector product writing into a preallocated buffer (hot path of
    /// the iterative solvers).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` has the wrong length.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: x has wrong length");
        assert_eq!(y.len(), self.rows, "matvec_into: y has wrong length");
        self.matvec_range(x, y, 0);
    }

    /// Computes rows `start..start + y.len()` of `A·x` into `y` — the
    /// row-chunk kernel behind the threaded multigrid sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds the matrix or `x` is too short.
    pub(crate) fn matvec_range(&self, x: &[f64], y: &mut [f64], start: usize) {
        assert!(
            start + y.len() <= self.rows,
            "matvec_range: rows out of bounds"
        );
        assert_eq!(x.len(), self.cols, "matvec_range: x has wrong length");
        for (k, yi) in y.iter_mut().enumerate() {
            let i = start + k;
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = 0.0;
            for e in lo..hi {
                acc += self.values[e] * x[self.col_idx[e]];
            }
            *yi = acc;
        }
    }

    /// `true` when both matrices share dimensions and the exact sparsity
    /// pattern (`row_ptr` and `col_idx` equal entry for entry) — the
    /// precondition for numeric-only multigrid refreshes.
    #[must_use]
    pub fn same_pattern(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// The stored values, in row-major pattern order.
    pub(crate) fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (pattern-preserving numeric
    /// refresh; the pattern itself is immutable).
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The `(start, end)` range into [`CsrMatrix::values`] for row `i`.
    pub(crate) fn row_range(&self, i: usize) -> (usize, usize) {
        (self.row_ptr[i], self.row_ptr[i + 1])
    }

    /// The stored column indices, in row-major pattern order.
    pub(crate) fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// The main diagonal as a vector (missing entries are zero).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "diagonal of a non-square matrix");
        (0..self.rows).map(|i| self.get(i, i)).collect()
    }

    /// Checks symmetry within `tol` by comparing stored entries against
    /// their transposes.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                if (v - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Residual norm `‖b − A·x‖₂` (solver verification helper).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "csr residual",
                expected: self.rows,
                actual: b.len(),
            });
        }
        let ax = self.matvec(x)?;
        Ok(crate::vector::norm2(&crate::vector::sub(b, &ax)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coo_accumulates_duplicates() {
        let mut coo = CooBuilder::new(3, 3);
        coo.add(1, 1, 2.0);
        coo.add(1, 1, 3.0);
        coo.add(0, 2, 1.0);
        coo.add(2, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 2), 1.0);
        assert_eq!(csr.get(2, 0), -1.0);
        assert_eq!(csr.get(0, 0), 0.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooBuilder::new(4, 4);
        coo.add(0, 0, 1.0);
        coo.add(3, 3, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 2), 0.0);
        assert_eq!(
            csr.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap(),
            vec![1.0, 0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn matvec_matches_dense_equivalent() {
        let mut coo = CooBuilder::new(3, 3);
        let dense = [[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]];
        for (i, row) in dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                coo.add(i, j, v);
            }
        }
        let csr = coo.to_csr();
        let x = [1.0, 2.0, 3.0];
        let y = csr.matvec(&x).unwrap();
        for i in 0..3 {
            let want: f64 = (0..3).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-14);
        }
    }

    #[test]
    fn diagonal_and_symmetry() {
        let mut coo = CooBuilder::new(2, 2);
        coo.add(0, 0, 4.0);
        coo.add(0, 1, 1.0);
        coo.add(1, 0, 1.0);
        coo.add(1, 1, 3.0);
        let csr = coo.to_csr();
        assert_eq!(csr.diagonal(), vec![4.0, 3.0]);
        assert!(csr.is_symmetric(0.0));

        let mut coo2 = CooBuilder::new(2, 2);
        coo2.add(0, 1, 1.0);
        let csr2 = coo2.to_csr();
        assert!(!csr2.is_symmetric(1e-15));
    }

    #[test]
    fn identity_acts_as_identity() {
        let id = CsrMatrix::identity(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64 * 1.5).collect();
        assert_eq!(id.matvec(&x).unwrap(), x);
        assert_eq!(id.nnz(), 5);
    }

    #[test]
    fn zero_contributions_are_skipped() {
        let mut coo = CooBuilder::new(2, 2);
        coo.add(0, 0, 0.0);
        coo.add(1, 1, 1.0);
        assert_eq!(coo.to_csr().nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_add_panics() {
        let mut coo = CooBuilder::new(2, 2);
        coo.add(2, 0, 1.0);
    }

    #[test]
    fn residual_norm_is_zero_for_exact_solution() {
        let mut coo = CooBuilder::new(2, 2);
        coo.add(0, 0, 2.0);
        coo.add(1, 1, 4.0);
        let csr = coo.to_csr();
        let r = csr.residual_norm(&[1.0, 0.5], &[2.0, 2.0]).unwrap();
        assert!(r < 1e-15);
    }
}
