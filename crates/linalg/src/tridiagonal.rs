//! Tridiagonal systems via the Thomas algorithm.

use crate::error::LinalgError;

/// A tridiagonal matrix stored as three diagonals.
///
/// `sub[i]` couples row `i+1` to column `i`, `diag[i]` is the main diagonal,
/// `sup[i]` couples row `i` to column `i+1`. Solved by the Thomas algorithm
/// in `O(n)`; stable for the diagonally dominant matrices produced by 1-D
/// heat ladders.
///
/// ```
/// use ttsv_linalg::Tridiagonal;
/// // -u'' = 0 with u(0)=0, u(3)=3 discretized on 2 interior points.
/// let t = Tridiagonal::new(vec![-1.0], vec![2.0, 2.0], vec![-1.0]);
/// let x = t.solve(&[0.0, 3.0]).unwrap(); // rhs carries the boundary values
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    sub: Vec<f64>,
    diag: Vec<f64>,
    sup: Vec<f64>,
}

impl Tridiagonal {
    /// Creates a tridiagonal matrix from its three diagonals.
    ///
    /// # Panics
    ///
    /// Panics unless `sub.len() == diag.len() − 1 == sup.len()` and
    /// `diag` is nonempty.
    #[must_use]
    pub fn new(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Self {
        assert!(!diag.is_empty(), "tridiagonal needs at least one row");
        assert_eq!(sub.len(), diag.len() - 1, "sub-diagonal length must be n-1");
        assert_eq!(
            sup.len(),
            diag.len() - 1,
            "super-diagonal length must be n-1"
        );
        Self { sub, diag, sup }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "tridiagonal matvec",
                expected: n,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = self.diag[i] * x[i];
            if i > 0 {
                v += self.sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                v += self.sup[i] * x[i + 1];
            }
            y[i] = v;
        }
        Ok(y)
    }

    /// Solves `T·x = b` with the Thomas algorithm (no pivoting — intended
    /// for diagonally dominant systems).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    /// * [`LinalgError::Singular`] if elimination produces a zero pivot.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "tridiagonal solve",
                expected: n,
                actual: b.len(),
            });
        }
        let mut c = vec![0.0; n]; // modified super-diagonal
        let mut d = b.to_vec(); // modified RHS

        let mut pivot = self.diag[0];
        if pivot == 0.0 {
            return Err(LinalgError::Singular { pivot: 0 });
        }
        if n > 1 {
            c[0] = self.sup[0] / pivot;
        }
        d[0] /= pivot;
        for i in 1..n {
            pivot = self.diag[i] - self.sub[i - 1] * c[i - 1];
            if pivot == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
            if i + 1 < n {
                c[i] = self.sup[i] / pivot;
            }
            d[i] = (d[i] - self.sub[i - 1] * d[i - 1]) / pivot;
        }
        for i in (0..n.saturating_sub(1)).rev() {
            let next = d[i + 1];
            d[i] -= c[i] * next;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_poisson_ladder() {
        // Classic [-1, 2, -1] system, n = 5, rhs = ones.
        let n = 5;
        let t = Tridiagonal::new(vec![-1.0; n - 1], vec![2.0; n], vec![-1.0; n - 1]);
        let x = t.solve(&vec![1.0; n]).unwrap();
        // Verify by multiplying back.
        let back = t.matvec(&x).unwrap();
        for v in back {
            assert!((v - 1.0).abs() < 1e-12);
        }
        // Exact solution of the discrete Poisson problem is symmetric.
        assert!((x[0] - x[4]).abs() < 1e-12);
        assert!((x[1] - x[3]).abs() < 1e-12);
    }

    #[test]
    fn one_by_one_system() {
        let t = Tridiagonal::new(vec![], vec![4.0], vec![]);
        assert_eq!(t.solve(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn asymmetric_system() {
        let t = Tridiagonal::new(vec![1.0, 2.0], vec![5.0, 5.0, 5.0], vec![3.0, 1.0]);
        let x_exact = [1.0, -2.0, 0.5];
        let b = t.matvec(&x_exact).unwrap();
        let x = t.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_exact) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_pivot_detected() {
        let t = Tridiagonal::new(vec![1.0], vec![0.0, 1.0], vec![1.0]);
        assert!(matches!(
            t.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "length must be n-1")]
    fn diagonal_lengths_validated() {
        let _ = Tridiagonal::new(vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0]);
    }
}
