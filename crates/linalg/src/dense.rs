//! Row-major dense matrices.

use crate::error::LinalgError;
use crate::lu::LuDecomposition;
use crate::qr::QrDecomposition;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// Sized for the workloads in this workspace: Model A's KCL systems are
/// `(2N−1) × (2N−1)` for an `N`-plane stack, and calibration Jacobians are
/// tall-skinny. Use [`crate::CsrMatrix`]/[`crate::BandedMatrix`] for the
/// large sparse systems.
///
/// ```
/// use ttsv_linalg::DenseMatrix;
/// let m = DenseMatrix::identity(3);
/// assert_eq!(m[(1, 1)], 1.0);
/// assert_eq!(m[(0, 2)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "from_rows needs at least one column");
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged row {i} in from_rows");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "dense matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect())
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "dense matmul",
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// The transpose `Aᵀ`.
    #[must_use]
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Returns `true` when the matrix is symmetric to within `tol` on every
    /// entry pair.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular input and
    /// [`LinalgError::InvalidInput`] for non-square input.
    pub fn lu(&self) -> Result<LuDecomposition, LinalgError> {
        LuDecomposition::new(self)
    }

    /// Householder QR factorization (also works for tall matrices).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `rows < cols`.
    pub fn qr(&self) -> Result<QrDecomposition, LinalgError> {
        QrDecomposition::new(self)
    }

    /// Convenience: solve `A·x = b` through LU.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`DenseMatrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.lu()?.solve(b)
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        crate::vector::norm_inf(&self.data)
    }
}

impl core::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}×{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}×{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl core::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_with_identity_is_identity_op() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn transpose_is_involution() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 5.0], &[3.0, 4.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn symmetry_detection() {
        let s = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!a.is_symmetric(1e-12));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let m = DenseMatrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
