//! Self-contained numerical linear algebra for the TTSV workspace.
//!
//! The offline crate ecosystem available to this reproduction has no
//! scientific-computing stack, so everything the thermal models need is
//! implemented here from scratch:
//!
//! * [`DenseMatrix`] with [LU](DenseMatrix::lu) (partial pivoting) and
//!   [QR](DenseMatrix::qr) (Householder) factorizations — Model A's small KCL
//!   systems and least-squares fitting.
//! * [`Tridiagonal`] (Thomas algorithm), [`BandedMatrix`] (banded LU), and
//!   [`BlockTridiagonal`] (2×2 block Thomas) — Model B's π-segment ladders
//!   are banded SPD systems, solved `O(n)` by the dedicated block kernel.
//! * [`CsrMatrix`] sparse storage with [conjugate-gradient](solve_cg)
//!   solvers ([allocation-free and warm-startable](solve_pcg_into) via
//!   [`PcgWorkspace`]), [Jacobi](JacobiPreconditioner)/[SSOR](SsorPreconditioner)
//!   preconditioning, and a geometric [multigrid](MultigridPreconditioner)
//!   V-cycle for the structured finite-volume grids — the reference solver's
//!   hot path.
//! * Derivative-free optimizers ([`nelder_mead`], [`golden_section`]) — the
//!   k₁/k₂ fitting-coefficient calibration.
//!
//! # Examples
//!
//! ```
//! use ttsv_linalg::DenseMatrix;
//!
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = a.lu().unwrap().solve(&[1.0, 2.0]).unwrap();
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops are the natural idiom for the numerical kernels here
// (simultaneous access to multiple vectors at matching positions).
#![allow(clippy::needless_range_loop)]

mod banded;
mod block_tridiag;
mod dense;
mod error;
mod iterative;
mod lu;
mod multigrid;
mod optimize;
mod precond;
mod qr;
mod sparse;
mod tridiagonal;
mod vector;

pub use banded::{BandedLu, BandedMatrix};
pub use block_tridiag::{BlockTridiagonal, BlockTridiagonalLu};
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use iterative::{
    solve_cg, solve_gauss_seidel, solve_pcg, solve_pcg_into, solve_sor, IterativeConfig,
    PcgWorkspace, SolveReport, SolveStats,
};
pub use lu::LuDecomposition;
pub use multigrid::{
    ChebyshevSmoother, MgSmoother, MultigridConfig, MultigridHierarchy, MultigridPreconditioner,
    CHEBYSHEV_BREAK_EVEN_UNKNOWNS,
};
pub use optimize::{
    golden_section, nelder_mead, GoldenSectionResult, NelderMeadConfig, NelderMeadResult,
};
pub use precond::{
    IdentityPreconditioner, JacobiPreconditioner, Preconditioner, SsorPreconditioner,
};
pub use qr::QrDecomposition;
pub use sparse::{CooBuilder, CsrMatrix};
pub use tridiagonal::Tridiagonal;
pub use vector::{axpy, dot, norm2, norm_inf, scale, sub};
