//! Iterative solvers for sparse symmetric positive-definite systems.

use crate::error::LinalgError;
use crate::precond::{IdentityPreconditioner, Preconditioner};
use crate::sparse::CsrMatrix;
use crate::vector::{axpy, dot, norm2};

/// Iteration budget and stopping tolerance for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeConfig {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence declared when `‖r‖₂ ≤ tolerance · ‖b‖₂`.
    pub relative_tolerance: f64,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            relative_tolerance: 1e-10,
        }
    }
}

impl IterativeConfig {
    /// Creates a config, validating its parameters.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero or the tolerance is not positive.
    #[must_use]
    pub fn new(max_iterations: usize, relative_tolerance: f64) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(
            relative_tolerance > 0.0,
            "relative tolerance must be positive, got {relative_tolerance}"
        );
        Self {
            max_iterations,
            relative_tolerance,
        }
    }
}

/// Outcome of an iterative solve: the solution plus convergence telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The computed solution vector.
    pub solution: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual 2-norm `‖b − A·x‖₂`.
    pub residual_norm: f64,
}

/// Convergence telemetry of an in-place solve ([`solve_pcg_into`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual 2-norm `‖b − A·x‖₂`.
    pub residual_norm: f64,
}

/// Reusable scratch buffers for [`solve_pcg_into`].
///
/// The PCG inner loop needs four work vectors; keeping them in a workspace
/// lets repeated solves (parameter sweeps, Picard iterations) run without
/// per-solve allocation.
#[derive(Debug, Clone, Default)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl PcgWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n: usize) {
        for buf in [&mut self.r, &mut self.z, &mut self.p, &mut self.ap] {
            buf.clear();
            buf.resize(n, 0.0);
        }
    }
}

fn check_system(a: &CsrMatrix, b: &[f64]) -> Result<(), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::InvalidInput {
            reason: format!(
                "iterative solve needs a square matrix, got {}×{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            operation: "iterative solve",
            expected: a.rows(),
            actual: b.len(),
        });
    }
    Ok(())
}

/// Solves `A·x = b` by plain conjugate gradients (`A` must be SPD).
///
/// # Errors
///
/// * [`LinalgError::InvalidInput`] / [`LinalgError::DimensionMismatch`] for
///   malformed systems.
/// * [`LinalgError::NotConverged`] if the iteration budget runs out.
pub fn solve_cg(
    a: &CsrMatrix,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    solve_pcg(a, b, &IdentityPreconditioner, config)
}

/// Solves `A·x = b` by preconditioned conjugate gradients (`A` must be SPD,
/// `m` an SPD preconditioner).
///
/// # Errors
///
/// * [`LinalgError::InvalidInput`] / [`LinalgError::DimensionMismatch`] for
///   malformed systems.
/// * [`LinalgError::NotConverged`] if the iteration budget runs out.
pub fn solve_pcg<P: Preconditioner + ?Sized>(
    a: &CsrMatrix,
    b: &[f64],
    m: &P,
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    let mut x = vec![0.0; b.len()];
    let mut workspace = PcgWorkspace::new();
    let stats = solve_pcg_into(a, b, m, config, &mut x, &mut workspace)?;
    Ok(SolveReport {
        solution: x,
        iterations: stats.iterations,
        residual_norm: stats.residual_norm,
    })
}

/// Solves `A·x = b` by preconditioned conjugate gradients in place: `x`
/// carries the initial guess in (warm start) and the solution out, and all
/// inner-loop scratch lives in `workspace` so repeated solves allocate
/// nothing.
///
/// Convergence is declared at `‖b − A·x‖₂ ≤ tolerance · ‖b‖₂`, the same
/// target as [`solve_pcg`] — a warm start changes the iteration count, not
/// the accuracy of the result.
///
/// # Errors
///
/// * [`LinalgError::InvalidInput`] / [`LinalgError::DimensionMismatch`] for
///   malformed systems or an `x` of the wrong length.
/// * [`LinalgError::NotConverged`] if the iteration budget runs out.
pub fn solve_pcg_into<P: Preconditioner + ?Sized>(
    a: &CsrMatrix,
    b: &[f64],
    m: &P,
    config: &IterativeConfig,
    x: &mut [f64],
    workspace: &mut PcgWorkspace,
) -> Result<SolveStats, LinalgError> {
    check_system(a, b)?;
    if x.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "pcg initial guess",
            expected: b.len(),
            actual: x.len(),
        });
    }
    let n = b.len();
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        return Ok(SolveStats {
            iterations: 0,
            residual_norm: 0.0,
        });
    }
    let target = config.relative_tolerance * b_norm;

    workspace.prepare(n);
    let PcgWorkspace { r, z, p, ap } = workspace;

    // r = b − A·x (honours the warm start; the all-zero guess of a cold
    // start skips the matvec entirely — an O(n) check vs an O(nnz) pass).
    if x.iter().all(|&v| v == 0.0) {
        r.copy_from_slice(b);
    } else {
        a.matvec_into(x, r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
    }
    m.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = dot(r, z);

    for iter in 0..config.max_iterations {
        let r_norm = norm2(r);
        if r_norm <= target {
            return Ok(SolveStats {
                iterations: iter,
                residual_norm: r_norm,
            });
        }
        a.matvec_into(p, ap);
        let pap = dot(p, ap);
        if pap <= 0.0 {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "matrix is not positive-definite (pᵀAp = {pap:.3e} at iteration {iter})"
                ),
            });
        }
        let alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        m.apply(r, z);
        let rz_next = dot(r, z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let residual = norm2(r);
    if residual <= target {
        Ok(SolveStats {
            iterations: config.max_iterations,
            residual_norm: residual,
        })
    } else {
        Err(LinalgError::NotConverged {
            iterations: config.max_iterations,
            residual,
            tolerance: target,
        })
    }
}

/// Solves `A·x = b` by Gauss–Seidel sweeps (SOR with `ω = 1`).
///
/// Slower than CG on large systems; retained as an independent
/// cross-check and for matrices that are diagonally dominant but not
/// symmetric.
///
/// # Errors
///
/// Same contract as [`solve_sor`].
pub fn solve_gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    solve_sor(a, b, 1.0, config)
}

/// Solves `A·x = b` by successive over-relaxation with factor
/// `omega ∈ (0, 2)`.
///
/// # Errors
///
/// * [`LinalgError::InvalidInput`] for malformed systems, `ω ∉ (0, 2)`, or a
///   zero diagonal.
/// * [`LinalgError::NotConverged`] if the iteration budget runs out.
pub fn solve_sor(
    a: &CsrMatrix,
    b: &[f64],
    omega: f64,
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    check_system(a, b)?;
    if !(omega > 0.0 && omega < 2.0) {
        return Err(LinalgError::InvalidInput {
            reason: format!("SOR relaxation factor must be in (0, 2), got {omega}"),
        });
    }
    let n = b.len();
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return Err(LinalgError::InvalidInput {
            reason: "SOR requires a nonzero diagonal".to_string(),
        });
    }
    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(SolveReport {
            solution: vec![0.0; n],
            iterations: 0,
            residual_norm: 0.0,
        });
    }
    let target = config.relative_tolerance * b_norm;

    let mut x = vec![0.0; n];
    for iter in 1..=config.max_iterations {
        for i in 0..n {
            let mut sigma = 0.0;
            for (j, v) in a.row_entries(i) {
                if j != i {
                    sigma += v * x[j];
                }
            }
            let gs = (b[i] - sigma) / diag[i];
            x[i] += omega * (gs - x[i]);
        }
        let residual = a
            .residual_norm(&x, b)
            .expect("dimensions already validated");
        if residual <= target {
            return Ok(SolveReport {
                solution: x,
                iterations: iter,
                residual_norm: residual,
            });
        }
    }
    let residual = a
        .residual_norm(&x, b)
        .expect("dimensions already validated");
    Err(LinalgError::NotConverged {
        iterations: config.max_iterations,
        residual,
        tolerance: target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{JacobiPreconditioner, SsorPreconditioner};
    use crate::sparse::CooBuilder;

    /// 1-D Poisson matrix: SPD, tridiagonal.
    fn poisson(n: usize) -> CsrMatrix {
        let mut coo = CooBuilder::new(n, n);
        for i in 0..n {
            coo.add(i, i, 2.0);
            if i + 1 < n {
                coo.add(i, i + 1, -1.0);
                coo.add(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cg_solves_poisson() {
        let n = 50;
        let a = poisson(n);
        let b = vec![1.0; n];
        let report = solve_cg(&a, &b, &IterativeConfig::default()).unwrap();
        assert!(report.residual_norm <= 1e-10 * norm2(&b));
        assert!(a.residual_norm(&report.solution, &b).unwrap() < 1e-8);
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations_exactly() {
        // CG terminates in ≤ n steps in exact arithmetic; allow slack for
        // rounding but it must be the same order.
        let n = 30;
        let a = poisson(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let report = solve_cg(&a, &b, &IterativeConfig::new(2 * n, 1e-12)).unwrap();
        assert!(report.iterations <= n + 5, "took {}", report.iterations);
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let n = 200;
        let a = poisson(n);
        let b = vec![1.0; n];
        let cfg = IterativeConfig::new(10_000, 1e-10);
        let plain = solve_cg(&a, &b, &cfg).unwrap();
        let ssor = solve_pcg(&a, &b, &SsorPreconditioner::new(&a, 1.5), &cfg).unwrap();
        assert!(
            ssor.iterations < plain.iterations,
            "SSOR {} vs plain {}",
            ssor.iterations,
            plain.iterations
        );
        // Both must agree with each other.
        for (x, y) in plain.solution.iter().zip(&ssor.solution) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn jacobi_preconditioned_cg_matches_plain_cg() {
        let n = 40;
        let a = poisson(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 / 7.0).cos()).collect();
        let cfg = IterativeConfig::default();
        let x1 = solve_cg(&a, &b, &cfg).unwrap().solution;
        let x2 = solve_pcg(&a, &b, &JacobiPreconditioner::new(&a), &cfg)
            .unwrap()
            .solution;
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn gauss_seidel_agrees_with_cg() {
        let n = 25;
        let a = poisson(n);
        let b = vec![0.5; n];
        let cfg = IterativeConfig::new(100_000, 1e-10);
        let cg = solve_cg(&a, &b, &cfg).unwrap().solution;
        let gs = solve_gauss_seidel(&a, &b, &cfg).unwrap().solution;
        for (x, y) in cg.iter().zip(&gs) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn sor_with_good_omega_beats_gauss_seidel() {
        let n = 60;
        let a = poisson(n);
        let b = vec![1.0; n];
        let cfg = IterativeConfig::new(200_000, 1e-8);
        let gs = solve_gauss_seidel(&a, &b, &cfg).unwrap();
        // Optimal SOR omega for 1-D Poisson is 2/(1+sin(π/(n+1))) ≈ close to 2.
        let w = 2.0 / (1.0 + (std::f64::consts::PI / (n as f64 + 1.0)).sin());
        let sor = solve_sor(&a, &b, w, &cfg).unwrap();
        assert!(
            sor.iterations < gs.iterations / 2,
            "SOR {} vs GS {}",
            sor.iterations,
            gs.iterations
        );
    }

    #[test]
    fn warm_start_from_exact_solution_converges_immediately() {
        let n = 40;
        let a = poisson(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let cfg = IterativeConfig::default();
        let cold = solve_cg(&a, &b, &cfg).unwrap();
        let mut x = cold.solution.clone();
        let mut ws = PcgWorkspace::new();
        let stats = solve_pcg_into(&a, &b, &IdentityPreconditioner, &cfg, &mut x, &mut ws).unwrap();
        assert_eq!(stats.iterations, 0, "exact guess should short-circuit");
        for (w, c) in x.iter().zip(&cold.solution) {
            assert!((w - c).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_never_degrades_accuracy() {
        // A deliberately bad guess must still converge to the same target.
        let n = 60;
        let a = poisson(n);
        let b = vec![1.0; n];
        let cfg = IterativeConfig::default();
        let mut x = vec![1e6; n];
        let mut ws = PcgWorkspace::new();
        let stats = solve_pcg_into(&a, &b, &IdentityPreconditioner, &cfg, &mut x, &mut ws).unwrap();
        assert!(stats.residual_norm <= cfg.relative_tolerance * norm2(&b));
        assert!(a.residual_norm(&x, &b).unwrap() < 1e-8);
    }

    #[test]
    fn workspace_is_reusable_across_sizes() {
        let mut ws = PcgWorkspace::new();
        let cfg = IterativeConfig::default();
        for n in [10, 50, 25] {
            let a = poisson(n);
            let b = vec![1.0; n];
            let mut x = vec![0.0; n];
            solve_pcg_into(&a, &b, &IdentityPreconditioner, &cfg, &mut x, &mut ws).unwrap();
            assert!(a.residual_norm(&x, &b).unwrap() < 1e-8);
        }
    }

    #[test]
    fn wrong_guess_length_is_rejected() {
        let a = poisson(5);
        let mut x = vec![0.0; 4];
        let mut ws = PcgWorkspace::new();
        let err = solve_pcg_into(
            &a,
            &[1.0; 5],
            &IdentityPreconditioner,
            &IterativeConfig::default(),
            &mut x,
            &mut ws,
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = poisson(5);
        let report = solve_cg(&a, &[0.0; 5], &IterativeConfig::default()).unwrap();
        assert_eq!(report.solution, vec![0.0; 5]);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut coo = CooBuilder::new(2, 2);
        coo.add(0, 0, 1.0);
        coo.add(1, 1, -1.0);
        let a = coo.to_csr();
        let err = solve_cg(&a, &[1.0, 1.0], &IterativeConfig::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let n = 100;
        let a = poisson(n);
        let b = vec![1.0; n];
        let err = solve_cg(&a, &b, &IterativeConfig::new(2, 1e-14)).unwrap_err();
        match err {
            LinalgError::NotConverged { iterations, .. } => assert_eq!(iterations, 2),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn sor_rejects_bad_omega() {
        let a = poisson(3);
        assert!(matches!(
            solve_sor(&a, &[1.0; 3], 2.0, &IterativeConfig::default()),
            Err(LinalgError::InvalidInput { .. })
        ));
    }
}
