//! Small dense-vector kernels used across the solvers.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot product of unequal-length vectors");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum-magnitude norm `‖x‖∞` (0 for the empty vector).
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// In-place `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy on unequal-length vectors");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x ← alpha·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub on unequal-length vectors");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, [21.0, 41.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        assert_eq!(sub(&[5.0, 5.0], &[2.0, 3.0]), vec![3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
