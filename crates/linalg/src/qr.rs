//! Householder QR factorization and least squares.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// A Householder QR factorization `A = Q·R` of an `m × n` matrix with
/// `m ≥ n`, stored in compact form (Householder vectors below the diagonal).
///
/// Primarily used for least-squares fitting in the calibration pipeline.
///
/// ```
/// use ttsv_linalg::DenseMatrix;
/// // Fit y = a + b·t to three points (t, y): (0,1), (1,3), (2,5) → a=1, b=2.
/// let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let coeffs = a.qr().unwrap().solve_least_squares(&[1.0, 3.0, 5.0]).unwrap();
/// assert!((coeffs[0] - 1.0).abs() < 1e-12);
/// assert!((coeffs[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Compact storage: R on and above the diagonal, Householder vectors
    /// (unnormalized, v[0] implied by `betas`) below.
    qr: DenseMatrix,
    /// Householder scalars β such that `H = I − β v vᵀ`.
    betas: Vec<f64>,
}

impl QrDecomposition {
    /// Factorizes `a` (must have `rows ≥ cols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the matrix is wider than it
    /// is tall.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::InvalidInput {
                reason: format!("QR needs rows >= cols, got {m}×{n}"),
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Build the Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, a_{k+1,k}, ..., a_{m-1,k}); β = 2 / vᵀv.
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            betas[k] = beta;

            // Apply H to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let s = beta * dot;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            // Store R diagonal and the v vector (v0 normalized out is kept
            // explicitly: we store v below the diagonal and v0 separately by
            // convention qr[(k,k)] = alpha after processing).
            qr[(k, k)] = alpha;
            // Below-diagonal already holds v components except v0; rescale so
            // the implied v0 is carried via betas: store v_i / v0.
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= v0;
                }
                betas[k] = beta * v0 * v0;
            }
        }

        Ok(Self { qr, betas })
    }

    /// Applies `Qᵀ` to a vector of length `rows`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = (1, qr[k+1..m, k])
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let s = beta * dot;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != rows`.
    /// * [`LinalgError::Singular`] if `R` has a zero diagonal (rank
    ///   deficiency).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "QR least squares",
                expected: m,
                actual: b.len(),
            });
        }
        let y = self.apply_qt(b);
        // Back-substitute R x = y[0..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() <= 1e-13 * self.qr.max_abs().max(f64::MIN_POSITIVE) {
                return Err(LinalgError::Singular { pivot: i });
            }
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.qr[(i, j)] * x[j];
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }

    /// The residual 2-norm `‖A·x − b‖₂` of the least-squares solution,
    /// available directly from `Qᵀb` without recomputing `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != rows`.
    pub fn residual_norm(&self, b: &[f64]) -> Result<f64, LinalgError> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "QR residual",
                expected: m,
                actual: b.len(),
            });
        }
        let y = self.apply_qt(b);
        Ok(crate::vector::norm2(&y[n..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_matches_lu() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, 10.0];
        let x_qr = a.qr().unwrap().solve_least_squares(&b).unwrap();
        let x_lu = a.lu().unwrap().solve(&b).unwrap();
        for (q, l) in x_qr.iter().zip(&x_lu) {
            assert!((q - l).abs() < 1e-12);
        }
    }

    #[test]
    fn overdetermined_fit_recovers_line() {
        // y = 1 + 2t sampled with no noise at 5 points.
        let ts = [0.0, 0.5, 1.0, 1.5, 2.0];
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![1.0, t]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = DenseMatrix::from_rows(&row_refs);
        let b: Vec<f64> = ts.iter().map(|&t| 1.0 + 2.0 * t).collect();
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!(qr.residual_norm(&b).unwrap() < 1e-12);
    }

    #[test]
    fn residual_reflects_inconsistency() {
        // Inconsistent system: x = 0 and x = 2 → best fit x = 1, residual √2.
        let a = DenseMatrix::from_rows(&[&[1.0], &[1.0]]);
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&[0.0, 2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((qr.residual_norm(&[0.0, 2.0]).unwrap() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.qr(), Err(LinalgError::InvalidInput { .. })));
    }

    #[test]
    fn rank_deficiency_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let qr = a.qr().unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
