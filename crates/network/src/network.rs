//! Network construction and the KCL solve.

use ttsv_linalg::{solve_pcg, CooBuilder, DenseMatrix, IterativeConfig, SsorPreconditioner};
use ttsv_units::{Power, TemperatureDelta, ThermalResistance};

use crate::error::NetworkError;
use crate::solution::NetworkSolution;

/// Handle to a node created by [`ThermalNetwork::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// One endpoint of a resistor: either a created node or the ground
/// (heat-sink reference, temperature 0 by definition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// The temperature reference (the paper's heat-sink-adjacent surface).
    Ground,
    /// An interior node.
    Node(NodeId),
}

impl From<NodeId> for Terminal {
    fn from(id: NodeId) -> Self {
        Terminal::Node(id)
    }
}

/// Which linear solver backs [`ThermalNetwork::solve_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Dense LU — exact, `O(n³)`; right for Model A-sized networks.
    Dense,
    /// SSOR-preconditioned conjugate gradients on the CSR matrix — right for
    /// large distributed ladders.
    ConjugateGradient,
    /// Dense below 256 unknowns, CG above.
    #[default]
    Auto,
}

#[derive(Debug, Clone)]
pub(crate) struct Resistor {
    pub(crate) a: Terminal,
    pub(crate) b: Terminal,
    pub(crate) resistance: ThermalResistance,
}

/// A steady-state thermal resistive network (builder + solver).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct ThermalNetwork {
    pub(crate) node_names: Vec<String>,
    pub(crate) resistors: Vec<Resistor>,
    /// Heat injected per node (watts), dense over node ids.
    pub(crate) sources: Vec<(NodeId, Power)>,
    /// Nodes pinned to a fixed temperature above the reference.
    pub(crate) pins: Vec<(NodeId, TemperatureDelta)>,
}

impl ThermalNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node; the name is used only in diagnostics.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        NodeId(self.node_names.len() - 1)
    }

    /// Number of nodes created so far (excluding ground).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of resistors added so far.
    #[must_use]
    pub fn resistor_count(&self) -> usize {
        self.resistors.len()
    }

    /// The diagnostic name given to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` belongs to a different network.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Connects two terminals with a thermal resistor. Returns the branch
    /// index usable with
    /// [`NetworkSolution::branch_flow`](crate::NetworkSolution::branch_flow).
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not strictly positive and finite, if a
    /// terminal refers to a node that does not exist, or if both terminals
    /// are the same node.
    pub fn add_resistor(
        &mut self,
        a: impl Into<Terminal>,
        b: impl Into<Terminal>,
        resistance: ThermalResistance,
    ) -> usize {
        let (a, b) = (a.into(), b.into());
        assert!(
            resistance.as_kelvin_per_watt() > 0.0 && resistance.is_finite(),
            "resistance must be positive and finite, got {resistance}"
        );
        self.check_terminal(a);
        self.check_terminal(b);
        assert!(a != b, "resistor endpoints must differ, got {a:?} twice");
        self.resistors.push(Resistor { a, b, resistance });
        self.resistors.len() - 1
    }

    /// Injects heat into a node (a current source to ground in the
    /// electrical analogy). Multiple sources on one node accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or the power is not finite.
    pub fn add_source(&mut self, node: NodeId, power: Power) {
        assert!(power.is_finite(), "source power must be finite");
        self.check_terminal(Terminal::Node(node));
        self.sources.push((node, power));
    }

    /// Pins a node to a fixed temperature above the reference (a Dirichlet
    /// condition / ideal temperature source).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist, is already pinned, or the
    /// temperature is not finite.
    pub fn pin_temperature(&mut self, node: NodeId, temperature: TemperatureDelta) {
        assert!(temperature.is_finite(), "pinned temperature must be finite");
        self.check_terminal(Terminal::Node(node));
        assert!(
            self.pins.iter().all(|(n, _)| *n != node),
            "node '{}' is already pinned",
            self.node_name(node)
        );
        self.pins.push((node, temperature));
    }

    fn check_terminal(&self, t: Terminal) {
        if let Terminal::Node(NodeId(i)) = t {
            assert!(
                i < self.node_names.len(),
                "node id {i} does not exist (only {} nodes)",
                self.node_names.len()
            );
        }
    }

    /// Total heat injected by all sources.
    #[must_use]
    pub fn total_source_power(&self) -> Power {
        self.sources.iter().map(|(_, p)| *p).sum()
    }

    /// Solves the network with the [default](SolverChoice::Auto) solver.
    ///
    /// # Errors
    ///
    /// See [`ThermalNetwork::solve_with`].
    pub fn solve(&self) -> Result<NetworkSolution, NetworkError> {
        self.solve_with(SolverChoice::Auto)
    }

    /// Solves the KCL system `G·T = q` for all node temperatures.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::NoReference`] — nothing ties the network to a
    ///   temperature reference, so the system is singular by construction.
    /// * [`NetworkError::FloatingNode`] — some node has no path to the
    ///   reference.
    /// * [`NetworkError::Solver`] — the linear solver failed (e.g. iteration
    ///   budget exhausted).
    pub fn solve_with(&self, choice: SolverChoice) -> Result<NetworkSolution, NetworkError> {
        let n = self.node_names.len();
        let has_ground_tie = self
            .resistors
            .iter()
            .any(|r| r.a == Terminal::Ground || r.b == Terminal::Ground);
        if !has_ground_tie && self.pins.is_empty() {
            return Err(NetworkError::NoReference);
        }
        self.check_connectivity()?;

        // Unknowns: all nodes that are not pinned. Pinned temperatures are
        // moved to the right-hand side.
        let mut unknown_index = vec![usize::MAX; n];
        let mut unknowns = Vec::new();
        let pinned: Vec<Option<TemperatureDelta>> = {
            let mut v = vec![None; n];
            for (node, t) in &self.pins {
                v[node.0] = Some(*t);
            }
            v
        };
        for i in 0..n {
            if pinned[i].is_none() {
                unknown_index[i] = unknowns.len();
                unknowns.push(i);
            }
        }
        let m = unknowns.len();

        // Known temperature of a terminal, if any (ground or pinned).
        let known_t = |t: Terminal| -> Option<f64> {
            match t {
                Terminal::Ground => Some(0.0),
                Terminal::Node(NodeId(i)) => pinned[i].map(TemperatureDelta::as_kelvin),
            }
        };

        let mut rhs = vec![0.0; m];
        for (node, p) in &self.sources {
            if let Some(row) = unknown_slot(&unknown_index, node.0) {
                rhs[row] += p.as_watts();
            }
            // Sources on pinned nodes flow straight into the pin; they do not
            // enter the unknown system.
        }

        let mut coo = CooBuilder::new(m.max(1), m.max(1));
        for r in &self.resistors {
            let g = 1.0 / r.resistance.as_kelvin_per_watt();
            let slot_a = terminal_slot(&unknown_index, r.a);
            let slot_b = terminal_slot(&unknown_index, r.b);
            match (slot_a, slot_b) {
                (Some(i), Some(j)) => {
                    coo.add(i, i, g);
                    coo.add(j, j, g);
                    coo.add(i, j, -g);
                    coo.add(j, i, -g);
                }
                (Some(i), None) => {
                    coo.add(i, i, g);
                    if let Some(t) = known_t(r.b) {
                        rhs[i] += g * t;
                    }
                }
                (None, Some(j)) => {
                    coo.add(j, j, g);
                    if let Some(t) = known_t(r.a) {
                        rhs[j] += g * t;
                    }
                }
                (None, None) => {} // between two knowns: no unknown coupling
            }
        }

        let temps_unknown: Vec<f64> = if m == 0 {
            Vec::new()
        } else {
            let use_dense = match choice {
                SolverChoice::Dense => true,
                SolverChoice::ConjugateGradient => false,
                SolverChoice::Auto => m <= 256,
            };
            if use_dense {
                let csr = coo.to_csr();
                let mut dense = DenseMatrix::zeros(m, m);
                for i in 0..m {
                    for (j, v) in csr.row_entries(i) {
                        dense[(i, j)] = v;
                    }
                }
                dense.solve(&rhs)?
            } else {
                let csr = coo.to_csr();
                let pre = SsorPreconditioner::new(&csr, 1.5);
                solve_pcg(
                    &csr,
                    &rhs,
                    &pre,
                    &IterativeConfig::new(20 * m + 1000, 1e-12),
                )?
                .solution
            }
        };

        // Scatter back to full node order.
        let mut temperatures = vec![TemperatureDelta::ZERO; n];
        for (slot, &node) in unknowns.iter().enumerate() {
            temperatures[node] = TemperatureDelta::from_kelvin(temps_unknown[slot]);
        }
        for (node, t) in &self.pins {
            temperatures[node.0] = *t;
        }

        Ok(NetworkSolution::new(self.clone(), temperatures))
    }

    /// Thevenin equivalent resistance between two terminals: all heat
    /// sources zeroed, `b` taken as the reference, 1 W injected at `a`;
    /// the resulting temperature at `a` *is* the equivalent resistance.
    ///
    /// This is the compact-model reduction the paper's \[10\]/\[11\] lineage
    /// performs on full-circuit networks.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::FloatingNode`] if parts of the network cannot
    ///   reach `b`.
    /// * Any solver error from the underlying solve.
    ///
    /// # Panics
    ///
    /// Panics if a terminal refers to a node that does not exist, or if
    /// `a == b` (the equivalent resistance of a terminal to itself is not
    /// meaningful).
    pub fn equivalent_resistance(
        &self,
        a: impl Into<Terminal>,
        b: impl Into<Terminal>,
    ) -> Result<ThermalResistance, NetworkError> {
        let (a, b) = (a.into(), b.into());
        self.check_terminal(a);
        self.check_terminal(b);
        assert!(a != b, "equivalent resistance needs two distinct terminals");

        // Rebuild without sources/pins, re-referenced at `b`.
        let mut probe = ThermalNetwork {
            node_names: self.node_names.clone(),
            resistors: self.resistors.clone(),
            sources: Vec::new(),
            pins: Vec::new(),
        };
        // Ground plays no special role here; when it participates (as a
        // terminal of some resistor or of the probe), alias it to a real
        // node so `b` can become the reference instead.
        let ground_participates = a == Terminal::Ground
            || b == Terminal::Ground
            || self
                .resistors
                .iter()
                .any(|r| r.a == Terminal::Ground || r.b == Terminal::Ground);
        let ground_alias = ground_participates.then(|| {
            let alias = probe.add_node("(ground alias)");
            for r in &mut probe.resistors {
                if r.a == Terminal::Ground {
                    r.a = Terminal::Node(alias);
                }
                if r.b == Terminal::Ground {
                    r.b = Terminal::Node(alias);
                }
            }
            alias
        });
        let as_node = |t: Terminal| match t {
            Terminal::Ground => ground_alias.expect("ground participates"),
            Terminal::Node(id) => id,
        };
        let (a, b) = (as_node(a), as_node(b));
        probe.pin_temperature(b, TemperatureDelta::ZERO);
        probe.add_source(a, Power::from_watts(1.0));
        let solution = probe.solve()?;
        Ok(ThermalResistance::from_kelvin_per_watt(
            solution.temperature(a).as_kelvin(),
        ))
    }

    /// Verifies every node reaches the reference through resistors.
    fn check_connectivity(&self) -> Result<(), NetworkError> {
        let n = self.node_names.len();
        if n == 0 {
            return Ok(());
        }
        // Union-find-free BFS from all reference terminals.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut frontier: Vec<usize> = Vec::new();
        let mut reached = vec![false; n];
        for (node, _) in &self.pins {
            if !reached[node.0] {
                reached[node.0] = true;
                frontier.push(node.0);
            }
        }
        for r in &self.resistors {
            match (r.a, r.b) {
                (Terminal::Node(NodeId(i)), Terminal::Node(NodeId(j))) => {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
                (Terminal::Ground, Terminal::Node(NodeId(i)))
                | (Terminal::Node(NodeId(i)), Terminal::Ground) => {
                    if !reached[i] {
                        reached[i] = true;
                        frontier.push(i);
                    }
                }
                (Terminal::Ground, Terminal::Ground) => {}
            }
        }
        while let Some(i) = frontier.pop() {
            for &j in &adjacency[i] {
                if !reached[j] {
                    reached[j] = true;
                    frontier.push(j);
                }
            }
        }
        if let Some(i) = reached.iter().position(|&r| !r) {
            return Err(NetworkError::FloatingNode {
                name: self.node_names[i].clone(),
            });
        }
        Ok(())
    }
}

fn unknown_slot(unknown_index: &[usize], node: usize) -> Option<usize> {
    let s = unknown_index[node];
    (s != usize::MAX).then_some(s)
}

fn terminal_slot(unknown_index: &[usize], t: Terminal) -> Option<usize> {
    match t {
        Terminal::Ground => None,
        Terminal::Node(NodeId(i)) => unknown_slot(unknown_index, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: f64) -> ThermalResistance {
        ThermalResistance::from_kelvin_per_watt(v)
    }

    #[test]
    fn series_divider() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_resistor(a, b, r(10.0));
        net.add_resistor(b, Terminal::Ground, r(5.0));
        net.add_source(a, Power::from_watts(2.0));
        let sol = net.solve().unwrap();
        assert!((sol.temperature(a).as_kelvin() - 30.0).abs() < 1e-10);
        assert!((sol.temperature(b).as_kelvin() - 10.0).abs() < 1e-10);
    }

    #[test]
    fn parallel_resistors_halve() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(a, Terminal::Ground, r(10.0));
        net.add_resistor(a, Terminal::Ground, r(10.0));
        net.add_source(a, Power::from_watts(1.0));
        let sol = net.solve().unwrap();
        assert!((sol.temperature(a).as_kelvin() - 5.0).abs() < 1e-10);
    }

    #[test]
    fn pinned_node_acts_as_source() {
        // a --10-- b(pinned at 7K), no heat sources: a floats to 7K.
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_resistor(a, b, r(10.0));
        net.pin_temperature(b, TemperatureDelta::from_kelvin(7.0));
        let sol = net.solve().unwrap();
        assert!((sol.temperature(a).as_kelvin() - 7.0).abs() < 1e-10);
        assert!((sol.temperature(b).as_kelvin() - 7.0).abs() < 1e-10);
    }

    #[test]
    fn pin_between_source_and_ground_splits_flow() {
        // source 1W → a --1-- b(pinned 0) --1-- ground.
        // a = pin + 1W·1Ω = 1K; all source power exits via the pin.
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_resistor(a, b, r(1.0));
        net.add_resistor(b, Terminal::Ground, r(1.0));
        net.add_source(a, Power::from_watts(1.0));
        net.pin_temperature(b, TemperatureDelta::ZERO);
        let sol = net.solve().unwrap();
        assert!((sol.temperature(a).as_kelvin() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn no_reference_is_detected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_resistor(a, b, r(1.0));
        net.add_source(a, Power::from_watts(1.0));
        assert_eq!(net.solve().unwrap_err(), NetworkError::NoReference);
    }

    #[test]
    fn floating_node_is_detected_by_name() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("connected");
        let b = net.add_node("floating");
        let c = net.add_node("floating2");
        net.add_resistor(a, Terminal::Ground, r(1.0));
        net.add_resistor(b, c, r(1.0));
        match net.solve().unwrap_err() {
            NetworkError::FloatingNode { name } => assert!(name.starts_with("floating")),
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn dense_and_cg_agree() {
        // A ladder big enough for CG to be exercised meaningfully.
        let mut net = ThermalNetwork::new();
        let nodes: Vec<NodeId> = (0..300).map(|i| net.add_node(format!("n{i}"))).collect();
        net.add_resistor(nodes[0], Terminal::Ground, r(1.0));
        for w in nodes.windows(2) {
            net.add_resistor(w[0], w[1], r(0.5));
        }
        for (i, n) in nodes.iter().enumerate() {
            if i % 7 == 0 {
                net.add_source(*n, Power::from_watts(0.01));
            }
        }
        let dense = net.solve_with(SolverChoice::Dense).unwrap();
        let cg = net.solve_with(SolverChoice::ConjugateGradient).unwrap();
        for n in &nodes {
            let d = dense.temperature(*n).as_kelvin();
            let c = cg.temperature(*n).as_kelvin();
            assert!((d - c).abs() < 1e-6 * d.abs().max(1.0), "{d} vs {c}");
        }
    }

    #[test]
    fn superposition_holds() {
        // Linear network ⇒ response to q1+q2 equals sum of responses.
        let build = |q1: f64, q2: f64| {
            let mut net = ThermalNetwork::new();
            let a = net.add_node("a");
            let b = net.add_node("b");
            net.add_resistor(a, b, r(3.0));
            net.add_resistor(b, Terminal::Ground, r(2.0));
            net.add_resistor(a, Terminal::Ground, r(7.0));
            if q1 != 0.0 {
                net.add_source(a, Power::from_watts(q1));
            }
            if q2 != 0.0 {
                net.add_source(b, Power::from_watts(q2));
            }
            let sol = net.solve().unwrap();
            (
                sol.temperature(a).as_kelvin(),
                sol.temperature(b).as_kelvin(),
            )
        };
        let (a1, b1) = build(2.0, 0.0);
        let (a2, b2) = build(0.0, 5.0);
        let (a12, b12) = build(2.0, 5.0);
        assert!((a1 + a2 - a12).abs() < 1e-10);
        assert!((b1 + b2 - b12).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_resistance_rejected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(a, Terminal::Ground, ThermalResistance::ZERO);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_loop_rejected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(a, a, r(1.0));
    }

    #[test]
    #[should_panic(expected = "already pinned")]
    fn double_pin_rejected() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.pin_temperature(a, TemperatureDelta::ZERO);
        net.pin_temperature(a, TemperatureDelta::from_kelvin(1.0));
    }

    #[test]
    fn equivalent_resistance_of_series_chain() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_resistor(a, b, r(10.0));
        net.add_resistor(b, Terminal::Ground, r(5.0));
        let eq = net.equivalent_resistance(a, Terminal::Ground).unwrap();
        assert!((eq.as_kelvin_per_watt() - 15.0).abs() < 1e-10);
        let eq_ab = net.equivalent_resistance(a, b).unwrap();
        assert!((eq_ab.as_kelvin_per_watt() - 10.0).abs() < 1e-10);
    }

    #[test]
    fn equivalent_resistance_of_parallel_pair() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(a, Terminal::Ground, r(10.0));
        net.add_resistor(a, Terminal::Ground, r(40.0));
        let eq = net.equivalent_resistance(a, Terminal::Ground).unwrap();
        assert!((eq.as_kelvin_per_watt() - 8.0).abs() < 1e-10);
    }

    #[test]
    fn equivalent_resistance_of_wheatstone_bridge() {
        // Balanced bridge: the middle resistor carries nothing and the
        // equivalent is (1+1) ∥ (1+1) = 1.
        let mut net = ThermalNetwork::new();
        let top = net.add_node("top");
        let left = net.add_node("left");
        let right = net.add_node("right");
        net.add_resistor(top, left, r(1.0));
        net.add_resistor(top, right, r(1.0));
        net.add_resistor(left, Terminal::Ground, r(1.0));
        net.add_resistor(right, Terminal::Ground, r(1.0));
        net.add_resistor(left, right, r(3.0)); // bridge
        let eq = net.equivalent_resistance(top, Terminal::Ground).unwrap();
        assert!((eq.as_kelvin_per_watt() - 1.0).abs() < 1e-10, "{eq}");
    }

    #[test]
    fn equivalent_resistance_ignores_existing_sources() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(a, Terminal::Ground, r(7.0));
        net.add_source(a, Power::from_watts(123.0)); // must not matter
        let eq = net.equivalent_resistance(a, Terminal::Ground).unwrap();
        assert!((eq.as_kelvin_per_watt() - 7.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "distinct terminals")]
    fn equivalent_resistance_needs_two_terminals() {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(a, Terminal::Ground, r(1.0));
        let _ = net.equivalent_resistance(a, a);
    }
}
