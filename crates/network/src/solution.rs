//! Solved-network queries: temperatures, branch flows, conservation audit.

use ttsv_units::{Power, TemperatureDelta};

use crate::network::{NodeId, Terminal, ThermalNetwork};

/// Heat flow through one resistor of a solved network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchFlow {
    /// Branch index (as returned by
    /// [`ThermalNetwork::add_resistor`](crate::ThermalNetwork::add_resistor)).
    pub branch: usize,
    /// Flow from terminal `a` toward terminal `b` (negative = reverse).
    pub power: Power,
}

/// The result of solving a [`ThermalNetwork`]: node temperatures plus
/// derived quantities.
#[derive(Debug, Clone)]
pub struct NetworkSolution {
    network: ThermalNetwork,
    temperatures: Vec<TemperatureDelta>,
}

impl NetworkSolution {
    pub(crate) fn new(network: ThermalNetwork, temperatures: Vec<TemperatureDelta>) -> Self {
        debug_assert_eq!(network.node_count(), temperatures.len());
        Self {
            network,
            temperatures,
        }
    }

    /// Temperature of a node above the reference.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved network.
    #[must_use]
    pub fn temperature(&self, node: NodeId) -> TemperatureDelta {
        self.temperatures[node.0]
    }

    /// Temperature of a terminal (ground is 0 by definition).
    #[must_use]
    pub fn terminal_temperature(&self, terminal: Terminal) -> TemperatureDelta {
        match terminal {
            Terminal::Ground => TemperatureDelta::ZERO,
            Terminal::Node(id) => self.temperature(id),
        }
    }

    /// The hottest node and its temperature, or `None` for an empty network.
    #[must_use]
    pub fn max_temperature(&self) -> Option<(NodeId, TemperatureDelta)> {
        self.temperatures
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite temperatures"))
            .map(|(i, t)| (NodeId(i), *t))
    }

    /// All node temperatures in node-creation order.
    #[must_use]
    pub fn temperatures(&self) -> &[TemperatureDelta] {
        &self.temperatures
    }

    /// Heat flow through branch `branch` (from its `a` terminal to its `b`
    /// terminal).
    ///
    /// # Panics
    ///
    /// Panics if the branch index is out of range.
    #[must_use]
    pub fn branch_flow(&self, branch: usize) -> BranchFlow {
        let r = &self.network.resistors[branch];
        let dt = self.terminal_temperature(r.a) - self.terminal_temperature(r.b);
        BranchFlow {
            branch,
            power: dt / r.resistance,
        }
    }

    /// Flows through every branch, in insertion order.
    #[must_use]
    pub fn branch_flows(&self) -> Vec<BranchFlow> {
        (0..self.network.resistors.len())
            .map(|i| self.branch_flow(i))
            .collect()
    }

    /// Total heat crossing into ground (through resistors tied to ground).
    #[must_use]
    pub fn heat_into_ground(&self) -> Power {
        let mut total = Power::ZERO;
        for (i, r) in self.network.resistors.iter().enumerate() {
            let flow = self.branch_flow(i).power;
            match (r.a, r.b) {
                (_, Terminal::Ground) => total += flow,
                (Terminal::Ground, _) => total += -flow,
                _ => {}
            }
        }
        total
    }

    /// Largest KCL residual over all unpinned nodes: net heat flowing into
    /// the node from branches and sources. Should be ~0 for a correct solve;
    /// exposed so tests and callers can audit energy conservation.
    #[must_use]
    pub fn kcl_residual_max(&self) -> Power {
        let n = self.network.node_count();
        let mut residual = vec![0.0; n];
        for (node, p) in &self.network.sources {
            residual[node.0] += p.as_watts();
        }
        for (i, r) in self.network.resistors.iter().enumerate() {
            let flow = self.branch_flow(i).power.as_watts();
            if let Terminal::Node(NodeId(a)) = r.a {
                residual[a] -= flow;
            }
            if let Terminal::Node(NodeId(b)) = r.b {
                residual[b] += flow;
            }
        }
        for (node, _) in &self.network.pins {
            residual[node.0] = 0.0; // pins legitimately absorb imbalance
        }
        Power::from_watts(residual.iter().fold(0.0f64, |m, v| m.max(v.abs())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Terminal, ThermalNetwork};
    use ttsv_units::ThermalResistance;

    fn r(v: f64) -> ThermalResistance {
        ThermalResistance::from_kelvin_per_watt(v)
    }

    fn solved_ladder() -> (ThermalNetwork, NetworkSolution, NodeId, NodeId) {
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.add_resistor(a, b, r(10.0));
        net.add_resistor(b, Terminal::Ground, r(5.0));
        net.add_source(a, Power::from_watts(2.0));
        let sol = net.solve().unwrap();
        (net, sol, a, b)
    }

    #[test]
    fn branch_flows_carry_the_source_power() {
        let (_, sol, _, _) = solved_ladder();
        let flows = sol.branch_flows();
        assert_eq!(flows.len(), 2);
        assert!((flows[0].power.as_watts() - 2.0).abs() < 1e-10);
        assert!((flows[1].power.as_watts() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn heat_into_ground_equals_source_power() {
        let (net, sol, _, _) = solved_ladder();
        assert!(
            (sol.heat_into_ground().as_watts() - net.total_source_power().as_watts()).abs() < 1e-10
        );
    }

    #[test]
    fn kcl_residual_is_tiny() {
        let (_, sol, _, _) = solved_ladder();
        assert!(sol.kcl_residual_max().as_watts() < 1e-10);
    }

    #[test]
    fn max_temperature_is_the_source_node() {
        let (_, sol, a, _) = solved_ladder();
        let (hottest, t) = sol.max_temperature().unwrap();
        assert_eq!(hottest, a);
        assert!((t.as_kelvin() - 30.0).abs() < 1e-10);
    }

    #[test]
    fn flow_direction_signs() {
        // Flow is positive a→b; reversing the declaration flips the sign.
        let mut net = ThermalNetwork::new();
        let a = net.add_node("a");
        net.add_resistor(Terminal::Ground, a, r(5.0)); // declared ground→a
        net.add_source(a, Power::from_watts(1.0));
        let sol = net.solve().unwrap();
        // Heat actually flows a→ground, so declared-direction flow is negative.
        assert!(sol.branch_flow(0).power.as_watts() < 0.0);
        assert!((sol.heat_into_ground().as_watts() - 1.0).abs() < 1e-10);
    }
}
