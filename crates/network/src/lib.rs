//! Generic steady-state thermal resistive networks.
//!
//! The DATE 2011 TTSV paper exploits the electrical–thermal duality: heat
//! sources are current sources, temperatures are node voltages, and thermal
//! resistances are resistors. This crate provides the generic substrate —
//! build a network of nodes, resistors, heat sources and temperature pins,
//! then solve the Kirchhoff current-law system for every node temperature —
//! on top of which `ttsv-core` expresses the paper's Model A (compact) and
//! Model B (distributed π-segment) networks.
//!
//! # Examples
//!
//! Heat flowing through two resistors in series into the sink:
//!
//! ```
//! use ttsv_network::{Terminal, ThermalNetwork};
//! use ttsv_units::{Power, ThermalResistance};
//!
//! let mut net = ThermalNetwork::new();
//! let top = net.add_node("top");
//! let mid = net.add_node("mid");
//! net.add_resistor(top, mid, ThermalResistance::from_kelvin_per_watt(10.0));
//! net.add_resistor(mid, Terminal::Ground, ThermalResistance::from_kelvin_per_watt(5.0));
//! net.add_source(top, Power::from_watts(2.0));
//!
//! let solution = net.solve()?;
//! assert!((solution.temperature(top).as_kelvin() - 30.0).abs() < 1e-9);
//! assert!((solution.temperature(mid).as_kelvin() - 10.0).abs() < 1e-9);
//! # Ok::<(), ttsv_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
mod solution;

pub use error::NetworkError;
pub use network::{NodeId, SolverChoice, Terminal, ThermalNetwork};
pub use solution::{BranchFlow, NetworkSolution};
