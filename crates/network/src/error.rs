//! Error type for network construction and solving.

use ttsv_linalg::LinalgError;

/// Errors from building or solving a [`ThermalNetwork`](crate::ThermalNetwork).
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The network has no reference: neither a resistor to ground nor a
    /// pinned node, so absolute temperatures are undefined.
    NoReference,
    /// A node is not connected (directly or transitively) to the reference,
    /// making the KCL matrix singular.
    FloatingNode {
        /// The disconnected node's debug name.
        name: String,
    },
    /// The underlying linear solve failed.
    Solver(LinalgError),
}

impl core::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetworkError::NoReference => write!(
                f,
                "network has no temperature reference (ground resistor or pinned node)"
            ),
            NetworkError::FloatingNode { name } => {
                write!(f, "node '{name}' is not connected to the reference")
            }
            NetworkError::Solver(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for NetworkError {
    fn from(e: LinalgError) -> Self {
        NetworkError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = NetworkError::NoReference;
        assert!(e.to_string().contains("reference"));
        assert!(e.source().is_none());

        let e = NetworkError::Solver(LinalgError::Singular { pivot: 1 });
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
    }
}
