//! Property-based tests: physics invariants of random resistive networks.

use proptest::prelude::*;
use ttsv_network::{Terminal, ThermalNetwork};
use ttsv_units::{Power, ThermalResistance};

/// A random connected network: nodes chained to ground (guaranteeing a
/// reference path) plus random extra cross resistors and sources.
#[derive(Debug, Clone)]
struct RandomNetwork {
    chain_resistances: Vec<f64>,
    cross_links: Vec<(usize, usize, f64)>,
    sources: Vec<(usize, f64)>,
}

fn random_network(max_nodes: usize) -> impl Strategy<Value = RandomNetwork> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0.1..100.0f64, n),
                prop::collection::vec((0..n, 0..n, 0.1..100.0f64), 0..2 * n),
                prop::collection::vec((0..n, 0.001..10.0f64), 1..n),
            )
        })
        .prop_map(|(chain_resistances, cross_links, sources)| RandomNetwork {
            chain_resistances,
            cross_links,
            sources,
        })
}

fn build(spec: &RandomNetwork) -> (ThermalNetwork, Vec<ttsv_network::NodeId>) {
    let mut net = ThermalNetwork::new();
    let n = spec.chain_resistances.len();
    let nodes: Vec<_> = (0..n).map(|i| net.add_node(format!("n{i}"))).collect();
    // Chain: n0 - n1 - ... - ground, guaranteeing connectivity.
    for i in 0..n {
        let to = if i + 1 < n {
            Terminal::Node(nodes[i + 1])
        } else {
            Terminal::Ground
        };
        net.add_resistor(
            nodes[i],
            to,
            ThermalResistance::from_kelvin_per_watt(spec.chain_resistances[i]),
        );
    }
    for &(a, b, r) in &spec.cross_links {
        if a != b {
            net.add_resistor(
                nodes[a],
                nodes[b],
                ThermalResistance::from_kelvin_per_watt(r),
            );
        }
    }
    for &(node, q) in &spec.sources {
        net.add_source(nodes[node], Power::from_watts(q));
    }
    (net, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn energy_is_conserved(spec in random_network(12)) {
        let (net, _) = build(&spec);
        let sol = net.solve().unwrap();
        // All injected heat leaves through ground.
        let injected = net.total_source_power().as_watts();
        let drained = sol.heat_into_ground().as_watts();
        prop_assert!((injected - drained).abs() < 1e-8 * injected.max(1.0),
            "injected {injected} vs drained {drained}");
        // KCL holds at every node.
        prop_assert!(sol.kcl_residual_max().as_watts() < 1e-8);
    }

    #[test]
    fn temperatures_are_nonnegative_with_positive_sources(spec in random_network(10)) {
        // Pure resistive network with only heat inputs: every temperature is
        // above the sink (maximum principle).
        let (net, nodes) = build(&spec);
        let sol = net.solve().unwrap();
        for n in &nodes {
            prop_assert!(sol.temperature(*n).as_kelvin() >= -1e-9);
        }
    }

    #[test]
    fn scaling_sources_scales_temperatures(spec in random_network(8)) {
        // Linearity: doubling every source doubles every temperature.
        let (net, nodes) = build(&spec);
        let sol1 = net.solve().unwrap();

        let mut doubled = spec.clone();
        for s in &mut doubled.sources {
            s.1 *= 2.0;
        }
        let (net2, nodes2) = build(&doubled);
        let sol2 = net2.solve().unwrap();

        for (a, b) in nodes.iter().zip(&nodes2) {
            let t1 = sol1.temperature(*a).as_kelvin();
            let t2 = sol2.temperature(*b).as_kelvin();
            prop_assert!((2.0 * t1 - t2).abs() < 1e-8 * t2.abs().max(1.0));
        }
    }

    #[test]
    fn adding_a_resistor_to_ground_never_heats_any_node(spec in random_network(8)) {
        // Monotonicity: an extra path to the sink can only cool the circuit.
        let (net, nodes) = build(&spec);
        let before = net.solve().unwrap();

        let (mut net2, nodes2) = build(&spec);
        net2.add_resistor(nodes2[0], Terminal::Ground,
            ThermalResistance::from_kelvin_per_watt(1.0));
        let after = net2.solve().unwrap();

        for (a, b) in nodes.iter().zip(&nodes2) {
            let t_before = before.temperature(*a).as_kelvin();
            let t_after = after.temperature(*b).as_kelvin();
            prop_assert!(t_after <= t_before + 1e-9,
                "node heated from {t_before} to {t_after}");
        }
    }
}
