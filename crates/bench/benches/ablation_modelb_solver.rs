//! Ablation: Model B's three ladder solvers — the dedicated 2×2
//! block-tridiagonal elimination (default), the generic banded LU, and
//! conjugate gradients through the generic network. The ladder is SPD and
//! block tridiagonal with interleaved numbering (DESIGN.md §5), so both
//! direct paths are O(n); the block kernel wins by skipping the per-entry
//! band bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttsv::core::model_b::LadderSolver;
use ttsv::prelude::*;
use ttsv_bench::block;

fn bench(c: &mut Criterion) {
    let scenario = block(5.0, 1.0);
    let mut group = c.benchmark_group("ablation_modelb_solver");
    group.sample_size(15);
    for segments in [100usize, 500, 1000] {
        for (label, solver) in [
            ("block_tridiag", LadderSolver::BlockTridiagonal),
            ("banded_lu", LadderSolver::BandedLu),
            ("network_cg", LadderSolver::ConjugateGradient),
        ] {
            let model = ModelB::with_segments(50, segments).with_solver(solver);
            group.bench_with_input(BenchmarkId::new(label, segments), &model, |b, m| {
                b.iter(|| m.max_delta_t(black_box(&scenario)).expect("solvable"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
