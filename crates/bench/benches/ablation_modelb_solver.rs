//! Ablation: Model B's banded-LU solver vs conjugate gradients through the
//! generic network — the design choice DESIGN.md §5 calls out (the ladder
//! is SPD with half-bandwidth 2, so direct banded elimination is O(n)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttsv::core::model_b::LadderSolver;
use ttsv::prelude::*;
use ttsv_bench::block;

fn bench(c: &mut Criterion) {
    let scenario = block(5.0, 1.0);
    let mut group = c.benchmark_group("ablation_modelb_solver");
    group.sample_size(15);
    for segments in [100usize, 500, 1000] {
        let banded = ModelB::with_segments(50, segments);
        let cg = ModelB::with_segments(50, segments).with_solver(LadderSolver::ConjugateGradient);
        group.bench_with_input(BenchmarkId::new("banded_lu", segments), &banded, |b, m| {
            b.iter(|| m.max_delta_t(black_box(&scenario)).expect("solvable"))
        });
        group.bench_with_input(BenchmarkId::new("network_cg", segments), &cg, |b, m| {
            b.iter(|| m.max_delta_t(black_box(&scenario)).expect("solvable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
