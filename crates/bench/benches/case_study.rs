//! §IV-E — the DRAM-µP case study, timed per model (the paper reports
//! FEM 59 min vs Model B(1000) 8.5 s vs closed-form Model A).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::core::full_chip::CaseStudy;
use ttsv::prelude::*;

fn bench(c: &mut Criterion) {
    let scenario = CaseStudy::paper().unit_cell_scenario().expect("valid");
    let model_a = ModelA::with_coefficients(CaseStudy::paper_fitting());
    let model_b = ModelB::paper_b1000();
    let one_d = OneDModel::new();
    let fem_coarse = FemReference::new().with_resolution(FemResolution::coarse());
    let fem_default = FemReference::new();

    let mut group = c.benchmark_group("case_study");
    group.sample_size(20);
    group.bench_function("model_a", |b| {
        b.iter(|| model_a.max_delta_t(black_box(&scenario)).expect("solvable"))
    });
    group.bench_function("model_b_1000", |b| {
        b.iter(|| model_b.max_delta_t(black_box(&scenario)).expect("solvable"))
    });
    group.bench_function("one_d", |b| {
        b.iter(|| one_d.max_delta_t(black_box(&scenario)).expect("solvable"))
    });
    group.sample_size(10);
    group.bench_function("fem_coarse", |b| {
        b.iter(|| {
            fem_coarse
                .max_delta_t(black_box(&scenario))
                .expect("solvable")
        })
    });
    group.bench_function("fem_default", |b| {
        b.iter(|| {
            fem_default
                .max_delta_t(black_box(&scenario))
                .expect("solvable")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
