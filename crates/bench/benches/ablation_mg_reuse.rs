//! Ablation: amortizing multigrid setup across solves of one sparsity
//! pattern.
//!
//! Three comparisons:
//!
//! * full `MultigridHierarchy::build` vs numeric-only `refresh` on the
//!   32 k-cell box — the tentpole saving: aggregation,
//!   prolongator/Galerkin pattern discovery, and the transpose adjacency
//!   happen once per mesh;
//! * one V-cycle under the Jacobi vs the degree-3 Chebyshev smoother —
//!   the per-PCG-iteration cost of the stronger relaxation;
//! * a radius sweep on the 3-D `CartesianReference` with a fresh
//!   reference per run (every point re-aggregates) vs a shared one
//!   (pooled hierarchies refreshed per point).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::linalg::{MultigridConfig, MultigridHierarchy, MultigridPreconditioner, Preconditioner};
use ttsv::prelude::*;
use ttsv::validate::fem_adapter::CartesianReference;
use ttsv_bench::{block, mg_box_matrix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mg_reuse");
    group.sample_size(10);

    let a1 = mg_box_matrix(1.0);
    let a2 = mg_box_matrix(3.0);
    let config = MultigridConfig::default();
    group.bench_function("hierarchy_build/box32k", |b| {
        b.iter(|| MultigridHierarchy::build(black_box(&a1), &config).expect("coarsens"))
    });
    let mut hierarchy = MultigridHierarchy::build(&a1, &config).expect("coarsens");
    group.bench_function("hierarchy_refresh/box32k", |b| {
        b.iter(|| hierarchy.refresh(black_box(&a2)).expect("same pattern"))
    });

    let n = 32 * 32 * 32;
    let r: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut z = vec![0.0; n];
    let jacobi = MultigridPreconditioner::new(&a1, &config).expect("coarsens");
    group.bench_function("vcycle_jacobi/box32k", |b| {
        b.iter(|| jacobi.apply(black_box(&r), &mut z))
    });
    let cheby =
        MultigridPreconditioner::new(&a1, &MultigridConfig::chebyshev(3)).expect("coarsens");
    group.bench_function("vcycle_chebyshev3/box32k", |b| {
        b.iter(|| cheby.apply(black_box(&r), &mut z))
    });

    // End-to-end reuse on the workload where setup is a real fraction of
    // the solve: the 3-D Cartesian reference (multigrid-PCG under Auto).
    let points: Vec<Scenario> = [6.0, 9.0, 12.0].iter().map(|&r| block(r, 2.0)).collect();
    let cart = || {
        CartesianReference::new()
            .with_lateral_cells(16)
            .with_resolution(FemResolution::coarse())
    };
    let sweep = |fem: &CartesianReference| -> f64 {
        points
            .iter()
            .map(|s| fem.max_delta_t(s).expect("solvable").as_kelvin())
            .sum()
    };
    group.bench_function("cartesian_sweep_rebuild/coarse", |b| {
        b.iter(|| {
            let cold = cart();
            sweep(&cold)
        })
    });
    let warm = cart();
    group.bench_function("cartesian_sweep_reuse/coarse", |b| b.iter(|| sweep(&warm)));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
