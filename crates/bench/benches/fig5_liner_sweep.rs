//! Fig. 5 — the liner-thickness sweep, timed per model (including every
//! Model B segmentation the paper plots).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::prelude::*;

const LINERS: &[f64] = &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

fn scenarios() -> Vec<Scenario> {
    LINERS
        .iter()
        .map(|&tl| {
            Scenario::paper_block()
                .with_tsv(TtsvConfig::new(
                    Length::from_micrometers(5.0),
                    Length::from_micrometers(tl),
                ))
                .with_ild_thickness(Length::from_micrometers(7.0))
                .build()
                .expect("valid")
        })
        .collect()
}

fn sweep(model: &dyn ThermalModel, scenarios: &[Scenario]) -> f64 {
    scenarios
        .iter()
        .map(|s| model.max_delta_t(s).expect("solvable").as_kelvin())
        .sum()
}

fn bench(c: &mut Criterion) {
    let scenarios = scenarios();
    let mut group = c.benchmark_group("fig5_liner_sweep");
    group.sample_size(20);

    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    group.bench_function("model_a", |b| b.iter(|| sweep(black_box(&a), &scenarios)));
    for (name, model) in [
        ("model_b_1", ModelB::paper_b1()),
        ("model_b_20", ModelB::paper_b20()),
        ("model_b_100", ModelB::paper_b100()),
        ("model_b_500", ModelB::paper_b500()),
    ] {
        group.bench_function(name, |b| b.iter(|| sweep(black_box(&model), &scenarios)));
    }
    let one_d = OneDModel::new();
    group.bench_function("one_d", |b| b.iter(|| sweep(black_box(&one_d), &scenarios)));

    group.sample_size(10);
    let fem = FemReference::new().with_resolution(FemResolution::coarse());
    group.bench_function("fem_coarse", |b| {
        b.iter(|| sweep(black_box(&fem), &scenarios))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
