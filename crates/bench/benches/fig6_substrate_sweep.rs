//! Fig. 6 — the substrate-thickness sweep (the non-monotonic one), timed
//! per model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::prelude::*;
use ttsv_bench::block_with_tsi;

const THICKNESSES: &[f64] = &[5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 80.0];

fn sweep(model: &dyn ThermalModel, scenarios: &[Scenario]) -> f64 {
    scenarios
        .iter()
        .map(|s| model.max_delta_t(s).expect("solvable").as_kelvin())
        .sum()
}

fn bench(c: &mut Criterion) {
    let scenarios: Vec<Scenario> = THICKNESSES.iter().map(|&t| block_with_tsi(t)).collect();
    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let one_d = OneDModel::new();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());

    let mut group = c.benchmark_group("fig6_substrate_sweep");
    group.sample_size(20);
    group.bench_function("model_a", |b| {
        b.iter(|| sweep(black_box(&model_a), &scenarios))
    });
    group.bench_function("model_b_100", |b| {
        b.iter(|| sweep(black_box(&model_b), &scenarios))
    });
    group.bench_function("one_d", |b| b.iter(|| sweep(black_box(&one_d), &scenarios)));
    group.sample_size(10);
    group.bench_function("fem_coarse", |b| {
        b.iter(|| sweep(black_box(&fem), &scenarios))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
