//! Full-chip floorplan-engine benchmark (§IV-E generalized to
//! non-uniform maps): a 32×32 hotspot map (3 distinct unit cells after
//! dedup) and a 32×32 gradient map (every cell distinct) evaluated
//! through Model B(100), plus the dedup-off ablation showing what the
//! scenario-hash cache saves on the hotspot map (1024 solves vs 3), the
//! factor-once batched path (one ladder factorization shared by all 1024
//! distinct-power tiles), and the warm cross-call cache (the serving
//! steady state).
//!
//! The engine's caches persist across calls, so every cold-path row
//! constructs a fresh engine per iteration — otherwise the second
//! iteration would measure cache hits, not solves.

use criterion::{criterion_group, criterion_main, Criterion};
use ttsv::prelude::*;
use ttsv_bench::{gradient_floorplan, hotspot_floorplan};

fn bench_floorplan(c: &mut Criterion) {
    let mut group = c.benchmark_group("floorplan_chip");
    group.sample_size(10);

    let hotspot = hotspot_floorplan(32);
    let gradient = gradient_floorplan(32);
    let model = ModelB::paper_b100();

    group.bench_function("hotspot_32x32/model_b100", |b| {
        b.iter(|| {
            ChipEngine::new()
                .evaluate(&hotspot, &model)
                .expect("solvable")
        });
    });
    group.bench_function("hotspot_32x32/model_b100/no_dedup", |b| {
        b.iter(|| {
            ChipEngine::new()
                .with_dedup(false)
                .evaluate(&hotspot, &model)
                .expect("solvable")
        });
    });
    group.bench_function("gradient_32x32/model_b100", |b| {
        b.iter(|| {
            ChipEngine::new()
                .evaluate(&gradient, &model)
                .expect("solvable")
        });
    });
    group.bench_function("gradient_32x32/model_b100/factor_shared", |b| {
        b.iter(|| {
            ChipEngine::new()
                .evaluate_factored(&gradient, &model)
                .expect("solvable")
        });
    });
    group.bench_function("gradient_32x32/model_b100/warm_cache", |b| {
        let engine = ChipEngine::new();
        engine
            .evaluate_factored(&gradient, &model)
            .expect("solvable");
        b.iter(|| {
            engine
                .evaluate_factored(&gradient, &model)
                .expect("solvable")
        });
    });
    group.bench_function("hotspot_32x32/model_a", |b| {
        let model = ModelA::with_coefficients(FittingCoefficients::paper_case_study());
        b.iter(|| {
            ChipEngine::new()
                .evaluate(&hotspot, &model)
                .expect("solvable")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_floorplan);
criterion_main!(benches);
