//! Full-chip floorplan-engine benchmark (§IV-E generalized to
//! non-uniform maps): a 32×32 hotspot map (3 distinct unit cells after
//! dedup) and a 32×32 gradient map (every cell distinct) evaluated
//! through Model B(100), plus the dedup-off ablation showing what the
//! scenario-hash cache saves on the hotspot map (1024 solves vs 3).

use criterion::{criterion_group, criterion_main, Criterion};
use ttsv::prelude::*;
use ttsv_bench::{gradient_floorplan, hotspot_floorplan};

fn bench_floorplan(c: &mut Criterion) {
    let mut group = c.benchmark_group("floorplan_chip");
    group.sample_size(10);

    let hotspot = hotspot_floorplan(32);
    let gradient = gradient_floorplan(32);
    let model = ModelB::paper_b100();

    group.bench_function("hotspot_32x32/model_b100", |b| {
        let engine = ChipEngine::new();
        b.iter(|| engine.evaluate(&hotspot, &model).expect("solvable"));
    });
    group.bench_function("hotspot_32x32/model_b100/no_dedup", |b| {
        let engine = ChipEngine::new().with_dedup(false);
        b.iter(|| engine.evaluate(&hotspot, &model).expect("solvable"));
    });
    group.bench_function("gradient_32x32/model_b100", |b| {
        let engine = ChipEngine::new();
        b.iter(|| engine.evaluate(&gradient, &model).expect("solvable"));
    });
    group.bench_function("hotspot_32x32/model_a", |b| {
        let engine = ChipEngine::new();
        let model = ModelA::with_coefficients(FittingCoefficients::paper_case_study());
        b.iter(|| engine.evaluate(&hotspot, &model).expect("solvable"));
    });

    group.finish();
}

criterion_group!(benches, bench_floorplan);
criterion_main!(benches);
