//! Fig. 4 — the radius sweep, timed per model.
//!
//! Regenerates the Fig. 4 series (Max ΔT vs TTSV radius) per model; the
//! Criterion timings show the cost hierarchy the paper's Table I alludes
//! to: 1-D ≪ Model A ≪ Model B ≪ FEM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::prelude::*;
use ttsv_bench::block;

const RADII: &[f64] = &[1.0, 3.0, 5.0, 8.0, 14.0, 20.0];

fn sweep(model: &dyn ThermalModel, scenarios: &[Scenario]) -> f64 {
    scenarios
        .iter()
        .map(|s| model.max_delta_t(s).expect("solvable").as_kelvin())
        .sum()
}

fn bench(c: &mut Criterion) {
    let scenarios: Vec<Scenario> = RADII.iter().map(|&r| block(r, 0.5)).collect();
    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let one_d = OneDModel::new();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());

    let mut group = c.benchmark_group("fig4_radius_sweep");
    group.sample_size(20);
    group.bench_function("model_a", |b| {
        b.iter(|| sweep(black_box(&model_a), &scenarios))
    });
    group.bench_function("model_b_100", |b| {
        b.iter(|| sweep(black_box(&model_b), &scenarios))
    });
    group.bench_function("one_d", |b| b.iter(|| sweep(black_box(&one_d), &scenarios)));
    group.sample_size(10);
    group.bench_function("fem_coarse", |b| {
        b.iter(|| sweep(black_box(&fem), &scenarios))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
