//! Ablation: FEM reference cost vs mesh resolution — quantifies the
//! accuracy/runtime trade the `Fidelity` knob exposes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttsv::prelude::*;
use ttsv_bench::block;

fn bench(c: &mut Criterion) {
    let scenario = block(8.0, 0.5);
    let mut group = c.benchmark_group("ablation_fem_mesh");
    group.sample_size(10);
    for (label, res) in [
        ("coarse", FemResolution::coarse()),
        ("default", FemResolution::default()),
        ("fine", FemResolution::fine()),
    ] {
        let fem = FemReference::new().with_resolution(res);
        group.bench_with_input(BenchmarkId::from_parameter(label), &fem, |b, f| {
            b.iter(|| f.max_delta_t(black_box(&scenario)).expect("solvable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
