//! Calibration cost: fitting k1/k2 against a precomputed reference
//! (the paper's "1.9 minute" methodology step, minus the FEM sweep that is
//! benchmarked separately in the figure benches).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::prelude::*;
use ttsv::validate::calibrate::calibrate_model_a_against;
use ttsv::validate::experiments::block_training_scenarios;

fn bench(c: &mut Criterion) {
    let scenarios = block_training_scenarios().expect("valid training set");
    // A fixed synthetic reference (Model A with the paper's coefficients)
    // keeps the bench deterministic and FEM-free.
    let truth = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let reference: Vec<f64> = scenarios
        .iter()
        .map(|s| truth.max_delta_t(s).expect("solvable").as_kelvin())
        .collect();

    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    group.bench_function("nelder_mead_fit_k1_k2", |b| {
        b.iter(|| {
            calibrate_model_a_against(black_box(&scenarios), black_box(&reference))
                .expect("calibration converges")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
