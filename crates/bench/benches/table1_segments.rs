//! Table I's runtime row: Model B solve time vs segment count.
//!
//! The paper reports 1 ms / 3 ms / 32 ms / 2475 ms for B(1) … B(500) (2010
//! hardware, dense solver). Our banded LU scales linearly, so the absolute
//! numbers are far smaller, but the growth with segment count is the
//! reproducible shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttsv::core::model_b::LadderSolver;
use ttsv::prelude::*;
use ttsv_bench::block;

fn bench(c: &mut Criterion) {
    let scenario = block(5.0, 1.0);
    let mut group = c.benchmark_group("table1_segments");
    group.sample_size(30);
    for (label, model) in [
        ("B(1)", ModelB::paper_b1()),
        ("B(20)", ModelB::paper_b20()),
        ("B(100)", ModelB::paper_b100()),
        ("B(500)", ModelB::paper_b500()),
        ("B(1000)", ModelB::paper_b1000()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, m| {
            b.iter(|| m.max_delta_t(black_box(&scenario)).expect("solvable"))
        });
    }
    // Ladder-solver variants at the deepest segment counts: the dedicated
    // block-tridiagonal kernel (the default above) vs the generic banded
    // LU it replaced.
    for segments in [500usize, 1000] {
        for (label, solver) in [
            ("block_tridiag", LadderSolver::BlockTridiagonal),
            ("banded_lu", LadderSolver::BandedLu),
        ] {
            let model = ModelB::with_segments(50, segments).with_solver(solver);
            group.bench_with_input(BenchmarkId::new(label, segments), &model, |b, m| {
                b.iter(|| m.max_delta_t(black_box(&scenario)).expect("solvable"))
            });
        }
    }
    // The comparison rows of Table I.
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    group.bench_function("A", |b| {
        b.iter(|| a.max_delta_t(black_box(&scenario)).expect("solvable"))
    });
    let one_d = OneDModel::new();
    group.bench_function("1-D", |b| {
        b.iter(|| one_d.max_delta_t(black_box(&scenario)).expect("solvable"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
