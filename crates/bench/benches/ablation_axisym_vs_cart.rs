//! Ablation: axisymmetric unit cell vs full 3-D Cartesian on the same
//! via-in-a-box problem — the cost side of the equal-area-disc substitution
//! argued in DESIGN.md §3 (the accuracy side is covered by the
//! `fem_reference` integration test).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::fem::axisym::AxisymmetricProblem;
use ttsv::fem::cartesian::CartesianProblem;
use ttsv::fem::Axis;
use ttsv::prelude::*;
use ttsv::units::PowerDensity;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn axisym_problem() -> AxisymmetricProblem {
    let r_eq = Area::square(um(100.0)).equivalent_radius();
    let r = Axis::builder()
        .segment(um(8.0), 6)
        .segment(um(1.0), 3)
        .segment(r_eq - um(9.0), 24)
        .build();
    let z = Axis::builder()
        .segment(um(50.0), 20)
        .segment(um(7.0), 8)
        .build();
    let mut p = AxisymmetricProblem::new(r, z, Material::silicon().conductivity());
    p.set_material(
        (Length::ZERO, r_eq),
        (um(50.0), um(57.0)),
        Material::silicon_dioxide().conductivity(),
    );
    p.add_source(
        (Length::ZERO, r_eq),
        (um(50.0), um(57.0)),
        PowerDensity::from_watts_per_cubic_millimeter(70.0),
    );
    p.set_material(
        (Length::ZERO, um(8.0)),
        (um(0.0), um(57.0)),
        Material::copper().conductivity(),
    );
    p.set_material(
        (um(8.0), um(9.0)),
        (um(0.0), um(57.0)),
        Material::silicon_dioxide().conductivity(),
    );
    p
}

fn cartesian_problem() -> CartesianProblem {
    let x = Axis::builder().segment(um(100.0), 40).build();
    let y = Axis::builder().segment(um(100.0), 40).build();
    let z = Axis::builder()
        .segment(um(50.0), 20)
        .segment(um(7.0), 8)
        .build();
    let mut p = CartesianProblem::new(x, y, z, Material::silicon().conductivity());
    p.set_material(
        (um(0.0), um(100.0)),
        (um(0.0), um(100.0)),
        (um(50.0), um(57.0)),
        Material::silicon_dioxide().conductivity(),
    );
    p.add_source(
        (um(0.0), um(100.0)),
        (um(0.0), um(100.0)),
        (um(50.0), um(57.0)),
        PowerDensity::from_watts_per_cubic_millimeter(70.0),
    );
    p.set_material_cylinder(
        (um(50.0), um(50.0)),
        um(9.0),
        (um(0.0), um(57.0)),
        Material::silicon_dioxide().conductivity(),
    );
    p.set_material_cylinder(
        (um(50.0), um(50.0)),
        um(8.0),
        (um(0.0), um(57.0)),
        Material::copper().conductivity(),
    );
    p
}

fn bench(c: &mut Criterion) {
    let axi = axisym_problem();
    let cart = cartesian_problem();
    let mut group = c.benchmark_group("ablation_axisym_vs_cart");
    group.sample_size(10);
    group.bench_function("axisym_33x28", |b| {
        b.iter(|| black_box(&axi).solve().expect("solvable").max_temperature())
    });
    group.bench_function("cartesian_40x40x28", |b| {
        b.iter(|| {
            black_box(&cart)
                .solve()
                .expect("solvable")
                .max_temperature()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
