//! Fig. 7 — the via-division sweep (eq. 22), timed per model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttsv::prelude::*;
use ttsv_bench::block_divided;

const COUNTS: &[usize] = &[1, 2, 4, 9, 16];

fn sweep(model: &dyn ThermalModel, scenarios: &[Scenario]) -> f64 {
    scenarios
        .iter()
        .map(|s| model.max_delta_t(s).expect("solvable").as_kelvin())
        .sum()
}

fn bench(c: &mut Criterion) {
    let scenarios: Vec<Scenario> = COUNTS.iter().map(|&n| block_divided(n)).collect();
    let model_a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let model_b = ModelB::paper_b100();
    let one_d = OneDModel::new();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());

    let mut group = c.benchmark_group("fig7_division_sweep");
    group.sample_size(20);
    group.bench_function("model_a", |b| {
        b.iter(|| sweep(black_box(&model_a), &scenarios))
    });
    group.bench_function("model_b_100", |b| {
        b.iter(|| sweep(black_box(&model_b), &scenarios))
    });
    group.bench_function("one_d", |b| b.iter(|| sweep(black_box(&one_d), &scenarios)));
    group.sample_size(10);
    group.bench_function("fem_coarse", |b| {
        b.iter(|| sweep(black_box(&fem), &scenarios))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
