//! Ablation: the FEM reference's linear-solver options — plain CG,
//! Jacobi-, SSOR-, and multigrid-preconditioned CG, and the direct banded
//! factorization `FemSolver::Auto` picks on these meshes — at two mesh
//! resolutions.
//!
//! This is the evidence behind the PR-2 hot-path rework: iteration counts
//! fall roughly 6× from SSOR to the smoothed-aggregation multigrid
//! V-cycle, and the direct banded path beats them all while the
//! lexicographic bandwidth stays small (every axisymmetric mesh).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttsv::fem::{FemPreconditioner, FemSolver};
use ttsv::prelude::*;
use ttsv_bench::block;

fn bench(c: &mut Criterion) {
    let scenario = block(5.0, 0.5);
    let mut group = c.benchmark_group("ablation_fem_precond");
    group.sample_size(15);
    for (res_label, resolution) in [
        ("coarse", FemResolution::coarse()),
        ("default", FemResolution::default()),
    ] {
        let reference = FemReference::new().with_resolution(resolution);
        for (solver_label, solver) in [
            ("identity", FemSolver::Pcg(FemPreconditioner::Identity)),
            ("jacobi", FemSolver::Pcg(FemPreconditioner::Jacobi)),
            ("ssor", FemSolver::Pcg(FemPreconditioner::ssor())),
            ("multigrid", FemSolver::Pcg(FemPreconditioner::multigrid())),
            (
                "multigrid_cheby",
                FemSolver::Pcg(FemPreconditioner::multigrid_chebyshev(2)),
            ),
            ("direct_banded", FemSolver::DirectBanded),
        ] {
            let problem = {
                let mut p = reference.build_problem(&scenario).expect("valid scenario");
                p.set_solver(solver);
                p
            };
            group.bench_with_input(
                BenchmarkId::new(solver_label, res_label),
                &problem,
                |b, p| b.iter(|| black_box(p).solve().expect("solvable")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
