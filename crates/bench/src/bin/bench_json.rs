//! Machine-readable perf tracking: times the headline benchmarks and
//! writes their median wall-clock to a JSON file so future PRs can compare
//! against the recorded trajectory.
//!
//! Usage: `cargo run --release -p ttsv-bench --bin bench_json [-- PATH]`
//! (default output: `BENCH_4.json` in the current directory). See the
//! `ttsv-bench` crate docs for the bench → paper mapping.

use std::time::{Duration, Instant};

use ttsv::core::model_b::LadderSolver;
use ttsv::fem::{FemPreconditioner, FemSolver};
use ttsv::linalg::{MultigridConfig, MultigridHierarchy, MultigridPreconditioner, Preconditioner};
use ttsv::prelude::*;
use ttsv::validate::sweep::run_sweep;
use ttsv_bench::{block, gradient_floorplan, hotspot_floorplan, mg_box_matrix};

/// Wall-clock budget per benchmark (after the warm-up call).
const TIME_BUDGET: Duration = Duration::from_secs(2);
/// Target sample count per benchmark.
const TARGET_SAMPLES: usize = 15;

/// PR-3 numbers for the carried-over workloads (the medians recorded in
/// the committed `BENCH_3.json`, measured on the PR-3 solvers: amortized
/// multigrid hierarchies, vectorized banded LU, threaded V-cycles) — the
/// baseline the PR-4 acceptance criteria compare against. The floorplan
/// workloads are new in PR 4 and have no earlier baseline.
const BASELINE_PR3_NS: &[(&str, u128)] = &[
    ("fig4_radius_sweep/fem_coarse", 607_337),
    ("fig4_radius_sweep/model_b_100", 63_042),
    ("table1_segments/B(500)", 51_908),
    ("table1_segments/B(1000)", 153_460),
    ("table1_segments/banded_lu/1000", 272_190),
    ("ablation_fem_precond/ssor/coarse", 1_648_604),
    ("ablation_fem_precond/multigrid/coarse", 781_904),
    ("ablation_fem_precond/multigrid_cheby/coarse", 883_223),
    ("ablation_fem_precond/direct_banded/coarse", 92_552),
    ("mg_hierarchy/build/box32k", 21_925_466),
    ("mg_hierarchy/refresh/box32k", 8_887_013),
    ("mg_vcycle/jacobi/box32k", 1_484_520),
    ("mg_vcycle/chebyshev3/box32k", 3_247_104),
    ("fem_mg_sweep/rebuild", 79_049_629),
    ("fem_mg_sweep/reuse", 73_961_793),
    ("sweep_runner/fig4_quick", 808_884),
];

struct Sampler {
    results: Vec<(String, u128, usize)>,
}

impl Sampler {
    fn bench<O>(&mut self, name: &str, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        let mut samples = Vec::with_capacity(TARGET_SAMPLES);
        while samples.len() < TARGET_SAMPLES && start.elapsed() < TIME_BUDGET {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed().as_nanos());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        eprintln!(
            "{name:<45} median {median:>12} ns ({} samples)",
            samples.len()
        );
        self.results.push((name.to_string(), median, samples.len()));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ttsv-bench-json/1\",\n  \"pr\": 4,\n");
        out.push_str(
            "  \"generated_by\": \"cargo run --release -p ttsv-bench --bin bench_json\",\n",
        );
        out.push_str("  \"benches\": {\n");
        for (i, (name, median, samples)) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{name}\": {{\"median_ns\": {median}, \"samples\": {samples}}}{comma}\n"
            ));
        }
        out.push_str("  },\n  \"baseline_pr3_ns\": {\n");
        for (i, (name, ns)) in BASELINE_PR3_NS.iter().enumerate() {
            let comma = if i + 1 < BASELINE_PR3_NS.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("    \"{name}\": {ns}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn fig4_scenarios() -> Vec<Scenario> {
    [1.0, 3.0, 5.0, 8.0, 14.0, 20.0]
        .iter()
        .map(|&r| block(r, 0.5))
        .collect()
}

fn sweep_sum(model: &dyn ThermalModel, scenarios: &[Scenario]) -> f64 {
    scenarios
        .iter()
        .map(|s| model.max_delta_t(s).expect("solvable").as_kelvin())
        .sum()
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_4.json".into());
    let mut sampler = Sampler {
        results: Vec::new(),
    };

    // fig4_radius_sweep: the 6-radius sweep per model, matching the
    // criterion bench of the same name.
    let scenarios = fig4_scenarios();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());
    sampler.bench("fig4_radius_sweep/fem_coarse", || {
        sweep_sum(&fem, &scenarios)
    });
    let b100 = ModelB::paper_b100();
    sampler.bench("fig4_radius_sweep/model_b_100", || {
        sweep_sum(&b100, &scenarios)
    });

    // table1_segments: per-solve cost at deep segment counts.
    let table1 = block(5.0, 1.0);
    for (name, model) in [
        ("table1_segments/B(500)", ModelB::paper_b500()),
        ("table1_segments/B(1000)", ModelB::paper_b1000()),
        (
            "table1_segments/banded_lu/1000",
            ModelB::paper_b1000().with_solver(LadderSolver::BandedLu),
        ),
    ] {
        sampler.bench(name, || model.max_delta_t(&table1).expect("solvable"));
    }

    // ablation_fem_precond at the coarse mesh: one solve per option.
    let fem_problem = fem.build_problem(&scenarios[2]).expect("valid scenario");
    for (name, solver) in [
        (
            "ablation_fem_precond/ssor/coarse",
            FemSolver::Pcg(FemPreconditioner::ssor()),
        ),
        (
            "ablation_fem_precond/multigrid/coarse",
            FemSolver::Pcg(FemPreconditioner::multigrid()),
        ),
        (
            "ablation_fem_precond/multigrid_cheby/coarse",
            FemSolver::Pcg(FemPreconditioner::multigrid_chebyshev(2)),
        ),
        (
            "ablation_fem_precond/direct_banded/coarse",
            FemSolver::DirectBanded,
        ),
    ] {
        let mut problem = fem_problem.clone();
        problem.set_solver(solver);
        sampler.bench(name, || problem.solve().expect("solvable"));
    }

    // Multigrid setup amortization: full hierarchy build vs numeric-only
    // refresh on the 32 k-cell Cartesian box, plus one V-cycle per
    // smoother (the per-PCG-iteration cost).
    let a1 = mg_box_matrix(1.0);
    let a2 = mg_box_matrix(3.0);
    let config = MultigridConfig::default();
    sampler.bench("mg_hierarchy/build/box32k", || {
        MultigridHierarchy::build(&a1, &config).expect("coarsens")
    });
    let mut hierarchy = MultigridHierarchy::build(&a1, &config).expect("coarsens");
    sampler.bench("mg_hierarchy/refresh/box32k", || {
        hierarchy.refresh(&a2).expect("same pattern");
    });
    let n = 32 * 32 * 32;
    let r: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut z = vec![0.0; n];
    let jacobi = MultigridPreconditioner::new(&a1, &config).expect("coarsens");
    sampler.bench("mg_vcycle/jacobi/box32k", || jacobi.apply(&r, &mut z));
    let cheby =
        MultigridPreconditioner::new(&a1, &MultigridConfig::chebyshev(3)).expect("coarsens");
    sampler.bench("mg_vcycle/chebyshev3/box32k", || cheby.apply(&r, &mut z));

    // Hierarchy reuse end to end: a 3-point radius sweep on the 3-D
    // Cartesian reference (the workload where multigrid setup is a real
    // fraction of the solve). "rebuild" constructs a fresh reference per
    // sweep (every point re-aggregates); "reuse" shares one reference, so
    // later points only refresh the pooled hierarchy.
    use ttsv::validate::fem_adapter::CartesianReference;
    let mg_points: Vec<Scenario> = [6.0, 9.0, 12.0].iter().map(|&r| block(r, 2.0)).collect();
    let cart = || {
        CartesianReference::new()
            .with_lateral_cells(16)
            .with_resolution(FemResolution::coarse())
    };
    sampler.bench("fem_mg_sweep/rebuild", || {
        let cold = cart();
        sweep_sum(&cold, &mg_points)
    });
    let warm = cart();
    sampler.bench("fem_mg_sweep/reuse", || sweep_sum(&warm, &mg_points));

    // The floorplan engine on the 32×32 §IV-E maps: the hotspot map
    // dedups 1024 tiles to 3 Model B solves; the dedup-off ablation and
    // the all-distinct gradient map price the batch path itself.
    let hotspot = hotspot_floorplan(32);
    let gradient = gradient_floorplan(32);
    let engine = ChipEngine::new();
    sampler.bench("floorplan_chip/hotspot32/model_b100", || {
        engine.evaluate(&hotspot, &b100).expect("solvable")
    });
    let no_dedup = ChipEngine::new().with_dedup(false);
    sampler.bench("floorplan_chip/hotspot32/model_b100/no_dedup", || {
        no_dedup.evaluate(&hotspot, &b100).expect("solvable")
    });
    sampler.bench("floorplan_chip/gradient32/model_b100", || {
        engine.evaluate(&gradient, &b100).expect("solvable")
    });

    // The bounded sweep runner end to end (fig4-quick shape: 4 models
    // including the FEM reference, warm starts shared across workers).
    let points: Vec<(f64, Scenario)> = [1.0, 3.0, 5.0, 8.0, 14.0, 20.0]
        .iter()
        .map(|&r| (r, block(r, 0.5)))
        .collect();
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let one_d = OneDModel::new();
    sampler.bench("sweep_runner/fig4_quick", || {
        let models: Vec<&(dyn ThermalModel + Sync)> = vec![&a, &b100, &one_d, &fem];
        run_sweep(&points, &models).expect("sweep succeeds")
    });

    let json = sampler.to_json();
    std::fs::write(&path, &json).expect("write BENCH json");
    println!("wrote {path}");
}
