//! Machine-readable perf tracking: times the headline benchmarks and
//! writes their median wall-clock to a JSON file so future PRs can compare
//! against the recorded trajectory.
//!
//! Usage:
//! `cargo run --release -p ttsv-bench --bin bench_json [-- PATH [--check COMMITTED]]`
//! (default output: `BENCH_10.json` in the current directory). With
//! `--check COMMITTED`, the freshly measured medians are compared against
//! the committed recording and the process exits nonzero if any shared
//! row regressed more than 1.5× — the CI regression guard. See the
//! `ttsv-bench` crate docs for the bench → paper mapping.

use std::time::{Duration, Instant};

use ttsv::core::model_b::LadderSolver;
use ttsv::fem::{FemPreconditioner, FemSolver};
use ttsv::linalg::{MultigridConfig, MultigridHierarchy, MultigridPreconditioner, Preconditioner};
use ttsv::prelude::*;
use ttsv::validate::sweep::run_sweep;
use ttsv_bench::{block, gradient_floorplan, hotspot_floorplan, mg_box_matrix};

/// Wall-clock budget per benchmark (after the warm-up call).
const TIME_BUDGET: Duration = Duration::from_secs(2);
/// Target sample count per benchmark.
const TARGET_SAMPLES: usize = 15;
/// The `--check` regression gate: a shared row failing `fresh ≤ 1.5×
/// committed` fails CI.
const CHECK_HEADROOM_NUM: u128 = 3;
const CHECK_HEADROOM_DEN: u128 = 2;

/// PR-9 numbers for the carried-over workloads (the medians recorded in
/// the committed `BENCH_9.json`) — the baseline the PR-10 acceptance
/// criteria compare against. Every `serve/*` row recorded here was
/// measured on a server with persistence off, so they price exactly
/// what the write-ahead journal must not regress when it is disabled;
/// `serve/warm_delta_journaled` is new in PR 10 and has no earlier
/// baseline (its pin is same-run: < 2× `serve/warm_delta_response`).
const BASELINE_PR9_NS: &[(&str, u128)] = &[
    ("fig4_radius_sweep/fem_coarse", 676_613),
    ("fig4_radius_sweep/model_b_100", 77_122),
    ("table1_segments/B(500)", 64_986),
    ("table1_segments/B(1000)", 172_017),
    ("table1_segments/banded_lu/1000", 305_070),
    ("ablation_fem_precond/ssor/coarse", 1_684_448),
    ("ablation_fem_precond/multigrid/coarse", 892_173),
    ("ablation_fem_precond/multigrid_cheby/coarse", 1_030_382),
    ("ablation_fem_precond/direct_banded/coarse", 96_795),
    ("mg_hierarchy/build/box32k", 6_578_039),
    ("mg_hierarchy/refresh/box32k", 1_585_385),
    ("mg_hierarchy/refresh_flat/box32k", 6_375_282),
    ("mg_vcycle/jacobi/box32k", 871_143),
    ("mg_vcycle/chebyshev3/box32k", 2_260_219),
    ("fem_mg_sweep/rebuild", 93_949_634),
    ("fem_mg_sweep/reuse", 73_632_158),
    ("floorplan_chip/hotspot32/model_b100", 122_667),
    ("floorplan_chip/hotspot32/model_b100/no_dedup", 14_810_663),
    ("floorplan_chip/gradient32/model_b100", 15_519_996),
    ("floorplan_chip/gradient32/factor_shared", 2_649_204),
    ("sweep_runner/fig4_quick", 832_982),
    ("serve/cold_session", 3_668_501),
    ("serve/warm_delta", 161_472),
    ("serve/warm_delta_response", 151_863),
    ("serve/sustained_32req", 4_749_031),
    ("serve/sustained_fanout", 6_250_026),
    ("serve/parked_request", 49_313),
    ("serve/parked_request_sweep", 207_822),
];

struct Sampler {
    results: Vec<(String, u128, usize)>,
}

impl Sampler {
    fn bench<O>(&mut self, name: &str, f: impl FnMut() -> O) {
        self.bench_prepared(name, || {}, f);
    }

    /// Like [`Sampler::bench`], but runs `prepare` untimed before every
    /// sample — for rows whose setup (e.g. parking a connection past the
    /// event loops' spin window) must not pollute the measured latency.
    fn bench_prepared<O>(
        &mut self,
        name: &str,
        mut prepare: impl FnMut(),
        mut f: impl FnMut() -> O,
    ) {
        prepare();
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        let mut samples = Vec::with_capacity(TARGET_SAMPLES);
        while samples.len() < TARGET_SAMPLES && start.elapsed() < TIME_BUDGET {
            prepare();
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed().as_nanos());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        eprintln!(
            "{name:<50} median {median:>12} ns ({} samples)",
            samples.len()
        );
        self.results.push((name.to_string(), median, samples.len()));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"ttsv-bench-json/1\",\n  \"pr\": 10,\n");
        out.push_str(
            "  \"generated_by\": \"cargo run --release -p ttsv-bench --bin bench_json\",\n",
        );
        out.push_str("  \"benches\": {\n");
        for (i, (name, median, samples)) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{name}\": {{\"median_ns\": {median}, \"samples\": {samples}}}{comma}\n"
            ));
        }
        out.push_str("  },\n  \"baseline_pr9_ns\": {\n");
        for (i, (name, ns)) in BASELINE_PR9_NS.iter().enumerate() {
            let comma = if i + 1 < BASELINE_PR9_NS.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("    \"{name}\": {ns}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Extracts `(key, median_ns)` pairs from a committed `bench_json` file's
/// `"benches"` section (same line-oriented shape the crate's schema test
/// parses — no JSON dependency offline).
fn committed_medians(json: &str) -> Vec<(String, u128)> {
    let Some(start) = json.find("\"benches\"") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in json[start..].lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with('}') {
            break;
        }
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        let Some(pos) = rest.find("\"median_ns\"") else {
            continue;
        };
        let digits: String = rest[pos..]
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(ns) = digits.parse() {
            out.push((key.trim().trim_matches('"').to_string(), ns));
        }
    }
    out
}

fn fig4_scenarios() -> Vec<Scenario> {
    [1.0, 3.0, 5.0, 8.0, 14.0, 20.0]
        .iter()
        .map(|&r| block(r, 0.5))
        .collect()
}

fn sweep_sum(model: &dyn ThermalModel, scenarios: &[Scenario]) -> f64 {
    scenarios
        .iter()
        .map(|s| model.max_delta_t(s).expect("solvable").as_kelvin())
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_pos = args.iter().position(|a| a == "--check");
    let check_against = check_pos.and_then(|i| args.get(i + 1)).cloned();
    // The --check operand is not the output path — `--check BENCH_5.json`
    // alone must not clobber the committed recording it checks against.
    let path = args
        .iter()
        .enumerate()
        .find(|&(i, a)| !a.starts_with("--") && Some(i) != check_pos.map(|c| c + 1))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "BENCH_10.json".into());
    if check_against.as_deref() == Some(path.as_str()) {
        eprintln!("--check target and output path are the same file ({path}) — refusing");
        std::process::exit(2);
    }
    let mut sampler = Sampler {
        results: Vec::new(),
    };

    // fig4_radius_sweep: the 6-radius sweep per model, matching the
    // criterion bench of the same name.
    let scenarios = fig4_scenarios();
    let fem = FemReference::new().with_resolution(FemResolution::coarse());
    sampler.bench("fig4_radius_sweep/fem_coarse", || {
        sweep_sum(&fem, &scenarios)
    });
    let b100 = ModelB::paper_b100();
    sampler.bench("fig4_radius_sweep/model_b_100", || {
        sweep_sum(&b100, &scenarios)
    });

    // table1_segments: per-solve cost at deep segment counts.
    let table1 = block(5.0, 1.0);
    for (name, model) in [
        ("table1_segments/B(500)", ModelB::paper_b500()),
        ("table1_segments/B(1000)", ModelB::paper_b1000()),
        (
            "table1_segments/banded_lu/1000",
            ModelB::paper_b1000().with_solver(LadderSolver::BandedLu),
        ),
    ] {
        sampler.bench(name, || model.max_delta_t(&table1).expect("solvable"));
    }

    // ablation_fem_precond at the coarse mesh: one solve per option.
    let fem_problem = fem.build_problem(&scenarios[2]).expect("valid scenario");
    for (name, solver) in [
        (
            "ablation_fem_precond/ssor/coarse",
            FemSolver::Pcg(FemPreconditioner::ssor()),
        ),
        (
            "ablation_fem_precond/multigrid/coarse",
            FemSolver::Pcg(FemPreconditioner::multigrid()),
        ),
        (
            "ablation_fem_precond/multigrid_cheby/coarse",
            FemSolver::Pcg(FemPreconditioner::multigrid_chebyshev(2)),
        ),
        (
            "ablation_fem_precond/direct_banded/coarse",
            FemSolver::DirectBanded,
        ),
    ] {
        let mut problem = fem_problem.clone();
        problem.set_solver(solver);
        sampler.bench(name, || problem.solve().expect("solvable"));
    }

    // Multigrid setup amortization on the 32 k-cell Cartesian box. The
    // `build`/`refresh` rows measure the default configuration (since
    // PR 5: plain aggregation — single-stream flat refresh sweeps);
    // `refresh_flat` measures the flat contraction-list refresh of the
    // *smoothed-aggregation* hierarchy, the like-for-like successor of
    // the PR-3/4 scatter refresh recorded in the baseline. One V-cycle
    // per smoother gives the per-PCG-iteration cost.
    let a1 = mg_box_matrix(1.0);
    let a2 = mg_box_matrix(3.0);
    let config = MultigridConfig::default();
    sampler.bench("mg_hierarchy/build/box32k", || {
        MultigridHierarchy::build(&a1, &config).expect("coarsens")
    });
    let mut hierarchy = MultigridHierarchy::build(&a1, &config).expect("coarsens");
    sampler.bench("mg_hierarchy/refresh/box32k", || {
        hierarchy.refresh(&a2).expect("same pattern");
    });
    let sa_config = MultigridConfig::smoothed_aggregation();
    let mut sa_hierarchy = MultigridHierarchy::build(&a1, &sa_config).expect("coarsens");
    sampler.bench("mg_hierarchy/refresh_flat/box32k", || {
        sa_hierarchy.refresh(&a2).expect("same pattern");
    });
    let n = 32 * 32 * 32;
    let r: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let mut z = vec![0.0; n];
    let jacobi = MultigridPreconditioner::new(&a1, &config).expect("coarsens");
    sampler.bench("mg_vcycle/jacobi/box32k", || jacobi.apply(&r, &mut z));
    let cheby =
        MultigridPreconditioner::new(&a1, &MultigridConfig::chebyshev(3)).expect("coarsens");
    sampler.bench("mg_vcycle/chebyshev3/box32k", || cheby.apply(&r, &mut z));

    // Hierarchy reuse end to end: a 3-point radius sweep on the 3-D
    // Cartesian reference (the workload where multigrid setup is a real
    // fraction of the solve). "rebuild" constructs a fresh reference per
    // sweep (every point re-aggregates); "reuse" shares one reference, so
    // later points only refresh the pooled hierarchy.
    use ttsv::validate::fem_adapter::CartesianReference;
    let mg_points: Vec<Scenario> = [6.0, 9.0, 12.0].iter().map(|&r| block(r, 2.0)).collect();
    let cart = || {
        CartesianReference::new()
            .with_lateral_cells(16)
            .with_resolution(FemResolution::coarse())
    };
    sampler.bench("fem_mg_sweep/rebuild", || {
        let cold = cart();
        sweep_sum(&cold, &mg_points)
    });
    let warm = cart();
    sampler.bench("fem_mg_sweep/reuse", || sweep_sum(&warm, &mg_points));

    // The floorplan engine on the 32×32 §IV-E maps: the hotspot map
    // dedups 1024 tiles to 3 Model B solves; the dedup-off ablation and
    // the all-distinct gradient map price the batch path itself, and
    // `factor_shared` prices the matrix-tier path (one ladder
    // factorization + 1024 four-lane back-substitutions). The engine
    // caches results across calls, so every row constructs a fresh engine
    // per sample to measure the cold path.
    let hotspot = hotspot_floorplan(32);
    let gradient = gradient_floorplan(32);
    sampler.bench("floorplan_chip/hotspot32/model_b100", || {
        ChipEngine::new()
            .evaluate(&hotspot, &b100)
            .expect("solvable")
    });
    sampler.bench("floorplan_chip/hotspot32/model_b100/no_dedup", || {
        ChipEngine::new()
            .with_dedup(false)
            .evaluate(&hotspot, &b100)
            .expect("solvable")
    });
    sampler.bench("floorplan_chip/gradient32/model_b100", || {
        ChipEngine::new()
            .evaluate(&gradient, &b100)
            .expect("solvable")
    });
    sampler.bench("floorplan_chip/gradient32/factor_shared", || {
        ChipEngine::new()
            .evaluate_factored(&gradient, &b100)
            .expect("solvable")
    });

    // The bounded sweep runner end to end (fig4-quick shape: 4 models
    // including the FEM reference, warm starts shared across workers).
    let points: Vec<(f64, Scenario)> = [1.0, 3.0, 5.0, 8.0, 14.0, 20.0]
        .iter()
        .map(|&r| (r, block(r, 0.5)))
        .collect();
    let a = ModelA::with_coefficients(FittingCoefficients::paper_block());
    let one_d = OneDModel::new();
    sampler.bench("sweep_runner/fig4_quick", || {
        let models: Vec<&(dyn ThermalModel + Sync)> = vec![&a, &b100, &one_d, &fem];
        run_sweep(&points, &models).expect("sweep succeeds")
    });

    // Thermal-as-a-service end to end: one `ttsv-serve` process-local
    // server on an ephemeral loopback port, timed through a keep-alive
    // HTTP client. `cold_session` registers a never-seen chip
    // configuration per sample — distinct power maps AND a distinct via
    // density, so both engine cache tiers miss (fresh ladder
    // factorization plus per-tile solves); `warm_delta` patches two
    // tiles of a live session whose power levels cycle through the
    // scenario cache, answered with the full report (`?full=1`, the
    // PR-6 wire format, so the row stays comparable to its baseline);
    // `warm_delta_response` is the same update answered with the
    // default delta response (changed tiles + summary stats only);
    // `sustained_32req` prices a 32-request warm burst on one
    // connection (requests/sec ≈ 32e9 / median_ns); `sustained_fanout`
    // prices the same 32 updates arriving concurrently on 32 keep-alive
    // connections through the multiplexed event loops.
    {
        use ttsv::serve::client::{trace_power_body, Client};
        use ttsv::serve::protocol::render_register_body;
        use ttsv::serve::server::{ReadinessBackend, Server, ServerConfig};
        const GRID: usize = 12;
        const FANOUT: usize = 32;
        // A never-seen chip configuration per id: per-session power scale
        // and via density (both cache tiers miss), solved with the
        // paper's deep B(1000) model — the same model warm deltas then
        // reuse, so the cold/warm gap prices the caching, not the model.
        let register_body = |session: usize| -> String {
            let tiles = (GRID * GRID) as f64;
            let scale = 1.0 + session as f64 * 0.01;
            let planes: Vec<Vec<f64>> = [70.0, 7.0, 7.0]
                .iter()
                .map(|&total| {
                    (0..GRID * GRID)
                        .map(|i| scale * (total / tiles) * (0.5 + i as f64 / tiles))
                        .collect()
                })
                .collect();
            let density = 0.004 + session as f64 * 1e-5;
            let body = render_register_body(GRID, GRID, &planes, density);
            format!("{},\"segments\":[10,1000]}}", &body[..body.len() - 1])
        };
        // Pinned to the poll(2) backend so the serve rows (and especially
        // `serve/parked_request`) price the readiness backend, not
        // whatever TTSV_SERVE_READINESS happens to be set to. On hosts
        // without poll(2) the server falls back to sweep at startup and
        // the two parked rows converge.
        let config = ServerConfig::default()
            .with_workers(2)
            .with_max_sessions(128)
            .with_max_connections(2 * FANOUT)
            .with_queue_capacity(2 * FANOUT)
            .with_readiness(ReadinessBackend::Poll);
        let server = Server::start("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        let mut session = 0usize;
        sampler.bench("serve/cold_session", || {
            session += 1;
            let (status, body) = client
                .request("POST", "/sessions", &register_body(session))
                .expect("register");
            assert_eq!(status, 201, "{body}");
            body
        });
        let (status, body) = client
            .request("POST", "/sessions", &register_body(session + 1))
            .expect("register");
        assert_eq!(status, 201, "{body}");
        let warm_id: u64 = body
            .strip_prefix("{\"session\":")
            .and_then(|rest| rest.split(',').next())
            .and_then(|id| id.parse().ok())
            .expect("session id in register response");
        let warm_session = session + 1;
        // `?full=1` keeps warm_delta and sustained_32req on the PR-6
        // wire format (full report per update) so their baselines still
        // price the same bytes; warm_delta_response drops the query to
        // measure the default delta response on the identical update.
        let full_path = format!("/sessions/{warm_id}/power?full=1");
        let delta_path = format!("/sessions/{warm_id}/power");
        let mut round = 0usize;
        let mut warm_post = |client: &mut Client, path: &str| {
            round += 1;
            let (status, body) = client
                .request("POST", path, &trace_power_body(GRID, warm_session, round))
                .expect("power update");
            assert_eq!(status, 200, "{body}");
            body
        };
        sampler.bench("serve/warm_delta", || warm_post(&mut client, &full_path));
        sampler.bench("serve/warm_delta_response", || {
            warm_post(&mut client, &delta_path)
        });
        sampler.bench("serve/sustained_32req", || {
            for _ in 0..31 {
                warm_post(&mut client, &full_path);
            }
            warm_post(&mut client, &full_path)
        });
        // 32 live sessions on 32 keep-alive connections; each sample
        // fires one delta per connection concurrently, so the row prices
        // the event loops' ability to overlap requests, not one socket's
        // round-trip pipeline.
        let mut fan: Vec<(u64, Client)> = (0..FANOUT)
            .map(|i| {
                let mut c = Client::connect(&addr).expect("connect fanout client");
                let (status, body) = c
                    .request("POST", "/sessions", &register_body(1000 + i))
                    .expect("register fanout session");
                assert_eq!(status, 201, "{body}");
                let id: u64 = body
                    .strip_prefix("{\"session\":")
                    .and_then(|rest| rest.split(',').next())
                    .and_then(|id| id.parse().ok())
                    .expect("session id in register response");
                (id, c)
            })
            .collect();
        let mut fan_round = 0usize;
        sampler.bench("serve/sustained_fanout", || {
            fan_round += 1;
            let round = fan_round;
            let mut last = String::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = fan
                    .iter_mut()
                    .enumerate()
                    .map(|(i, (id, client))| {
                        scope.spawn(move || {
                            let path = format!("/sessions/{id}/power");
                            let body = trace_power_body(GRID, 1000 + i, round);
                            let (status, body) =
                                client.request("POST", &path, &body).expect("fanout update");
                            assert_eq!(status, 200, "{body}");
                            body
                        })
                    })
                    .collect();
                for handle in handles {
                    last = handle.join().expect("fanout thread");
                }
            });
            last
        });

        // The idle-connection rows: park a keep-alive connection past the
        // event loops' 200 µs spin window (untimed, via bench_prepared),
        // then time one /healthz round-trip on it. On the poll(2) backend
        // the parked loop blocks in poll and the socket itself wakes it,
        // so the row sits in the microseconds; the sweep fallback only
        // notices parked sockets on its 1 ms idle tick, which quantizes
        // the same round-trip to the tick — the latency floor the
        // readiness backend exists to remove.
        let park = Duration::from_millis(1);
        let mut parked = Client::connect(&addr).expect("connect parked client");
        sampler.bench_prepared(
            "serve/parked_request",
            || std::thread::sleep(park),
            || {
                let (status, body) = parked.request("GET", "/healthz", "").expect("healthz");
                assert_eq!(status, 200, "{body}");
                body
            },
        );
        drop(parked);
        server.shutdown();

        let sweep_server = Server::start(
            "127.0.0.1:0",
            ServerConfig::default()
                .with_workers(2)
                .with_readiness(ReadinessBackend::Sweep),
        )
        .expect("bind sweep server");
        let sweep_addr = sweep_server.addr().to_string();
        let mut parked = Client::connect(&sweep_addr).expect("connect parked sweep client");
        sampler.bench_prepared(
            "serve/parked_request_sweep",
            || std::thread::sleep(park),
            || {
                let (status, body) = parked.request("GET", "/healthz", "").expect("healthz");
                assert_eq!(status, 200, "{body}");
                body
            },
        );
        drop(parked);
        sweep_server.shutdown();

        // Durable sessions (PR 10): the same warm delta against a server
        // that journals every mutation to a write-ahead log under a
        // fresh temp state dir, at the default `interval:100` fsync
        // policy. The gap to `serve/warm_delta_response` prices the
        // journal append on the hot path; the crate's schema test pins
        // the journaled row to < 2× the unjournaled one same-run.
        use ttsv::serve::persist::PersistConfig;
        let state_dir =
            std::env::temp_dir().join(format!("ttsv-bench-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let journaled_server = Server::start(
            "127.0.0.1:0",
            ServerConfig::default()
                .with_workers(2)
                .with_readiness(ReadinessBackend::Poll)
                .with_persist(PersistConfig::new(&state_dir)),
        )
        .expect("bind journaled server");
        let journaled_addr = journaled_server.addr().to_string();
        let mut journaled = Client::connect(&journaled_addr).expect("connect journaled client");
        let (status, body) = journaled
            .request("POST", "/sessions", &register_body(2000))
            .expect("register journaled session");
        assert_eq!(status, 201, "{body}");
        let journaled_id: u64 = body
            .strip_prefix("{\"session\":")
            .and_then(|rest| rest.split(',').next())
            .and_then(|id| id.parse().ok())
            .expect("session id in register response");
        let journaled_path = format!("/sessions/{journaled_id}/power");
        let mut journaled_round = 0usize;
        sampler.bench("serve/warm_delta_journaled", || {
            journaled_round += 1;
            let (status, body) = journaled
                .request(
                    "POST",
                    &journaled_path,
                    &trace_power_body(GRID, 2000, journaled_round),
                )
                .expect("journaled power update");
            assert_eq!(status, 200, "{body}");
            body
        });
        drop(journaled);
        journaled_server.shutdown();
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    let json = sampler.to_json();
    std::fs::write(&path, &json).expect("write BENCH json");
    println!("wrote {path}");

    if let Some(committed_path) = check_against {
        let committed = std::fs::read_to_string(&committed_path)
            .unwrap_or_else(|e| panic!("read committed {committed_path}: {e}"));
        let committed = committed_medians(&committed);
        let mut regressions = Vec::new();
        for (name, fresh, _) in &sampler.results {
            if let Some((_, recorded)) = committed.iter().find(|(k, _)| k == name) {
                if *fresh * CHECK_HEADROOM_DEN > recorded * CHECK_HEADROOM_NUM {
                    regressions.push(format!(
                        "{name}: {fresh} ns vs committed {recorded} ns (> 1.5×)"
                    ));
                }
            }
        }
        if regressions.is_empty() {
            println!(
                "--check: no committed-baseline bench regressed past 1.5× of {committed_path}"
            );
        } else {
            eprintln!("--check FAILED against {committed_path}:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
