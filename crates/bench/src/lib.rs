//! Shared helpers for the benchmark harness.
//!
//! The benches regenerate the paper's tables/figures through the same
//! experiment code the `repro` binary uses; this crate only hosts small
//! scenario constructors so the individual bench files stay terse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ttsv::prelude::*;

/// The paper-block scenario with the given via radius and liner (µm).
///
/// # Panics
///
/// Panics on invalid geometry (benches use known-good values).
#[must_use]
pub fn block(radius_um: f64, liner_um: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(radius_um),
            Length::from_micrometers(liner_um),
        ))
        .build()
        .expect("valid bench scenario")
}

/// A paper-block scenario matching the Fig. 6 sweep at the given substrate
/// thickness (µm).
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn block_with_tsi(t_si_um: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(8.0),
            Length::from_micrometers(1.0),
        ))
        .with_ild_thickness(Length::from_micrometers(7.0))
        .with_upper_si_thickness(Length::from_micrometers(t_si_um))
        .build()
        .expect("valid bench scenario")
}

/// A Fig. 7 division scenario: one r₀ = 10 µm via split into `n`.
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn block_divided(n: usize) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::divided(
            Length::from_micrometers(10.0),
            Length::from_micrometers(1.0),
            n,
        ))
        .with_upper_si_thickness(Length::from_micrometers(20.0))
        .build()
        .expect("valid bench scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build() {
        assert_eq!(block(8.0, 0.5).stack().plane_count(), 3);
        assert_eq!(
            block_with_tsi(20.0).stack().planes()[1].t_si().as_micrometers(),
            20.0
        );
        assert_eq!(block_divided(9).tsv().count(), 9);
    }
}
