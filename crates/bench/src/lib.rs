//! Shared helpers for the benchmark harness.
//!
//! The benches regenerate the paper's tables/figures through the same
//! experiment code the `repro` binary uses; this crate only hosts small
//! scenario constructors ([`block`], [`block_with_tsi`], [`block_divided`])
//! so the individual bench files stay terse.
//!
//! # Bench → paper mapping
//!
//! Run with `cargo bench -p ttsv-bench` (or `--bench <name>` for one).
//! Each bench times the models over the sweep that produces the
//! corresponding paper artifact, exposing the cost hierarchy
//! 1-D ≪ Model A ≪ Model B ≪ FEM:
//!
//! | Bench | Paper artifact | Sweep |
//! |-------|----------------|-------|
//! | `fig4_radius_sweep` | Fig. 4 | max ΔT vs via radius `r`, per model |
//! | `fig5_liner_sweep` | Fig. 5 | max ΔT vs liner thickness `t_L`, per model |
//! | `fig6_substrate_sweep` | Fig. 6 | max ΔT vs upper substrate thickness `t_Si` (via [`block_with_tsi`]) |
//! | `fig7_division_sweep` | Fig. 7 | one via split into `n` smaller vias, same metal area (via [`block_divided`]) |
//! | `table1_segments` | Table I | Model B accuracy/cost vs segment count `n` (1, 20, 100, 500, 1000), plus block-tridiagonal vs banded-LU solver variants |
//! | `calibration` | §II / §IV-A | fitting Model A's `k₁`, `k₂` against the FEM reference |
//! | `case_study` | §IV-E | the 10 mm × 10 mm DRAM-µP stack unit cell |
//! | `ablation_axisym_vs_cart` | — | FEM axisymmetric vs full Cartesian discretization cost |
//! | `ablation_fem_mesh` | — | FEM cost vs mesh resolution (coarse → fine) |
//! | `ablation_modelb_solver` | — | Model B ladder solver: block tridiagonal vs banded LU vs conjugate gradient |
//! | `ablation_fem_precond` | — | FEM linear solver: plain/Jacobi/SSOR/multigrid PCG vs direct banded, two mesh resolutions |
//!
//! # Machine-readable perf tracking
//!
//! `cargo run --release -p ttsv-bench --bin bench_json [-- PATH]` times the
//! headline workloads (the fig4 FEM sweep, Model B at deep segment counts,
//! the preconditioner ablation, and the bounded sweep runner) with its own
//! median-of-N harness and writes them to `BENCH_2.json` (default path).
//! The file also embeds the PR-1 baseline numbers for the same workloads,
//! so each future PR can re-run the binary and compare the trajectory.
//! CI runs the emitter every push to catch perf-path code that compiles
//! but panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ttsv::prelude::*;

/// The paper-block scenario with the given via radius and liner (µm).
///
/// # Panics
///
/// Panics on invalid geometry (benches use known-good values).
#[must_use]
pub fn block(radius_um: f64, liner_um: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(radius_um),
            Length::from_micrometers(liner_um),
        ))
        .build()
        .expect("valid bench scenario")
}

/// A paper-block scenario matching the Fig. 6 sweep at the given substrate
/// thickness (µm).
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn block_with_tsi(t_si_um: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(8.0),
            Length::from_micrometers(1.0),
        ))
        .with_ild_thickness(Length::from_micrometers(7.0))
        .with_upper_si_thickness(Length::from_micrometers(t_si_um))
        .build()
        .expect("valid bench scenario")
}

/// A Fig. 7 division scenario: one r₀ = 10 µm via split into `n`.
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn block_divided(n: usize) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::divided(
            Length::from_micrometers(10.0),
            Length::from_micrometers(1.0),
            n,
        ))
        .with_upper_si_thickness(Length::from_micrometers(20.0))
        .build()
        .expect("valid bench scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build() {
        assert_eq!(block(8.0, 0.5).stack().plane_count(), 3);
        assert_eq!(
            block_with_tsi(20.0).stack().planes()[1]
                .t_si()
                .as_micrometers(),
            20.0
        );
        assert_eq!(block_divided(9).tsv().count(), 9);
    }
}
