//! Shared helpers for the benchmark harness.
//!
//! The benches regenerate the paper's tables/figures through the same
//! experiment code the `repro` binary uses; this crate only hosts small
//! scenario constructors ([`block`], [`block_with_tsi`], [`block_divided`])
//! so the individual bench files stay terse.
//!
//! # Bench → paper mapping
//!
//! Run with `cargo bench -p ttsv-bench` (or `--bench <name>` for one).
//! Each bench times the models over the sweep that produces the
//! corresponding paper artifact, exposing the cost hierarchy
//! 1-D ≪ Model A ≪ Model B ≪ FEM:
//!
//! | Bench | Paper artifact | Sweep |
//! |-------|----------------|-------|
//! | `fig4_radius_sweep` | Fig. 4 | max ΔT vs via radius `r`, per model |
//! | `fig5_liner_sweep` | Fig. 5 | max ΔT vs liner thickness `t_L`, per model |
//! | `fig6_substrate_sweep` | Fig. 6 | max ΔT vs upper substrate thickness `t_Si` (via [`block_with_tsi`]) |
//! | `fig7_division_sweep` | Fig. 7 | one via split into `n` smaller vias, same metal area (via [`block_divided`]) |
//! | `table1_segments` | Table I | Model B accuracy/cost vs segment count `n` (1, 20, 100, 500, 1000), plus block-tridiagonal vs banded-LU solver variants |
//! | `calibration` | §II / §IV-A | fitting Model A's `k₁`, `k₂` against the FEM reference |
//! | `case_study` | §IV-E | the 10 mm × 10 mm DRAM-µP stack unit cell |
//! | `ablation_axisym_vs_cart` | — | FEM axisymmetric vs full Cartesian discretization cost |
//! | `ablation_fem_mesh` | — | FEM cost vs mesh resolution (coarse → fine) |
//! | `ablation_modelb_solver` | — | Model B ladder solver: block tridiagonal vs banded LU vs conjugate gradient |
//! | `ablation_fem_precond` | — | FEM linear solver: plain/Jacobi/SSOR/multigrid (Jacobi and Chebyshev smoothed) PCG vs direct banded, two mesh resolutions |
//! | `ablation_mg_reuse` | — | multigrid setup amortization: hierarchy build vs numeric refresh, V-cycle per smoother, sweep with rebuilt vs pooled hierarchies |
//! | `floorplan_chip` | §IV-E generalized | full-chip 32×32 power-map evaluation through the batch engine: dedup vs no-dedup, hotspot vs all-distinct gradient maps, factor-once batched vs per-tile solves, warm cross-call cache (via [`hotspot_floorplan`]/[`gradient_floorplan`]) |
//!
//! # Machine-readable perf tracking
//!
//! `cargo run --release -p ttsv-bench --bin bench_json [-- PATH [--check COMMITTED]]`
//! times the headline workloads (the fig4 FEM sweep, Model B at deep
//! segment counts, the preconditioner ablation, the hierarchy
//! build/refresh split for both the plain-aggregation default and the
//! smoothed-aggregation preset, the bounded sweep runner, the 32×32
//! floorplan-engine evaluations including the factor-once batched path,
//! and the `ttsv-serve` session server timed over a real loopback socket:
//! cold registration, warm two-tile power deltas in both full-report and
//! delta-response form, a sustained 32-request burst on one connection,
//! and the same 32 updates fanned out across 32 concurrent connections)
//! with its own median-of-N harness and writes them to `BENCH_8.json`
//! (default path). The file also embeds the PR-6 baseline numbers (the
//! committed `BENCH_6.json` medians) for the carried-over workloads, so
//! each future PR can re-run the binary and compare the trajectory; a
//! schema sanity test in this crate parses the committed file, checks
//! the required rows, and bounds the acceptance-criteria medians against
//! that baseline (the committed recording is compared outright;
//! regenerated files only need to stay within 2× — absolute nanoseconds
//! are machine-dependent). CI runs the emitter every push with
//! `--check BENCH_8.json`, which fails the build if any row shared with
//! the committed recording regresses past 1.5×.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ttsv::prelude::*;

/// The paper-block scenario with the given via radius and liner (µm).
///
/// # Panics
///
/// Panics on invalid geometry (benches use known-good values).
#[must_use]
pub fn block(radius_um: f64, liner_um: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(radius_um),
            Length::from_micrometers(liner_um),
        ))
        .build()
        .expect("valid bench scenario")
}

/// A paper-block scenario matching the Fig. 6 sweep at the given substrate
/// thickness (µm).
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn block_with_tsi(t_si_um: f64) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::new(
            Length::from_micrometers(8.0),
            Length::from_micrometers(1.0),
        ))
        .with_ild_thickness(Length::from_micrometers(7.0))
        .with_upper_si_thickness(Length::from_micrometers(t_si_um))
        .build()
        .expect("valid bench scenario")
}

/// A 32×32×32 finite-volume-style SPD box with smoothly varying
/// conductances and a Dirichlet anchor under the first layer — the
/// multigrid setup/refresh workload shared by `ablation_mg_reuse` and
/// `bench_json` (32 768 unknowns). `amp` scales every conductance:
/// different `amp`, same sparsity pattern.
#[must_use]
pub fn mg_box_matrix(amp: f64) -> ttsv::linalg::CsrMatrix {
    use ttsv::linalg::CooBuilder;
    let (nx, ny, nz) = (32, 32, 32);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| x + y * nx + z * nx * ny;
    let cell = |x: usize, y: usize, z: usize| amp * (1.0 + 0.4 * ((x + 2 * y + 3 * z) % 7) as f64);
    let mut coo = CooBuilder::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                let mut diag = 0.0;
                if z == 0 {
                    diag += 2.0 * cell(x, y, z);
                }
                for (jx, jy, jz) in [
                    (x.wrapping_sub(1), y, z),
                    (x + 1, y, z),
                    (x, y.wrapping_sub(1), z),
                    (x, y + 1, z),
                    (x, y, z.wrapping_sub(1)),
                    (x, y, z + 1),
                ] {
                    if jx < nx && jy < ny && jz < nz {
                        let g = 0.5 * (cell(x, y, z) + cell(jx, jy, jz));
                        coo.add(i, idx(jx, jy, jz), -g);
                        diag += g;
                    }
                }
                coo.add(i, i, diag);
            }
        }
    }
    coo.to_csr()
}

/// An `n × n` hotspot floorplan on the §IV-E chip: the µP plane carries a
/// central 4×4-tile hotspot at 8× the background tile power inside a
/// 10×10 warm ring at 2× (power levels quantized to three values, so the
/// dedup cache collapses the chip to 3 distinct unit cells), the DRAM
/// planes stay uniform-per-plane with the same quantization, and the via
/// density is the paper's uniform 0.5 %. The `floorplan_chip` bench and
/// `bench_json` share this workload.
///
/// # Panics
///
/// Panics if `n < 11` (smaller grids cannot hold the background level
/// outside the 10×10 warm region, collapsing the 3-level shape).
#[must_use]
pub fn hotspot_floorplan(n: usize) -> Floorplan {
    assert!(n >= 11, "hotspot floorplan needs an 11×11 grid or larger");
    let cs = ttsv::core::full_chip::CaseStudy::paper();
    let multiplier = |ix: usize, iy: usize| -> f64 {
        let center = |i: usize| (i as f64) - (n as f64 - 1.0) / 2.0;
        let (dx, dy) = (center(ix).abs(), center(iy).abs());
        if dx < 2.0 && dy < 2.0 {
            8.0
        } else if dx < 5.0 && dy < 5.0 {
            2.0
        } else {
            1.0
        }
    };
    let weight_total: f64 = (0..n)
        .flat_map(|iy| (0..n).map(move |ix| multiplier(ix, iy)))
        .sum();
    let maps = cs
        .plane_powers
        .iter()
        .map(|&total| {
            PowerMap::from_fn(n, n, |ix, iy| total * (multiplier(ix, iy) / weight_total))
                .expect("valid hotspot map")
        })
        .collect();
    let via = ViaDensityMap::uniform(n, n, cs.density).expect("valid density map");
    Floorplan::new(&cs, maps, via).expect("valid floorplan")
}

/// An `n × n` gradient floorplan: every tile's power scales with a
/// diagonal gradient, so (almost) every unit cell is distinct — the
/// dedup-free batch-throughput workload complementing
/// [`hotspot_floorplan`].
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn gradient_floorplan(n: usize) -> Floorplan {
    let cs = ttsv::core::full_chip::CaseStudy::paper();
    let weight = |ix: usize, iy: usize| 1.0 + (iy * n + ix) as f64 / (n * n) as f64;
    let weight_total: f64 = (0..n)
        .flat_map(|iy| (0..n).map(move |ix| weight(ix, iy)))
        .sum();
    let maps = cs
        .plane_powers
        .iter()
        .map(|&total| {
            PowerMap::from_fn(n, n, |ix, iy| total * (weight(ix, iy) / weight_total))
                .expect("valid gradient map")
        })
        .collect();
    let via = ViaDensityMap::uniform(n, n, cs.density).expect("valid density map");
    Floorplan::new(&cs, maps, via).expect("valid floorplan")
}

/// A Fig. 7 division scenario: one r₀ = 10 µm via split into `n`.
///
/// # Panics
///
/// Panics on invalid geometry.
#[must_use]
pub fn block_divided(n: usize) -> Scenario {
    Scenario::paper_block()
        .with_tsv(TtsvConfig::divided(
            Length::from_micrometers(10.0),
            Length::from_micrometers(1.0),
            n,
        ))
        .with_upper_si_thickness(Length::from_micrometers(20.0))
        .build()
        .expect("valid bench scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal extractor for the flat `"key": {"median_ns": N, ...}` /
    /// `"key": N` shapes `bench_json` emits (no JSON dependency offline):
    /// returns every `(key, integer)` pair found under `section`.
    fn section_integers(json: &str, section: &str, field: Option<&str>) -> Vec<(String, u128)> {
        let start = json
            .find(&format!("\"{section}\""))
            .unwrap_or_else(|| panic!("section {section} missing"));
        let open = json[start..].find('{').expect("section opens") + start + 1;
        let mut depth = 1usize;
        let mut end = open;
        for (i, c) in json[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &json[open..end];
        let mut out = Vec::new();
        for line in body.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some((key, rest)) = line.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let digits: String = match field {
                Some(f) => {
                    let Some(pos) = rest.find(&format!("\"{f}\"")) else {
                        continue;
                    };
                    rest[pos..]
                        .chars()
                        .skip_while(|c| !c.is_ascii_digit())
                        .take_while(char::is_ascii_digit)
                        .collect()
                }
                None => rest
                    .trim()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect(),
            };
            if !digits.is_empty() {
                out.push((key, digits.parse().expect("integer fits u128")));
            }
        }
        out
    }

    #[test]
    fn bench_json_schema_is_sane() {
        // Parse the committed BENCH_10.json: schema tag, every headline
        // bench present with a positive median, the PR-9 baseline
        // embedded — and the acceptance-criteria medians within bounds of
        // that baseline.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
        let json = std::fs::read_to_string(path).expect("BENCH_10.json committed at repo root");
        assert!(
            json.contains("\"schema\": \"ttsv-bench-json/1\""),
            "schema tag missing"
        );
        assert!(json.contains("\"pr\": 10"), "pr tag missing");

        let benches = section_integers(&json, "benches", Some("median_ns"));
        let baseline = section_integers(&json, "baseline_pr9_ns", None);
        let median = |set: &[(String, u128)], key: &str| -> u128 {
            set.iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{key} missing"))
                .1
        };
        for key in [
            "fig4_radius_sweep/fem_coarse",
            "table1_segments/B(1000)",
            "ablation_fem_precond/multigrid/coarse",
            "ablation_fem_precond/multigrid_cheby/coarse",
            "mg_hierarchy/build/box32k",
            "mg_hierarchy/refresh/box32k",
            "mg_hierarchy/refresh_flat/box32k",
            "mg_vcycle/jacobi/box32k",
            "fem_mg_sweep/reuse",
            "sweep_runner/fig4_quick",
            "floorplan_chip/hotspot32/model_b100",
            "floorplan_chip/hotspot32/model_b100/no_dedup",
            "floorplan_chip/gradient32/model_b100",
            "floorplan_chip/gradient32/factor_shared",
            "serve/cold_session",
            "serve/warm_delta",
            "serve/warm_delta_response",
            "serve/sustained_32req",
            "serve/sustained_fanout",
            "serve/parked_request",
            "serve/parked_request_sweep",
            "serve/warm_delta_journaled",
        ] {
            assert!(median(&benches, key) > 0, "{key} must have a real median");
        }
        // Carried-over workloads must stay near the PR-9 baseline. The
        // committed file (recorded on the PR-10 machine) is compared
        // outright; regenerated files from arbitrary hardware only need
        // to avoid a catastrophic regression, since absolute nanoseconds
        // are machine-dependent — 2× headroom absorbs a slower CI runner
        // without masking a real slowdown of the hot paths.
        assert!(
            median(&benches, "fig4_radius_sweep/fem_coarse")
                < 2 * median(&baseline, "fig4_radius_sweep/fem_coarse"),
            "fem_coarse regressed far past the PR-9 baseline"
        );
        assert!(
            median(&benches, "sweep_runner/fig4_quick")
                < 2 * median(&baseline, "sweep_runner/fig4_quick"),
            "sweep runner regressed far past the PR-9 baseline"
        );
        assert!(
            median(&benches, "mg_hierarchy/refresh/box32k")
                < 2 * median(&baseline, "mg_hierarchy/refresh/box32k"),
            "hierarchy refresh regressed far past the PR-9 baseline"
        );
        assert!(
            median(&benches, "floorplan_chip/gradient32/factor_shared")
                < 2 * median(&baseline, "floorplan_chip/gradient32/factor_shared"),
            "factor-once batched gradient map regressed far past the PR-9 baseline"
        );
        // PR-6 acceptance criterion (same-run, machine-independent): a
        // warm two-tile power delta on a live session must be ≥5× cheaper
        // than registering a cold session — the point of holding sessions
        // server-side instead of resubmitting floorplans.
        assert!(
            5 * median(&benches, "serve/warm_delta") <= median(&benches, "serve/cold_session"),
            "warm session deltas must be ≥5× cheaper than cold registration"
        );
        // The 32-request burst must amortize: no worse than 32 single
        // warm deltas plus generous per-request overhead headroom.
        assert!(
            median(&benches, "serve/sustained_32req") < 64 * median(&benches, "serve/warm_delta"),
            "sustained warm burst must amortize per-request overhead"
        );
        // PR-8 additions (same-run, machine-independent). A delta
        // response is the same evaluation with a smaller body, so it must
        // not cost materially more than the full-report form of the
        // identical update — 2× headroom absorbs sampling noise.
        assert!(
            median(&benches, "serve/warm_delta_response")
                < 2 * median(&benches, "serve/warm_delta"),
            "delta responses must not cost more than full reports"
        );
        // 32 concurrent updates across 32 connections must stay within
        // shouting distance of the same 32 updates pipelined on one
        // connection: on one core fan-out adds scheduling overhead rather
        // than parallel speedup, so the bound only rules out the
        // catastrophic case (serial accept-evaluate-close per request).
        assert!(
            median(&benches, "serve/sustained_fanout")
                < 4 * median(&benches, "serve/sustained_32req"),
            "concurrent fan-out must not collapse to serial per-connection serving"
        );
        // PR-9 addition (same-run): a request on a connection parked past
        // the spin window must answer faster under the poll(2) backend
        // than under the sweep fallback, whose idle tick quantizes the
        // round-trip to ~1 ms. The committed recording is made on a
        // poll-capable host, so the gap is structural, not noise.
        assert!(
            median(&benches, "serve/parked_request")
                < median(&benches, "serve/parked_request_sweep"),
            "poll(2) readiness must beat the sweep idle tick on a parked connection"
        );
        // PR-10 acceptance criterion (same-run, machine-independent):
        // journaling every power update to the write-ahead log (default
        // interval fsync) must cost less than 2× the unjournaled delta
        // response for the identical update — durability must not double
        // the warm hot path.
        assert!(
            median(&benches, "serve/warm_delta_journaled")
                < 2 * median(&benches, "serve/warm_delta_response"),
            "the write-ahead journal must not double the warm delta hot path"
        );
        // Same-run comparisons (machine-independent): the numeric refresh
        // must undercut a full hierarchy build, the dedup cache must
        // beat evaluating all 1024 hotspot tiles (3 distinct cells —
        // anything less than a 10× win means dedup is broken), and the
        // shared factorization must beat per-tile solves on the same run.
        assert!(
            median(&benches, "mg_hierarchy/refresh/box32k")
                < median(&benches, "mg_hierarchy/build/box32k"),
            "refresh must be cheaper than a fresh hierarchy build"
        );
        assert!(
            10 * median(&benches, "floorplan_chip/hotspot32/model_b100")
                < median(&benches, "floorplan_chip/hotspot32/model_b100/no_dedup"),
            "cell dedup must dominate the no-dedup ablation on the hotspot map"
        );
        assert!(
            3 * median(&benches, "floorplan_chip/gradient32/factor_shared")
                < median(&benches, "floorplan_chip/gradient32/model_b100"),
            "the shared factorization must dominate per-tile solves same-run"
        );
    }

    #[test]
    fn constructors_build() {
        assert_eq!(block(8.0, 0.5).stack().plane_count(), 3);
        assert_eq!(
            block_with_tsi(20.0).stack().planes()[1]
                .t_si()
                .as_micrometers(),
            20.0
        );
        assert_eq!(block_divided(9).tsv().count(), 9);
    }

    #[test]
    fn floorplan_constructors_build_and_conserve_power() {
        let hotspot = hotspot_floorplan(32);
        assert_eq!(hotspot.tiles(), 1024);
        let total: f64 = hotspot.plane_totals().iter().map(|p| p.as_watts()).sum();
        assert!((total - 84.0).abs() < 1e-9 * 84.0, "{total}");
        let gradient = gradient_floorplan(16);
        assert_eq!(gradient.plane_count(), 3);
        let total: f64 = gradient.plane_totals().iter().map(|p| p.as_watts()).sum();
        assert!((total - 84.0).abs() < 1e-9 * 84.0, "{total}");
    }
}
